#!/usr/bin/env python3
"""Quickstart: detect an injected scheduling bug in a "new" microarchitecture.

This walks the full methodology end to end on a deliberately small setup:

1. extract SimPoint probes from two SPEC-CPU2006-like synthetic workloads,
2. train one per-probe IPC model on the bug-free legacy designs (Set I/II),
3. train the stage-2 rule-based classifier on Sets II/III,
4. test the "new" Set-IV designs bug-free and with an injected bug.

Run with:  python examples/quickstart.py

Simulations are independent jobs: set REPRO_JOBS=4 (or any N) to shard them
across worker processes, and REPRO_STORE=some/dir to persist results so a
second run skips every simulation.
"""

import os

from repro.bugs import core_bug_suite, figure1_bug2
from repro.detect import DetectionSetup, ProbeModelConfig, SimulationCache, TwoStageDetector, build_probes
from repro.runtime import JobEngine, ResultStore
from repro.uarch import core_microarch, core_set


def main() -> None:
    print("Extracting SimPoint probes from synthetic 403.gcc / 458.sjeng ...")
    probes = build_probes(
        ["403.gcc", "458.sjeng"],
        instructions_per_benchmark=15_000,
        interval_size=3_000,
        max_simpoints_per_benchmark=3,
        seed=7,
    )
    print(f"  extracted {len(probes)} probes: {[p.name for p in probes]}")

    suite = {
        bug_type: variants
        for bug_type, variants in core_bug_suite(max_variants_per_type=1).items()
        if bug_type in ("Serialized", "MispredictDelay", "RegisterReduction")
    }
    store_path = os.environ.get("REPRO_STORE")
    engine = JobEngine(store=ResultStore(store_path) if store_path else None)
    setup = DetectionSetup(
        probes=probes,
        train_designs=core_set("I"),
        val_designs=core_set("II"),
        stage2_designs=core_set("II") + core_set("III"),
        test_designs=core_set("IV"),
        bug_suite=suite,
        cache=SimulationCache(step_cycles=512, engine=engine),
        model_config=ProbeModelConfig(engine="GBT-150"),
    )

    print("Training stage-1 IPC models on bug-free legacy designs ...")
    detector = TwoStageDetector(setup)
    detector.prepare()

    print("Evaluating leave-one-bug-type-out detection on the Set-IV designs ...")
    result = detector.evaluate()
    print("  overall:", {k: round(v, 3) for k, v in result.summary_row().items()})

    # Manual check of one specific new design, the way a performance team would.
    skylake = core_microarch("Skylake")
    bug = figure1_bug2()  # "sub is incorrectly marked serialising"
    classifier_fold = detector.evaluate_fold("Serialized")
    clean_errors = detector.error_vector(skylake)
    buggy_errors = detector.error_vector(skylake, bug)
    print(f"Per-probe Eq.(1) errors on bug-free Skylake : {clean_errors.round(3)}")
    print(f"Per-probe Eq.(1) errors with '{bug.name}'   : {buggy_errors.round(3)}")
    print("A healthy design keeps errors near the bug-free level; the injected "
          "scheduling bug breaks the counter-IPC correlation and inflates them.")
    print(f"(fold '{classifier_fold.bug_type}' detected "
          f"{classifier_fold.metrics.true_positives}/{classifier_fold.metrics.positives} "
          f"buggy cases with {classifier_fold.metrics.false_positives} false positives)")
    stats = engine.stats
    print(f"[runtime] jobs={engine.jobs} simulations={stats.jobs} "
          f"executed={stats.executed} store_hits={stats.store_hits}")


if __name__ == "__main__":
    main()
