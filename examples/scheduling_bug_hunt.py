#!/usr/bin/env python3
"""Scenario: compare bug severities and per-SimPoint visibility on Skylake.

Reproduces the motivation of the paper's introduction (Figures 1 and 3): a
bug can be invisible in whole-application IPC yet obvious on an individual
SimPoint probe, and the same bug type can span severity bands depending on
its parameters.

Run with:  python examples/scheduling_bug_hunt.py
"""

from repro.bugs import (
    IfOldestIssueOnly,
    L2LatencyBug,
    SerializeOpcode,
    Severity,
    measure_severity,
)
from repro.simpoint import select_simpoints
from repro.uarch import core_microarch
from repro.workloads import Opcode, TraceGenerator, build_program, workload


def main() -> None:
    skylake = core_microarch("Skylake")
    program = build_program(workload("403.gcc"), seed=3)
    selection = select_simpoints(program, total_instructions=18_000,
                                 interval_size=3_000, max_simpoints=4, seed=3)
    traces = {sp.name: sp.trace for sp in selection}
    print(f"403.gcc SimPoints: {[sp.name for sp in selection]}")

    bugs = [
        IfOldestIssueOnly(Opcode.XOR),   # Figure 1 "Bug 1"
        SerializeOpcode(Opcode.SUB),     # Figure 1 "Bug 2"
        L2LatencyBug(16),                # memory-side core bug
    ]
    print(f"{'bug':35s} {'severity':10s} per-SimPoint IPC impact (%)")
    for bug in bugs:
        report = measure_severity(bug, skylake, traces, step_cycles=512)
        impacts = "  ".join(
            f"{name.split('/')[-1]}:{100 * impact:5.1f}"
            for name, impact in report.per_workload_impact.items()
        )
        print(f"{bug.name:35s} {report.severity.value:10s} {impacts}")

    print("\nNote how the xor scheduling bug is nearly invisible on most probes but "
          "stands out on the xor-heavy one — the property the methodology exploits.")

    # A whole-program view would hide it: weight the impacts by SimPoint weight.
    xor_bug = bugs[0]
    report = measure_severity(xor_bug, skylake, traces, step_cycles=512)
    weighted = sum(report.per_workload_impact[sp.name] * sp.weight for sp in selection)
    worst = max(report.per_workload_impact.values())
    print(f"Whole-program impact of {xor_bug.name}: {100 * weighted:.2f}% "
          f"(worst single SimPoint: {100 * worst:.2f}%)")
    assert report.severity in tuple(Severity)


if __name__ == "__main__":
    main()
