#!/usr/bin/env python3
"""Scenario: detect cache-hierarchy performance bugs with AMAT models.

Mirrors Section IV-D / Table VII: the same two-stage methodology runs on the
ChampSim-like memory-hierarchy simulator, using Average Memory Access Time
(AMAT) as the stage-1 target metric, and is tested against replacement-policy,
miss-handling and SPP-prefetcher bugs.

Run with:  python examples/memory_system_detection.py

Set REPRO_JOBS=N to shard the hierarchy simulations across N worker
processes, and REPRO_STORE=some/dir to reuse results across runs.
"""

import os

from repro.bugs import memory_bug_suite
from repro.detect import (
    DetectionSetup,
    MemorySimulationCache,
    ProbeModelConfig,
    TwoStageDetector,
    build_probes,
)
from repro.runtime import JobEngine, ResultStore
from repro.uarch import memory_microarch, memory_set


def main() -> None:
    print("Extracting memory probes ...")
    probes = build_probes(
        ["403.gcc", "426.mcf"],
        instructions_per_benchmark=40_000,
        interval_size=13_000,
        max_simpoints_per_benchmark=3,
        seed=21,
    )
    print(f"  {len(probes)} probes extracted")

    store_path = os.environ.get("REPRO_STORE")
    engine = JobEngine(store=ResultStore(store_path) if store_path else None)
    setup = DetectionSetup(
        probes=probes,
        train_designs=memory_set("I"),
        val_designs=memory_set("II"),
        stage2_designs=memory_set("II") + memory_set("III"),
        test_designs=memory_set("IV"),
        bug_suite=memory_bug_suite(max_variants_per_type=1),
        cache=MemorySimulationCache(
            step_instructions=2_000, target_metric="amat", engine=engine
        ),
        model_config=ProbeModelConfig(engine="GBT-150"),
        target_higher_is_better=False,  # AMAT: larger is worse
    )

    print("Training per-probe AMAT models on bug-free legacy hierarchies ...")
    detector = TwoStageDetector(setup)
    result = detector.evaluate()

    print("Leave-one-bug-type-out results on Skylake-mem / Ryzen7-mem:")
    for bug_type, fold in result.folds.items():
        print(f"  {bug_type:25s} TPR {fold.metrics.tpr:.2f}  FPR {fold.metrics.fpr:.2f}")
    print("Overall:", {k: round(v, 3) for k, v in result.summary_row().items()})

    # Inspect one specific buggy hierarchy the way a cache designer would.
    skylake_mem = memory_microarch("Skylake-mem")
    spp_bug = setup.bug_suite["SPPLeastConfidence"][0]
    clean = detector.error_vector(skylake_mem)
    buggy = detector.error_vector(skylake_mem, spp_bug)
    print(f"Per-probe AMAT inference errors, bug-free  : {clean.round(2)}")
    print(f"Per-probe AMAT inference errors, {spp_bug.name}: {buggy.round(2)}")
    stats = engine.stats
    print(f"[runtime] jobs={engine.jobs} simulations={stats.jobs} "
          f"executed={stats.executed} store_hits={stats.store_hits}")


if __name__ == "__main__":
    main()
