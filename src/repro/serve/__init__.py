"""Detection model serving: train once, keep resident, answer over a socket.

The offline pipeline answers "does this design have a bug?" by spinning up
an experiment: train the two-stage detector, simulate the design under
test, score it, exit.  This package splits that lifecycle so detection
runs at interactive latency:

* :mod:`~repro.serve.registry` — train the engine **once** and persist it
  with its feature/counter schema and training-data provenance; loading
  refuses schema mismatches instead of serving wrong verdicts.
* :mod:`~repro.serve.session` — the warm request path: dedup probe jobs
  against an in-memory overlay plus the persistent result store, run the
  misses through the lockstep batch planner, score with the resident model.
* :mod:`~repro.serve.server` — ``repro-serve``, a long-running socket
  daemon speaking the runtime's length-prefixed pickle frame protocol
  (:mod:`repro.runtime.framing`), one serving thread per connection.
* :mod:`~repro.serve.client` — ``repro-client`` and the programmatic
  :class:`~repro.serve.client.ServeClient` used by tests, CI and the
  ``repro-bench`` serve section.

See ``docs/SERVING.md`` for the protocol and operational story.
"""

from .client import ServeClient
from .registry import (
    ModelSchema,
    RegisteredModel,
    RegistryError,
    Verdict,
    load_model,
    offline_verdicts,
    save_model,
    train_model,
)
from .server import DetectionServer
from .session import ServingSession

__all__ = [
    "DetectionServer",
    "ModelSchema",
    "RegisteredModel",
    "RegistryError",
    "ServeClient",
    "ServingSession",
    "Verdict",
    "load_model",
    "offline_verdicts",
    "save_model",
    "train_model",
]
