"""``repro-client``: talk to a running ``repro-serve`` detection daemon.

:class:`ServeClient` is the programmatic client (used by tests, benchmarks
and CI): it connects, completes the versioned hello handshake, and exposes
``probe_batch``/``ping``/``stats``/``shutdown`` over the shared frame
protocol (:mod:`repro.runtime.framing`).  ``probe_batch`` is a generator —
verdicts stream back one frame per item, so the first answer is usable
while the daemon is still simulating later items.

The CLI prints one deterministic ``verdict ...`` line per item (floats
rendered with ``%.17g``, i.e. round-trip exact), so two transcripts are
bit-identical iff the verdicts are — CI diffs the daemon's output against
``--offline`` mode, which scores the same requests through the offline
:class:`~repro.detect.dataset.SimulationCache` path with no daemon at all::

    repro-client probe --connect 127.0.0.1:7781 --preset Skylake --bug Serialized:0
    repro-client probe --offline model.pkl      --preset Skylake --bug Serialized:0
    repro-client ping  --connect 127.0.0.1:7781
"""

from __future__ import annotations

import argparse
import socket
import sys
from typing import Iterator

from ..runtime.framing import (
    HELLO,
    PING,
    PONG,
    PROTOCOL_VERSION,
    SHUTDOWN,
    ProtocolError,
    check_hello,
    read_frame,
    write_frame,
)


class ServeClient:
    """One connection to a detection daemon (context manager)."""

    def __init__(self, host: str, port: int, timeout: "float | None" = 60.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        try:
            # Request frames are small; see the matching server-side setting.
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP transports
            pass
        self.reader = self.sock.makefile("rb")
        self.writer = self.sock.makefile("wb")
        self.server_hello: dict = {}
        #: Summary payload of the most recent completed ``probe_batch``.
        self.last_batch: "dict | None" = None
        try:
            self._handshake()
        except Exception:
            self.close()
            raise

    def _handshake(self) -> None:
        write_frame(self.writer, HELLO, {"protocol": PROTOCOL_VERSION})
        kind, payload = read_frame(self.reader)
        if kind == "error":
            raise ProtocolError(f"server rejected handshake: {payload}")
        if kind != HELLO:
            raise ProtocolError(f"server sent {kind!r} instead of a handshake")
        check_hello(payload, side="server")
        self.server_hello = payload

    def _request(self, kind: str, payload=None) -> tuple:
        write_frame(self.writer, kind, payload)
        reply = read_frame(self.reader)
        reply_kind, reply_payload = reply
        if reply_kind == "error":
            raise ProtocolError(f"server error: {reply_payload}")
        return reply_kind, reply_payload

    # -- requests --------------------------------------------------------------

    def probe_batch(self, items: "list[tuple]") -> Iterator[dict]:
        """Stream verdict rows for ``[(config, bug-or-None), ...]``.

        Yields one dict per item as the daemon finishes it; after the
        generator is exhausted, :attr:`last_batch` holds the batch summary
        (items served, simulations executed, store hits, elapsed seconds).
        """
        self.last_batch = None
        write_frame(self.writer, "probe_batch", {"items": list(items)})
        while True:
            kind, payload = read_frame(self.reader)
            if kind == "verdict":
                yield payload
            elif kind == "done":
                self.last_batch = payload
                return
            elif kind == "error":
                raise ProtocolError(f"server error: {payload}")
            else:
                raise ProtocolError(f"unexpected {kind!r} frame in a probe batch")

    def ping(self) -> dict:
        kind, payload = self._request(PING)
        if kind != PONG:
            raise ProtocolError(f"ping answered with {kind!r}")
        return payload

    def stats(self) -> dict:
        kind, payload = self._request("stats")
        if kind != "stats":
            raise ProtocolError(f"stats answered with {kind!r}")
        return payload

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit; returns its farewell payload."""
        kind, payload = self._request(SHUTDOWN)
        if kind != "bye":
            raise ProtocolError(f"shutdown answered with {kind!r}")
        return payload

    def close(self) -> None:
        for stream in (getattr(self, "writer", None), getattr(self, "reader", None)):
            try:
                if stream is not None:
                    stream.close()
            except (OSError, ValueError):
                pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# -- CLI ----------------------------------------------------------------------


def _parse_connect(spec: str) -> tuple:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"repro-client: --connect wants HOST:PORT, got {spec!r}")
    return host, int(port)


def _resolve_items(args) -> "list[tuple]":
    """Expand ``--preset``/``--bug`` flags into (config, bug-or-None) items."""
    from ..bugs.registry import core_bug_suite
    from ..uarch.presets import core_microarch

    configs = [core_microarch(name) for name in (args.preset or ["Skylake"])]
    bugs = []
    suite = core_bug_suite()
    for spec in args.bug or []:
        if spec in ("bug-free", "none"):
            bugs.append(None)
            continue
        bug_type, _, index = spec.partition(":")
        if bug_type not in suite:
            raise SystemExit(
                f"repro-client: unknown bug type {bug_type!r} "
                f"(known: {', '.join(sorted(suite))})"
            )
        variants = suite[bug_type]
        try:
            bugs.append(variants[int(index) if index else 0])
        except (IndexError, ValueError):
            raise SystemExit(
                f"repro-client: bug type {bug_type!r} has "
                f"{len(variants)} variants; got index {index!r}"
            )
    if not bugs:
        bugs = [None]
    return [(config, bug) for config in configs for bug in bugs]


def _print_verdict(row: dict) -> None:
    """One canonical line per verdict; %.17g keeps floats round-trip exact."""
    errors = ",".join("%.17g" % e for e in row["errors"])
    print(
        "verdict config=%s bug=%s detected=%d score=%.17g errors=%s"
        % (
            row["config_name"],
            row["bug_name"],
            1 if row["detected"] else 0,
            row["score"],
            errors,
        )
    )


def _cmd_probe(args) -> int:
    items = _resolve_items(args)
    if args.offline:
        return _probe_offline(args, items)
    host, port = _parse_connect(args.connect)
    with ServeClient(host, port) as client:
        for row in client.probe_batch(items):
            _print_verdict(row)
        summary = client.last_batch or {}
    print(
        "[serve] items=%d executed=%d store_hits=%d elapsed_seconds=%s"
        % (
            summary.get("items", 0),
            summary.get("executed", 0),
            summary.get("store_hits", 0),
            summary.get("elapsed_seconds", "?"),
        ),
        file=sys.stderr,
    )
    return 0


def _probe_offline(args, items) -> int:
    """Score the same requests with no daemon: the offline reference path."""
    from ..detect.dataset import SimulationCache
    from ..runtime import JobEngine, ResultStore
    from .registry import load_model, offline_verdicts

    model = load_model(args.offline)
    store = ResultStore(args.store) if args.store else None
    engine = JobEngine(jobs=1, store=store)
    try:
        cache = SimulationCache(step_cycles=model.schema.step_cycles, engine=engine)
        for verdict in offline_verdicts(model, cache, items):
            _print_verdict(verdict.row())
    finally:
        engine.close()
    print("[offline] items=%d" % len(items), file=sys.stderr)
    return 0


def _cmd_ping(args) -> int:
    host, port = _parse_connect(args.connect)
    with ServeClient(host, port) as client:
        payload = client.ping()
    for key in sorted(payload):
        print(f"{key}: {payload[key]}")
    return 0


def _cmd_stats(args) -> int:
    host, port = _parse_connect(args.connect)
    with ServeClient(host, port) as client:
        payload = client.stats()
    for key in sorted(payload):
        print(f"{key}: {payload[key]}")
    return 0


def _cmd_shutdown(args) -> int:
    host, port = _parse_connect(args.connect)
    with ServeClient(host, port) as client:
        payload = client.shutdown()
    print(f"repro-client: daemon draining after {payload.get('uptime_seconds')}s")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-client", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    probe = commands.add_parser(
        "probe", help="request verdicts for (preset, bug) design-under-test items"
    )
    probe.add_argument("--connect", default="127.0.0.1:0",
                       help="daemon address as HOST:PORT")
    probe.add_argument("--offline", default=None, metavar="REGISTRY",
                       help="score through the offline cache path with this "
                            "model registry instead of a daemon")
    probe.add_argument("--store", default=None,
                       help="persistent result store for --offline scoring")
    probe.add_argument("--preset", action="append", default=None,
                       help="microarch preset to test (repeatable; default Skylake)")
    probe.add_argument("--bug", action="append", default=None, metavar="TYPE[:IDX]",
                       help="bug to inject, e.g. Serialized:0; 'bug-free' for a "
                            "clean design (repeatable; default bug-free)")
    probe.set_defaults(func=_cmd_probe)

    for name, func, help_text in (
        ("ping", _cmd_ping, "health-check a daemon (version, uptime, stats)"),
        ("stats", _cmd_stats, "print a daemon's serving statistics"),
        ("shutdown", _cmd_shutdown, "ask a daemon to drain and exit"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--connect", required=True, help="daemon address as HOST:PORT")
        sub.set_defaults(func=func)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
