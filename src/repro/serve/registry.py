"""Model registry: train a detection engine once, persist it, serve forever.

Offline, every experiment retrains the two-stage detector from scratch:
stage-1 models are fitted per probe on bug-free legacy designs, then the
stage-2 rule classifier is trained on labelled error vectors.  A service
answering probe→verdict queries cannot afford that — it needs the trained
state *resident*.  This module packages exactly that state:

* :class:`RegisteredModel` — the probes (with their selected counters), the
  trained per-probe stage-1 models, the trained stage-2 classifier, and the
  sampling step, in one picklable object;
* :class:`ModelSchema` — the feature/counter schema the model was trained
  with (per-probe counter sets, per-probe stage-1 feature name lists, step
  size, ML engine).  The schema is recorded **next to** the payload when
  saving and recomputed **from** the payload when loading; any mismatch
  (tampered file, drifted code) refuses to load with :class:`RegistryError`
  rather than silently serving wrong verdicts;
* provenance — the content digest of the training job keys (the
  :class:`~repro.runtime.ResultStore` keys the training data occupies),
  design/bug rosters, and creation time, so a served verdict can always be
  traced back to the data that trained the model;
* :func:`train_model` / :func:`save_model` / :func:`load_model` — the
  train-once / load-many lifecycle, plus :func:`offline_verdicts`, the
  reference scoring path used by tests and ``repro-client --offline`` to
  pin the daemon bit-identical to the offline experiment path.

Unlike the leave-one-bug-type-out *evaluation* protocol (which exists to
measure generalisation), a served model trains stage 2 on **every** bug type:
in production you want the best detector you can build, not a held-out fold.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..detect.detector import DetectionSetup, TwoStageDetector
from ..detect.probe import Probe
from ..detect.stage1 import ProbeModel
from ..detect.stage2 import RuleBasedClassifier
from ..runtime import SimulationJob, trace_digest

#: On-disk registry format; bump on incompatible layout changes.
REGISTRY_FORMAT_VERSION = 1


class RegistryError(RuntimeError):
    """A registry file could not be loaded: corrupt, wrong format, or the
    recorded schema disagrees with the payload."""


@dataclass(frozen=True)
class ModelSchema:
    """The feature/counter schema a registered model was trained with.

    Serving feeds counter series through the stage-1 models by *name*; a
    model whose recorded schema disagrees with its payload would read the
    wrong columns and emit confidently wrong verdicts, so the schema is the
    load-time integrity check.
    """

    step_cycles: int
    ml_engine: str
    use_arch_features: bool
    counters: dict[str, tuple[str, ...]]  # probe name -> selected counters
    feature_names: dict[str, tuple[str, ...]]  # probe name -> stage-1 features

    def to_payload(self) -> dict:
        """JSON-friendly dict (stable ordering) for recording and digests."""
        return {
            "step_cycles": self.step_cycles,
            "ml_engine": self.ml_engine,
            "use_arch_features": self.use_arch_features,
            "counters": {name: list(c) for name, c in sorted(self.counters.items())},
            "feature_names": {
                name: list(f) for name, f in sorted(self.feature_names.items())
            },
        }

    def digest(self) -> str:
        encoded = json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class Verdict:
    """One served probe→verdict answer."""

    config_name: str
    bug_name: str
    detected: bool
    score: float
    errors: tuple[float, ...]

    def row(self) -> dict:
        """Picklable/printable flattening (wire + CLI representation)."""
        return {
            "config_name": self.config_name,
            "bug_name": self.bug_name,
            "detected": self.detected,
            "score": self.score,
            "errors": self.errors,
        }


@dataclass
class RegisteredModel:
    """A trained detection engine plus everything needed to serve it."""

    name: str
    schema: ModelSchema
    provenance: dict
    probes: list[Probe]
    models: dict[str, ProbeModel]  # probe name -> trained stage-1 model
    classifier: RuleBasedClassifier
    use_arch_features: bool = True

    def computed_schema(self) -> ModelSchema:
        """Recompute the schema from the live payload (load-time check)."""
        return ModelSchema(
            step_cycles=self.schema.step_cycles,
            ml_engine=self.schema.ml_engine,
            use_arch_features=self.use_arch_features,
            counters={p.name: tuple(p.counters) for p in self.probes},
            feature_names={
                name: tuple(model.feature_names)
                for name, model in sorted(self.models.items())
            },
        )

    # -- scoring ---------------------------------------------------------------

    def _features(self, config) -> dict[str, float]:
        return config.feature_vector() if self.use_arch_features else {}

    def error_vector(self, series_by_probe: dict, config) -> np.ndarray:
        """Equation-(1) errors of every probe from pre-simulated series."""
        features = self._features(config)
        errors = []
        for probe in self.probes:
            series = series_by_probe[probe.name]
            errors.append(self.models[probe.name].inference_error(series, features))
        return np.asarray(errors, dtype=float)

    def verdict(self, series_by_probe: dict, config, bug=None) -> Verdict:
        """Score one design-under-test from its per-probe counter series."""
        errors = self.error_vector(series_by_probe, config)
        score = self.classifier.score(errors)
        return Verdict(
            config_name=getattr(config, "name", "?"),
            bug_name=getattr(bug, "name", "bug-free") if bug is not None else "bug-free",
            detected=bool(score > 1.0),
            score=float(score),
            errors=tuple(float(e) for e in errors),
        )


# -- training ----------------------------------------------------------------


def training_job_keys(setup: DetectionSetup, step_cycles: int) -> list[str]:
    """Store keys of every simulation the training protocol consumes.

    Stage 1 reads (train ∪ val designs) bug-free; stage 2 reads the stage-2
    designs presumed-bug-free plus every bug variant of every type.  The
    sorted key list content-addresses the training data, which is exactly
    what the provenance digest must pin.
    """
    presumed = setup.presumed_bugfree_bug
    pairs = [(design, presumed) for design in setup.train_designs + setup.val_designs]
    for design in setup.stage2_designs:
        pairs.append((design, presumed))
        for variants in setup.bug_suite.values():
            pairs.extend((design, bug) for bug in variants)
    keys = {
        SimulationJob(
            study=setup.cache.study,
            config=design,
            bug=bug,
            trace_id=trace_digest(probe.decoded),
            step=step_cycles,
        ).key()
        for design, bug in pairs
        for probe in setup.probes
    }
    return sorted(keys)


def _training_digest(keys: list[str]) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for key in keys:
        hasher.update(key.encode("ascii"))
    return hasher.hexdigest()


def train_model(
    setup: DetectionSetup,
    name: str = "default",
    provenance: dict | None = None,
) -> RegisteredModel:
    """Train the full two-stage detection engine once, for serving.

    Runs the standard :meth:`TwoStageDetector.prepare` (counter selection +
    stage-1 fits on bug-free data), then fits the stage-2 classifier on
    labelled error vectors from **all** bug types — no fold is held out.
    Every simulation goes through ``setup.cache`` (and therefore through its
    engine and store), so training a model warms the same store the daemon
    later serves from.
    """
    step_cycles = int(getattr(setup.cache, "step_cycles"))
    detector = TwoStageDetector(setup)
    detector.prepare()
    detector._warm(
        (design, bug)
        for design in setup.stage2_designs
        for bug in [setup.presumed_bugfree_bug]
        + [bug for variants in setup.bug_suite.values() for bug in variants]
    )

    positives: list[np.ndarray] = []
    negatives: list[np.ndarray] = []
    for design in setup.stage2_designs:
        negatives.append(detector.error_vector(design, setup.presumed_bugfree_bug))
        for variants in setup.bug_suite.values():
            positives.extend(detector.error_vector(design, bug) for bug in variants)
    classifier = RuleBasedClassifier()
    classifier.fit(positives, negatives)

    keys = training_job_keys(setup, step_cycles)
    schema = ModelSchema(
        step_cycles=step_cycles,
        ml_engine=setup.model_config.engine,
        use_arch_features=setup.model_config.use_arch_features,
        counters={p.name: tuple(p.counters) for p in setup.probes},
        feature_names={
            probe_name: tuple(model.feature_names)
            for probe_name, model in sorted(detector.models.items())
        },
    )
    recorded_provenance = {
        "training_jobs": len(keys),
        "training_digest": _training_digest(keys),
        "train_designs": sorted(d.name for d in setup.train_designs),
        "val_designs": sorted(d.name for d in setup.val_designs),
        "stage2_designs": sorted(d.name for d in setup.stage2_designs),
        "bug_types": sorted(setup.bug_suite),
        "probes": [p.name for p in setup.probes],
        "created_unix": time.time(),
    }
    recorded_provenance.update(provenance or {})
    return RegisteredModel(
        name=name,
        schema=schema,
        provenance=recorded_provenance,
        probes=setup.probes,
        models=dict(detector.models),
        classifier=classifier,
        use_arch_features=setup.model_config.use_arch_features,
    )


# -- persistence --------------------------------------------------------------


def save_model(model: RegisteredModel, path: "str | os.PathLike") -> None:
    """Persist *model* atomically (temp file + ``os.replace``).

    The file is one pickled dict: a format version, the schema recorded as
    plain JSON-able data (checkable without trusting the payload), its
    digest, and the model payload.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    schema = model.computed_schema()
    record = {
        "format": REGISTRY_FORMAT_VERSION,
        "schema": schema.to_payload(),
        "schema_digest": schema.digest(),
        "model": model,
    }
    tmp = target.with_suffix(target.suffix + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, target)
    finally:
        if tmp.exists():  # pragma: no cover - only on write failure
            try:
                tmp.unlink()
            except OSError:
                pass


def load_model(path: "str | os.PathLike") -> RegisteredModel:
    """Load a registry file, refusing anything corrupt or schema-mismatched.

    Raises
    ------
    RegistryError
        If the file cannot be unpickled (truncated, garbage), carries an
        unknown format version, or its recorded schema does not match the
        schema recomputed from the payload (tampering or code drift since
        training — serving such a model would read wrong feature columns).
    """
    try:
        with open(Path(path), "rb") as handle:
            record = pickle.load(handle)
    except OSError:
        raise
    except Exception as exc:
        raise RegistryError(f"corrupt registry file {path}: {exc}") from exc
    if not isinstance(record, dict) or "model" not in record:
        raise RegistryError(f"not a model registry file: {path}")
    version = record.get("format")
    if version != REGISTRY_FORMAT_VERSION:
        raise RegistryError(
            f"registry format {version!r} unsupported "
            f"(this build reads format {REGISTRY_FORMAT_VERSION})"
        )
    model = record["model"]
    if not isinstance(model, RegisteredModel):
        raise RegistryError(
            f"registry payload is {type(model).__name__}, expected RegisteredModel"
        )
    recorded = record.get("schema")
    computed = model.computed_schema()
    if recorded != computed.to_payload():
        raise RegistryError(
            f"schema mismatch in {path}: recorded feature/counter schema does "
            "not match the model payload (tampered file or drifted code); "
            "retrain the model"
        )
    if record.get("schema_digest") != computed.digest():
        raise RegistryError(f"schema digest mismatch in {path}; retrain the model")
    return model


# -- the offline reference path ----------------------------------------------


def offline_verdicts(
    model: RegisteredModel, cache, requests: "list[tuple]"
) -> list[Verdict]:
    """Score *requests* through a :class:`~repro.detect.dataset.SimulationCache`.

    This is the offline experiment path — the exact substrate
    :class:`~repro.experiments.common.ExperimentContext` uses — applied to a
    registered model: every (probe, config, bug) observation comes from the
    cache (and its engine/store), then flows through the same stage-1/stage-2
    scoring as the daemon.  Tests and CI diff the daemon against this
    function; the two must agree bit-for-bit.
    """
    cache.warm(
        (probe, config, bug) for config, bug in requests for probe in model.probes
    )
    verdicts = []
    for config, bug in requests:
        series_by_probe = {
            probe.name: cache.get(probe, config, bug).series for probe in model.probes
        }
        verdicts.append(model.verdict(series_by_probe, config, bug))
    return verdicts
