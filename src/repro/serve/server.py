"""``repro-serve``: the long-running detection serving daemon.

A resident process that keeps a trained detection engine (loaded from a
model registry file), a warm in-memory result overlay and an optional
persistent :class:`~repro.runtime.ResultStore`, and answers probe→verdict
requests over a TCP socket — so asking "does this config exhibit a bug?"
costs one round trip instead of one experiment.

The wire format is the runtime's 8-byte length-prefixed pickle frame
protocol (:mod:`repro.runtime.framing` — the same framing the
``repro-worker`` backends speak), version-checked by a hello handshake.
Session shape (see ``docs/SERVING.md``)::

    client -> ("hello", {"protocol": V})
    server -> ("hello", {"protocol": V, "server": "repro-serve", ...})
    client -> ("probe_batch", {"items": [(config, bug-or-None), ...]})
    server -> ("verdict", {...})      # streamed, one per item, in order
    server -> ("done", {...})         # batch summary: executed, store hits
    client -> ("ping", None)          # health probe
    server -> ("pong", {"protocol": V, "uptime_seconds": ..., "stats": ...})
    client -> ("stats", None) / ("shutdown", None) / EOF

One serving thread per connection; all of them share a single
:class:`~repro.serve.session.ServingSession` (one warm engine, one
registry, one store).  Malformed, truncated or oversized frames and
version-mismatched hellos are answered with an ``error`` frame (best
effort) and end **that connection only** — the daemon keeps serving.

Lifecycle: ``SIGTERM``/``SIGINT`` stop the accept loop, let every in-flight
request finish streaming its verdicts, close the listener and exit 0 — a
drain, not an abort.  Subcommands::

    repro-serve train MODEL.pkl --scale smoke [--trace-dir D] [--store S]
    repro-serve run   MODEL.pkl [--host H] [--port P] [--store S] [--port-file F]
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time

from ..runtime import ResultStore
from ..runtime.framing import (
    ERROR,
    HELLO,
    PING,
    PONG,
    PROTOCOL_VERSION,
    SHUTDOWN,
    ProtocolError,
    check_hello,
    read_frame,
    write_frame,
)
from .registry import load_model, save_model, train_model
from .session import ServingSession

#: Request/response frame kinds of the serving protocol (on top of the
#: shared HELLO / ERROR / SHUTDOWN / PING / PONG kinds, which live in
#: :mod:`repro.runtime.framing`).
PROBE_BATCH = "probe_batch"
STATS = "stats"
VERDICT = "verdict"
DONE = "done"
BYE = "bye"


class _Connection:
    """One client connection: a socket, its frame streams, and a work lock."""

    def __init__(self, sock: socket.socket, peer, server: "DetectionServer") -> None:
        self.sock = sock
        self.peer = peer
        self.server = server
        try:
            # Verdict frames are small; without TCP_NODELAY, Nagle + delayed
            # ACKs add ~40ms stalls to every warm request.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass
        self.reader = sock.makefile("rb")
        self.writer = sock.makefile("wb")
        #: Held while one request is being served; the drain path acquires it
        #: to guarantee in-flight requests finish before the socket dies.
        self.work = threading.Lock()
        self.thread: threading.Thread | None = None

    # -- plumbing --------------------------------------------------------------

    def _send(self, kind: str, payload) -> bool:
        try:
            write_frame(self.writer, kind, payload)
            return True
        except (OSError, ValueError):  # peer gone mid-write
            return False

    def close(self) -> None:
        for stream in (self.writer, self.reader):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        try:
            self.sock.close()
        except OSError:
            pass

    def interrupt(self) -> None:
        """Wake a reader blocked on this connection (used by the drain path)."""
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    # -- the serving loop ------------------------------------------------------

    def serve(self) -> None:
        try:
            self._serve()
        finally:
            self.close()
            self.server._forget(self)

    def _handshake(self) -> bool:
        frame = read_frame(self.reader)
        kind, payload = frame
        if kind != HELLO:
            raise ProtocolError(f"expected a hello frame, got {kind!r}")
        check_hello(payload, side=f"client {self.peer}")
        return self._send(
            HELLO,
            {
                "protocol": PROTOCOL_VERSION,
                "server": "repro-serve",
                "model": self.server.session.model.name,
                "pid": os.getpid(),
            },
        )

    def _serve(self) -> None:
        try:
            if not self._handshake():
                return
        except ProtocolError as exc:
            self._send(ERROR, f"handshake failed: {exc}")
            return
        session = self.server.session
        while not self.server.draining:
            try:
                frame = read_frame(self.reader, allow_eof=True)
            except ProtocolError as exc:
                # Garbage, truncation or an oversized length from this client
                # must not take the daemon down: report and drop the peer.
                self._send(ERROR, f"bad frame: {exc}")
                return
            if frame is None:  # client closed the connection
                return
            kind, payload = frame
            with self.work:
                self.server.count_request(kind)
                if kind == PROBE_BATCH:
                    if not self._serve_probe_batch(session, payload):
                        return
                elif kind == PING:
                    if not self._send(PONG, self.server.health()):
                        return
                elif kind == STATS:
                    if not self._send(STATS, self.server.health()):
                        return
                elif kind == SHUTDOWN:
                    self._send(BYE, {"uptime_seconds": self.server.uptime()})
                    self.server.request_shutdown()
                    return
                else:
                    if not self._send(ERROR, f"unknown request kind {kind!r}"):
                        return

    def _serve_probe_batch(self, session: ServingSession, payload) -> bool:
        items = payload.get("items") if isinstance(payload, dict) else None
        if not isinstance(items, list):
            return self._send(ERROR, "probe_batch payload must be {'items': [...]}")
        started = time.perf_counter()
        executed = 0
        store_hits = 0
        served = 0
        try:
            for item in session.run_batch(items):
                executed += item.executed
                store_hits += item.store_hits
                served += 1
                if not self._send(VERDICT, item.row()):
                    return False
        except Exception as exc:  # bad config/bug payloads stay connection-local
            return self._send(ERROR, f"probe batch failed: {exc}")
        return self._send(
            DONE,
            {
                "items": served,
                "executed": executed,
                "store_hits": store_hits,
                "elapsed_seconds": round(time.perf_counter() - started, 4),
            },
        )


class DetectionServer:
    """The daemon: a listening socket over one shared :class:`ServingSession`."""

    def __init__(
        self,
        model,
        store: "ResultStore | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        kernel: "str | None" = None,
    ) -> None:
        self.session = ServingSession(model, store=store, kernel=kernel)
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self.started_unix = time.time()
        self.draining = False
        self._shutdown = threading.Event()
        self._connections: set[_Connection] = set()
        self._connections_lock = threading.Lock()
        self._accept_thread: threading.Thread | None = None
        self._requests: dict[str, int] = {}
        self.connections_served = 0

    # -- introspection ---------------------------------------------------------

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    def uptime(self) -> float:
        return round(time.time() - self.started_unix, 3)

    def count_request(self, kind: str) -> None:
        self._requests[kind] = self._requests.get(kind, 0) + 1

    def health(self) -> dict:
        """The ``ping``/``stats`` payload: version, uptime, store/entry stats."""
        payload = self.session.snapshot()
        payload.update(
            protocol=PROTOCOL_VERSION,
            uptime_seconds=self.uptime(),
            pid=os.getpid(),
            connections=self.connections_served,
            requests=dict(self._requests),
        )
        return payload

    # -- lifecycle -------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the accept loop to drain and exit (signal-handler safe)."""
        self._shutdown.set()

    def _forget(self, connection: _Connection) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    def serve_forever(self) -> None:
        """Accept-and-serve until :meth:`request_shutdown`, then drain.

        Draining means: stop accepting, let every connection finish the
        request it is currently serving (verdict streams complete), wake
        readers blocked on idle connections, join the serving threads and
        close the listener.  Store writes are atomic per entry, so a drained
        store needs no further flushing.
        """
        try:
            while not self._shutdown.is_set():
                try:
                    sock, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                connection = _Connection(sock, peer, self)
                with self._connections_lock:
                    self._connections.add(connection)
                self.connections_served += 1
                thread = threading.Thread(
                    target=connection.serve,
                    name=f"repro-serve-{peer}",
                    daemon=True,
                )
                connection.thread = thread
                thread.start()
        finally:
            self.draining = True
            with self._connections_lock:
                active = list(self._connections)
            for connection in active:
                # Wait for the in-flight request (if any) to finish streaming,
                # then wake the connection's reader so its thread exits.
                with connection.work:
                    connection.interrupt()
            for connection in active:
                if connection.thread is not None:
                    connection.thread.join(timeout=10)
            self._listener.close()

    # -- embedding helpers (tests, benchmarks) ---------------------------------

    def start(self) -> "DetectionServer":
        """Run :meth:`serve_forever` on a background thread (for embedding)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Drain and stop an embedded server (idempotent)."""
        self.request_shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=30)
            self._accept_thread = None
        else:
            self._listener.close()

    def __enter__(self) -> "DetectionServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# -- CLI ----------------------------------------------------------------------


def _cmd_train(args) -> int:
    from ..experiments.common import ExperimentContext

    with ExperimentContext(
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        store_path=args.store,
        trace_dir=args.trace_dir,
        trace_format=args.trace_format,
    ) as context:
        setup = context.detection_setup(engine=args.engine)
        started = time.perf_counter()
        model = train_model(
            setup,
            name=args.name,
            provenance={
                "scale": context.scale.name,
                "source": "ingested" if args.trace_dir else "synthetic",
            },
        )
        elapsed = time.perf_counter() - started
    save_model(model, args.registry)
    print(
        f"repro-serve: trained model {model.name!r} "
        f"({len(model.probes)} probes, engine {model.schema.ml_engine}, "
        f"{model.provenance['training_jobs']} training jobs, "
        f"digest {model.provenance['training_digest'][:12]}) "
        f"in {elapsed:.1f}s -> {args.registry}"
    )
    return 0


def _cmd_run(args) -> int:
    model = load_model(args.registry)
    store = ResultStore(args.store) if args.store else None
    server = DetectionServer(
        model, store=store, host=args.host, port=args.port, kernel=args.kernel
    )

    def _handle(_signum, _frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)

    host, port = server.address
    print(f"repro-serve: listening on {host}:{port} (model {model.name!r}, "
          f"{len(model.probes)} probes, protocol v{PROTOCOL_VERSION})", flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    server.serve_forever()
    print(
        f"repro-serve: drained after {server.uptime()}s "
        f"({server.connections_served} connections, "
        f"{server.session.stats.verdicts} verdicts, "
        f"{server.session.stats.executed} simulations)",
        flush=True,
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train", help="train a detection model once and persist it"
    )
    train.add_argument("registry", help="output model registry file (pickle)")
    train.add_argument("--scale", default="smoke", choices=["smoke", "small", "full"])
    train.add_argument("--name", default="default", help="model name in the registry")
    train.add_argument("--engine", default=None,
                       help="stage-1 ML engine (default: the scale's default)")
    train.add_argument("--jobs", type=int, default=None,
                       help="local worker processes for training simulations")
    train.add_argument("--backend", default=None,
                       help="execution backend spec for training simulations")
    train.add_argument("--store", default=None,
                       help="persistent result store for training simulations")
    train.add_argument("--trace-dir", default=None,
                       help="train on on-disk traces instead of synthetic workloads")
    train.add_argument("--trace-format", default=None, choices=["champsim", "gem5", "k6"])
    train.set_defaults(func=_cmd_train)

    run = commands.add_parser("run", help="serve a trained model over a socket")
    run.add_argument("registry", help="model registry file written by 'train'")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0,
                     help="TCP port (default 0: ephemeral, printed on startup)")
    run.add_argument("--port-file", default=None,
                     help="write the bound port to this file (for scripts/CI)")
    run.add_argument("--store", default=None,
                     help="persistent result store backing the warm path")
    run.add_argument("--kernel", default=None,
                     choices=["scalar", "vector", "native", "auto"],
                     help="simulation kernel for probe batches "
                          "(default: REPRO_KERNEL, else auto)")
    run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
