"""The request path of the detection daemon: dedup, batch, simulate, score.

One :class:`ServingSession` owns everything a probe→verdict request touches
after the socket layer peels the frames off:

* a warm :class:`~repro.serve.registry.RegisteredModel` (trained stage-1
  models + stage-2 classifier, loaded once),
* a :class:`~repro.runtime.TraceRegistry` holding every registered probe's
  pre-decoded trace (digests computed once at startup),
* an in-memory result overlay plus an optional persistent
  :class:`~repro.runtime.ResultStore` — incoming probe jobs are deduped
  against both, so a repeated request never re-simulates,
* the batched warm path: per request item, all store-missing probe jobs
  share one (config, bug, step) and are grouped by
  :func:`~repro.runtime.execution.plan_batches` into a single batch unit
  through :func:`~repro.coresim.simulator.simulate_trace_batch`.  Unless a
  kernel was chosen explicitly (constructor argument or ``REPRO_KERNEL``),
  the session defaults to ``"auto"``, so the compiled native kernel serves
  the warm path whenever it is available; every kernel executes the same
  plan bit-identically.

Sessions are shared by every connection thread of the daemon.  Simulation
and store mutation run under one lock (the simulators save/restore global
RNG state, and the store's incremental entry count is not thread-safe);
scoring is pure and runs outside it.  Verdicts are yielded per request item
as they complete, so the server can stream them back immediately.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..coresim.simulator import KERNEL_ENV_VAR
from ..runtime import ResultStore, SimulationJob, TraceRegistry
from ..runtime.execution import _execute_unit, plan_batches
from ..runtime.store import StoredResult
from .registry import RegisteredModel, Verdict


@dataclass
class SessionStats:
    """Observable counters of one serving session (reported by ``stats``)."""

    requests: int = 0
    verdicts: int = 0
    executed: int = 0
    memory_hits: int = 0
    store_hits: int = 0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "verdicts": self.verdicts,
            "executed": self.executed,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
        }


@dataclass
class ItemVerdict:
    """One streamed verdict: the scored answer plus its serving cost."""

    index: int
    verdict: Verdict
    executed: int
    store_hits: int
    elapsed_ms: float

    def row(self) -> dict:
        payload = self.verdict.row()
        payload.update(
            index=self.index,
            executed=self.executed,
            store_hits=self.store_hits,
            elapsed_ms=self.elapsed_ms,
        )
        return payload


class ServingSession:
    """Warm serving state shared by every connection of one daemon."""

    def __init__(
        self,
        model: RegisteredModel,
        store: ResultStore | None = None,
        kernel: "str | None" = None,
    ) -> None:
        self.model = model
        self.store = store
        if kernel is None and not os.environ.get(KERNEL_ENV_VAR, "").strip():
            # No explicit choice anywhere: let the auto policy pick the
            # native kernel when it is compiled and eligible.  An explicit
            # REPRO_KERNEL (even "scalar") is always honoured.
            kernel = "auto"
        self.kernel = kernel
        self.stats = SessionStats()
        self._registry = TraceRegistry()
        #: probe name -> trace digest, computed once — serving never re-hashes.
        self._trace_ids = {
            probe.name: self._registry.register(probe.decoded)
            for probe in model.probes
        }
        #: In-memory overlay over the persistent store: repeated requests are
        #: served without touching disk, and a store-less daemon still dedups.
        self._memory: dict[str, StoredResult] = {}
        self._lock = threading.Lock()

    # -- probe jobs ------------------------------------------------------------

    def _jobs_for(self, config, bug) -> list[tuple[SimulationJob, str]]:
        """The (job, probe name) list one request item expands into."""
        step = self.model.schema.step_cycles
        return [
            (
                SimulationJob(
                    study="core",
                    config=config,
                    bug=bug,
                    trace_id=self._trace_ids[probe.name],
                    step=step,
                ),
                probe.name,
            )
            for probe in self.model.probes
        ]

    def _lookup(self, key: str) -> StoredResult | None:
        cached = self._memory.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self.stats.store_hits += 1
                self._memory[key] = stored
                return stored
        return None

    def _persist(self, key: str, stored: StoredResult) -> None:
        self._memory[key] = stored
        if self.store is not None:
            self.store.put(key, stored)

    # -- the request path ------------------------------------------------------

    def _simulate_item(self, config, bug) -> tuple[dict, int, int]:
        """Simulate one item's probes, dedup-first, lockstep-batched misses.

        Returns ``(series_by_probe, executed, store_hits)``.
        """
        jobs = self._jobs_for(config, bug)
        results: dict[str, StoredResult] = {}
        with self._lock:
            hits_before = self.stats.store_hits
            pending: list[tuple[int, SimulationJob]] = []
            pending_names: dict[int, tuple[str, str]] = {}
            for index, (job, probe_name) in enumerate(jobs):
                key = job.key()
                stored = self._lookup(key)
                if stored is not None:
                    results[probe_name] = stored
                    continue
                pending.append((index, job))
                pending_names[index] = (probe_name, key)
            executed = len(pending)
            # All of an item's misses share (config, bug, step), so with a
            # batching kernel plan_batches folds them into one batch unit;
            # with the scalar kernel the same plan runs job-by-job.
            for unit in plan_batches(pending, self.kernel):
                for index, stored in _execute_unit(
                    unit, self._registry.traces, kernel=self.kernel
                ):
                    probe_name, key = pending_names[index]
                    results[probe_name] = stored
                    self._persist(key, stored)
            self.stats.executed += executed
            store_hits = self.stats.store_hits - hits_before
        series_by_probe = {
            name: stored.to_core().series for name, stored in results.items()
        }
        return series_by_probe, executed, store_hits

    def verdict_for(self, index: int, config, bug=None) -> ItemVerdict:
        """Serve one request item end to end (thread-safe)."""
        started = time.perf_counter()
        series_by_probe, executed, store_hits = self._simulate_item(config, bug)
        verdict = self.model.verdict(series_by_probe, config, bug)
        self.stats.verdicts += 1
        return ItemVerdict(
            index=index,
            verdict=verdict,
            executed=executed,
            store_hits=store_hits,
            elapsed_ms=round((time.perf_counter() - started) * 1000.0, 3),
        )

    def run_batch(self, items: Iterable[tuple]) -> Iterator[ItemVerdict]:
        """Serve a probe batch, yielding per-item verdicts as they complete.

        *items* yields ``(config, bug-or-None)`` pairs.  Within an item the
        store-missing probes execute as one lockstep batch; across items the
        generator streams, so the first verdict leaves the daemon while
        later items are still simulating.
        """
        self.stats.requests += 1
        for index, (config, bug) in enumerate(items):
            yield self.verdict_for(index, config, bug)

    # -- introspection ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Health/statistics payload for ``ping`` and ``stats`` requests."""
        payload = {
            "model": self.model.name,
            "probes": len(self.model.probes),
            "step_cycles": self.model.schema.step_cycles,
            "ml_engine": self.model.schema.ml_engine,
            "training_digest": self.model.provenance.get("training_digest"),
            "kernel": self.kernel,
            "memory_entries": len(self._memory),
            "store_entries": len(self.store) if self.store is not None else None,
            "stats": self.stats.snapshot(),
        }
        return payload
