"""Performance probes: SimPoint microbenchmarks plus per-probe counters.

A *probe* (Section III-B) is a short microbenchmark extracted from a long
workload via SimPoint, together with the subset of performance counters
selected for it.  Counters are selected later (after bug-free training data
exists) by :mod:`repro.detect.counter_selection`; a freshly built probe starts
with no counters attached.

Probes come from four kinds of workload: synthetic programs profiled
in-process (:func:`build_probes`), real on-disk traces ingested by
:mod:`repro.workloads.ingest` (:func:`build_ingested_probes`), synthetic
memory-behavior archetypes (:func:`build_memsynth_probes`) and multi-program
mixes (:func:`build_mix_probes`).  The :class:`ProbeSource` wrappers give a
uniform ``build()`` interface so everything downstream — simulation caches,
detectors, experiments — treats the resulting probes identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simpoint.simpoint import SimPoint, select_simpoints, select_simpoints_from_uops
from ..workloads.decoded import DecodedTrace, decode_trace
from ..workloads.ingest import discover_traces
from ..workloads.isa import MicroOp
from ..workloads.spec2006 import workload
from ..workloads.synth import build_program


@dataclass
class Probe:
    """One performance probe."""

    simpoint: SimPoint
    counters: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.simpoint.name

    @property
    def benchmark(self) -> str:
        return self.simpoint.benchmark

    @property
    def trace(self) -> list[MicroOp]:
        return self.simpoint.trace

    @property
    def decoded(self) -> DecodedTrace:
        """Pre-decoded trace for the simulation hot path.

        Decoding is memoised by trace object identity, so every copy of a
        probe sharing one :class:`SimPoint` — the detector copies probes
        freely — shares a single decode.
        """
        return decode_trace(self.simpoint.trace)

    @property
    def weight(self) -> float:
        return self.simpoint.weight

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Probe {self.name} ({len(self.trace)} instrs, {len(self.counters)} counters)>"


def build_probes(
    benchmarks: list[str],
    instructions_per_benchmark: int,
    interval_size: int,
    max_simpoints_per_benchmark: int = 8,
    seed: int = 0,
) -> list[Probe]:
    """Extract probes from *benchmarks* via the SimPoint pipeline.

    Parameters
    ----------
    benchmarks:
        SPEC-like benchmark names (see :data:`repro.workloads.SPEC2006_BENCHMARKS`).
    instructions_per_benchmark:
        Length of each benchmark's profiling trace.
    interval_size:
        Instructions per SimPoint interval (i.e. per probe trace).
    max_simpoints_per_benchmark:
        Upper bound on clusters considered by the BIC selection.
    seed:
        Base seed; each benchmark is offset deterministically.
    """
    if not benchmarks:
        raise ValueError("at least one benchmark is required")
    probes: list[Probe] = []
    for index, name in enumerate(benchmarks):
        program = build_program(workload(name), seed=seed + index)
        selection = select_simpoints(
            program,
            total_instructions=instructions_per_benchmark,
            interval_size=interval_size,
            max_simpoints=max_simpoints_per_benchmark,
            seed=seed + index,
        )
        probes.extend(Probe(simpoint=sp) for sp in selection)
    return probes


def build_ingested_probes(
    trace_dir,
    trace_format: str | None = None,
    interval_size: int = 3_000,
    max_simpoints_per_trace: int = 8,
    seed: int = 0,
) -> list[Probe]:
    """Extract probes from on-disk traces via the same SimPoint pipeline.

    Every trace file under *trace_dir* (see
    :func:`repro.workloads.ingest.discover_traces`; *trace_format* optionally
    restricts to ``"champsim"``, ``"gem5"`` or ``"k6"``) contributes up to
    *max_simpoints_per_trace* probes named ``"<file stem>/spNN"`` — the file
    stem plays the role the benchmark name plays for synthetic probes.  The
    interval size is clamped to the trace length so short traces still yield
    at least one probe.
    """
    probes: list[Probe] = []
    for index, ingested in enumerate(discover_traces(trace_dir, trace_format)):
        uops = ingested.decoded.uops
        selection = select_simpoints_from_uops(
            uops,
            benchmark=ingested.name,
            num_blocks=ingested.num_blocks,
            interval_size=min(interval_size, len(uops)),
            max_simpoints=max_simpoints_per_trace,
            seed=seed + index,
        )
        probes.extend(Probe(simpoint=sp) for sp in selection)
    return probes


def build_mix_probes(
    mixes,
    interval_size: int = 3_000,
    max_simpoints_per_mix: int = 3,
    seed: int = 0,
) -> list[Probe]:
    """Extract probes from built multi-program mixes.

    *mixes* is a sequence of :class:`repro.workloads.mixes.MixedTrace`
    objects; each contributes up to *max_simpoints_per_mix* probes named
    ``"<mix name>/spNN"``.  The interval size is clamped to the mix length.
    """
    probes: list[Probe] = []
    for index, mix in enumerate(mixes):
        selection = select_simpoints_from_uops(
            mix.uops,
            benchmark=mix.name,
            num_blocks=mix.num_blocks,
            interval_size=min(interval_size, len(mix.uops)),
            max_simpoints=max_simpoints_per_mix,
            seed=seed + index,
        )
        probes.extend(Probe(simpoint=sp) for sp in selection)
    return probes


def build_memsynth_probes(
    workloads,
    instructions_per_workload: int,
    interval_size: int = 3_000,
    max_simpoints_per_workload: int = 3,
    seed: int = 0,
) -> list[Probe]:
    """Extract probes from the synthetic memory-behavior generators.

    *workloads* names :data:`repro.workloads.memsynth.MEMSYNTH_WORKLOADS`
    archetypes; each is generated deterministically and profiled through the
    same SimPoint pipeline as every other probe family.
    """
    from ..workloads.memsynth import memsynth_num_blocks, memsynth_trace

    probes: list[Probe] = []
    for index, name in enumerate(workloads):
        uops = memsynth_trace(name, instructions_per_workload, seed=seed + index)
        selection = select_simpoints_from_uops(
            uops,
            benchmark=name,
            num_blocks=memsynth_num_blocks(uops),
            interval_size=min(interval_size, len(uops)),
            max_simpoints=max_simpoints_per_workload,
            seed=seed + index,
        )
        probes.extend(Probe(simpoint=sp) for sp in selection)
    return probes


class ProbeSource:
    """Uniform ``build() -> list[Probe]`` interface over probe provenance."""

    def build(self) -> list[Probe]:
        raise NotImplementedError


@dataclass(frozen=True)
class SyntheticProbeSource(ProbeSource):
    """Probes profiled from the in-process synthetic SPEC-like workloads."""

    benchmarks: tuple[str, ...]
    instructions_per_benchmark: int
    interval_size: int
    max_simpoints_per_benchmark: int = 8
    seed: int = 0

    def build(self) -> list[Probe]:
        return build_probes(
            list(self.benchmarks),
            instructions_per_benchmark=self.instructions_per_benchmark,
            interval_size=self.interval_size,
            max_simpoints_per_benchmark=self.max_simpoints_per_benchmark,
            seed=self.seed,
        )


@dataclass(frozen=True)
class MemsynthProbeSource(ProbeSource):
    """Probes profiled from the synthetic memory-behavior generators."""

    workloads: tuple[str, ...]
    instructions_per_workload: int
    interval_size: int
    max_simpoints_per_workload: int = 3
    seed: int = 0

    def build(self) -> list[Probe]:
        return build_memsynth_probes(
            list(self.workloads),
            instructions_per_workload=self.instructions_per_workload,
            interval_size=self.interval_size,
            max_simpoints_per_workload=self.max_simpoints_per_workload,
            seed=self.seed,
        )


@dataclass(frozen=True)
class IngestedProbeSource(ProbeSource):
    """Probes extracted from on-disk ChampSim/gem5/k6-style traces."""

    trace_dir: str
    trace_format: str | None = None
    interval_size: int = 3_000
    max_simpoints_per_trace: int = 8
    seed: int = 0

    def build(self) -> list[Probe]:
        return build_ingested_probes(
            self.trace_dir,
            trace_format=self.trace_format,
            interval_size=self.interval_size,
            max_simpoints_per_trace=self.max_simpoints_per_trace,
            seed=self.seed,
        )
