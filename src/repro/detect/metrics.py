"""Detection-quality metrics: TPR, FPR, precision and ROC AUC (Equation 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DetectionMetrics:
    """Aggregate detection metrics over a set of labelled predictions."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int
    roc_auc: float

    @property
    def positives(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def negatives(self) -> int:
        return self.true_negatives + self.false_positives

    @property
    def tpr(self) -> float:
        return self.true_positives / self.positives if self.positives else 0.0

    @property
    def fpr(self) -> float:
        return self.false_positives / self.negatives if self.negatives else 0.0

    @property
    def precision(self) -> float:
        predicted_positive = self.true_positives + self.false_positives
        if predicted_positive == 0:
            # The paper reports precision 1.0 for detectors that flag nothing
            # incorrectly; follow the same convention when nothing is flagged.
            return 1.0
        return self.true_positives / predicted_positive


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties receive half credit.  Returns 0.5 when either class is absent.
    """
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = scores[labels]
    negatives = scores[~labels]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    greater = (positives[:, None] > negatives[None, :]).sum()
    ties = (positives[:, None] == negatives[None, :]).sum()
    return float((greater + 0.5 * ties) / (len(positives) * len(negatives)))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(FPR, TPR) points swept over every distinct score threshold."""
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    thresholds = np.concatenate(([np.inf], np.sort(np.unique(scores))[::-1], [-np.inf]))
    positives = labels.sum()
    negatives = (~labels).sum()
    fpr_points = []
    tpr_points = []
    for threshold in thresholds:
        predicted = scores >= threshold
        tp = int(np.sum(predicted & labels))
        fp = int(np.sum(predicted & ~labels))
        tpr_points.append(tp / positives if positives else 0.0)
        fpr_points.append(fp / negatives if negatives else 0.0)
    return np.asarray(fpr_points), np.asarray(tpr_points)


def compute_metrics(
    labels: list[bool] | np.ndarray,
    predictions: list[bool] | np.ndarray,
    scores: list[float] | np.ndarray | None = None,
) -> DetectionMetrics:
    """Build :class:`DetectionMetrics` from labels, hard predictions and scores."""
    labels_arr = np.asarray(labels, dtype=bool)
    preds_arr = np.asarray(predictions, dtype=bool)
    if labels_arr.shape != preds_arr.shape:
        raise ValueError("labels and predictions must have the same shape")
    tp = int(np.sum(preds_arr & labels_arr))
    fp = int(np.sum(preds_arr & ~labels_arr))
    tn = int(np.sum(~preds_arr & ~labels_arr))
    fn = int(np.sum(~preds_arr & labels_arr))
    auc = 0.5
    if scores is not None and len(labels_arr):
        auc = roc_auc(labels_arr, np.asarray(scores, dtype=float))
    return DetectionMetrics(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
        roc_auc=auc,
    )
