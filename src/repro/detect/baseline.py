"""The naive single-stage baseline detector (Section II).

For every probe, a supervised classifier is trained directly on aggregated
probe features — the mean of each selected counter over the whole probe, the
probe's overall IPC, and the design's static parameters — with a bug /
no-bug label.  A design under test is classified by every probe and flagged
buggy when the fraction of positive probe votes ``rho`` reaches a threshold
``theta``.  The classifier is a gradient-boosted-trees regressor on {0, 1}
targets (the paper's best-performing single-stage engine is GBT-250).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..ml.gbt import GradientBoostedTrees
from .counter_selection import select_counters
from .detector import (
    DetectionSetup,
    EvaluationResult,
    FoldResult,
    _tpr_by_severity,
    evaluation_design_bug_pairs,
)
from .metrics import compute_metrics
from .probe import Probe


@dataclass
class SingleStageBaseline:
    """Voting ensemble of per-probe bug/no-bug classifiers."""

    setup: DetectionSetup
    n_estimators: int = 250
    theta_grid: tuple[float, ...] = tuple(np.round(np.arange(0.1, 0.91, 0.05), 3))
    max_fpr: float = 0.25
    theta: float = 0.5
    _classifiers: dict[str, GradientBoostedTrees] = field(default_factory=dict)
    _prepared: bool = False

    # -- feature construction -----------------------------------------------------

    def _probe_features(self, probe: Probe, design, bug=None) -> np.ndarray:
        observation = self.setup.cache.get(probe, design, bug)
        series = observation.series
        # A counter that never fired on this design is simply absent from the
        # sampled series; treat it as zero, as the stage-1 feature path does.
        values = [
            float(series.counters[name].mean()) if name in series.counters else 0.0
            for name in probe.counters
        ]
        values.append(float(series.ipc.mean()))
        if self.setup.model_config.use_arch_features:
            features = design.feature_vector()
            values.extend(features[k] for k in sorted(features))
        return np.asarray(values, dtype=float)

    def _ensure_counters(self, probe: Probe) -> None:
        if probe.counters:
            return
        series = [
            self.setup.cache.get(probe, d, self.setup.presumed_bugfree_bug).series
            for d in self.setup.train_designs + self.setup.val_designs
        ]
        probe.counters = select_counters(series)

    # -- training --------------------------------------------------------------------

    def _training_samples(
        self, probe: Probe, excluded_bug_type: str
    ) -> tuple[np.ndarray, np.ndarray]:
        rows: list[np.ndarray] = []
        labels: list[float] = []
        presumed = self.setup.presumed_bugfree_bug
        for design in self.setup.stage2_designs:
            rows.append(self._probe_features(probe, design, presumed))
            labels.append(0.0)
            for bug_type, variants in self.setup.bug_suite.items():
                if bug_type == excluded_bug_type:
                    continue
                for bug in variants:
                    rows.append(self._probe_features(probe, design, bug))
                    labels.append(1.0)
        return np.vstack(rows), np.asarray(labels)

    def _fit_fold(self, excluded_bug_type: str) -> None:
        self._classifiers = {}
        vote_matrix: list[np.ndarray] = []
        labels: list[float] = []
        for probe in self.setup.probes:
            self._ensure_counters(probe)
            X, y = self._training_samples(probe, excluded_bug_type)
            # zlib.crc32, not hash(): str hashing is salted per interpreter
            # run, which made baseline results differ between invocations.
            model = GradientBoostedTrees(
                n_estimators=self.n_estimators, max_depth=3,
                seed=zlib.crc32(probe.name.encode("utf-8")) % (2**31),
            )
            model.fit(X, y)
            self._classifiers[probe.name] = model
            vote_matrix.append((model.predict(X) > 0.5).astype(float))
            labels = list(y)
        # Tune theta on the training votes: highest TPR subject to the FPR bound.
        votes = np.vstack(vote_matrix)  # probes x samples
        rho = votes.mean(axis=0)
        label_arr = np.asarray(labels, dtype=bool)
        best_theta = self.theta_grid[0]
        best_tpr = -1.0
        for theta in self.theta_grid:
            predictions = rho >= theta
            positives = label_arr.sum()
            negatives = (~label_arr).sum()
            tpr = float(np.sum(predictions & label_arr)) / positives if positives else 0.0
            fpr = float(np.sum(predictions & ~label_arr)) / negatives if negatives else 0.0
            if fpr <= self.max_fpr and tpr > best_tpr:
                best_tpr = tpr
                best_theta = theta
        self.theta = float(best_theta)
        self._prepared = True

    # -- inference ----------------------------------------------------------------------

    def vote_fraction(self, design, bug=None) -> float:
        """rho: fraction of probes whose classifier flags (design, bug)."""
        if not self._prepared:
            raise RuntimeError("baseline has not been trained for a fold yet")
        votes = []
        for probe in self.setup.probes:
            features = self._probe_features(probe, design, bug)[None, :]
            votes.append(float(self._classifiers[probe.name].predict(features)[0] > 0.5))
        return float(np.mean(votes))

    def predict(self, design, bug=None) -> bool:
        return self.vote_fraction(design, bug) >= self.theta

    # -- evaluation ------------------------------------------------------------------------

    def evaluate_fold(self, bug_type: str) -> FoldResult:
        self._fit_fold(bug_type)
        labels: list[bool] = []
        predictions: list[bool] = []
        scores: list[float] = []
        bug_names: list[str] = []
        for design in self.setup.test_designs:
            rho = self.vote_fraction(design, None)
            labels.append(False)
            predictions.append(rho >= self.theta)
            scores.append(rho)
            bug_names.append("bug-free")
            for bug in self.setup.bug_suite[bug_type]:
                rho = self.vote_fraction(design, bug)
                labels.append(True)
                predictions.append(rho >= self.theta)
                scores.append(rho)
                bug_names.append(bug.name)
        return FoldResult(
            bug_type=bug_type,
            labels=labels,
            predictions=predictions,
            scores=scores,
            bug_names=bug_names,
            metrics=compute_metrics(labels, predictions, scores),
        )

    def _warm(self, types: list[str]) -> None:
        """Batch-simulate the full working set of :meth:`evaluate` up front."""
        warm = getattr(self.setup.cache, "warm", None)
        if warm is None:
            return
        setup = self.setup
        # Counter selection reads bug-free train/val series, then the folds
        # read the same evaluation set as the two-stage detector.
        pairs: list[tuple] = [
            (d, setup.presumed_bugfree_bug)
            for d in setup.train_designs + setup.val_designs
        ]
        pairs.extend(evaluation_design_bug_pairs(setup, types))
        warm((probe, design, bug) for design, bug in pairs for probe in setup.probes)

    def evaluate(self, bug_types: Optional[Iterable[str]] = None) -> EvaluationResult:
        """Leave-one-bug-type-out evaluation mirroring the two-stage detector."""
        types = list(bug_types) if bug_types is not None else list(self.setup.bug_suite)
        self._warm(types)
        folds = {bug_type: self.evaluate_fold(bug_type) for bug_type in types}

        all_labels: list[bool] = []
        all_predictions: list[bool] = []
        all_scores: list[float] = []
        for fold in folds.values():
            all_labels.extend(fold.labels)
            all_predictions.extend(fold.predictions)
            all_scores.extend(fold.scores)
        overall = compute_metrics(all_labels, all_predictions, all_scores)

        # Severity is a property of the bug/simulator, not of the detector;
        # reuse the same measurement as the two-stage pipeline.
        from .detector import TwoStageDetector

        measurer = TwoStageDetector(self.setup)
        severity_of_bug = {}
        for bug_type in types:
            for bug in self.setup.bug_suite[bug_type]:
                severity_of_bug[bug.name] = measurer.measure_bug_severity(bug)
        tpr_by_severity = _tpr_by_severity(folds, severity_of_bug)
        return EvaluationResult(
            folds=folds,
            overall=overall,
            tpr_by_severity=tpr_by_severity,
            severity_of_bug=severity_of_bug,
        )
