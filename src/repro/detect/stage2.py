"""Stage 2: rule-based bug classification over per-probe inference errors.

Section III-D: given the error vector [delta_1 ... delta_|P|] of a design
under test, normalise each probe's error against the statistics of the
labelled positive (buggy) and negative (bug-free) training designs,

    gamma_plus_i  = delta_i / (mu_plus_i  + alpha * sigma_plus_i)
    gamma_minus_i = delta_i / (mu_minus_i + alpha * sigma_minus_i)

and flag a bug when ``max(gamma_plus) > eta`` (one probe with a huge error) or
``mean(gamma_minus) > lambda`` (many probes with moderately large errors).
``eta`` and ``lambda`` default to the paper's 15 and 5; ``alpha`` is trained by
scanning a range of values and keeping the one with the highest true-positive
rate subject to a false-positive-rate bound (0.25 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Paper defaults.
DEFAULT_ETA = 15.0
DEFAULT_LAMBDA = 5.0
DEFAULT_MAX_FPR = 0.25
#: Range of alpha values scanned during training.
DEFAULT_ALPHA_GRID = tuple(np.round(np.arange(-1.0, 8.01, 0.25), 3))
#: Floor applied to the gamma denominators to keep them positive.
_DENOMINATOR_FLOOR = 1e-9


@dataclass
class RuleBasedClassifier:
    """The stage-2 classifier: per-probe error statistics plus the two rules.

    ``calibrate_threshold`` is a documented adaptation for this reproduction:
    the numeric scale of the gamma ratios depends on probe length and on the
    simulator, so in addition to training ``alpha`` the decision threshold is
    calibrated on the labelled data under the same FPR constraint.  Setting it
    to ``False`` recovers the paper's fixed ``> 1`` rule (i.e. raw eta/lambda
    thresholds).
    """

    eta: float = DEFAULT_ETA
    lam: float = DEFAULT_LAMBDA
    max_fpr: float = DEFAULT_MAX_FPR
    alpha_grid: tuple[float, ...] = DEFAULT_ALPHA_GRID
    alpha: float = 1.0
    calibrate_threshold: bool = True
    threshold_margin: float = 1.10
    decision_threshold: float = 1.0
    mu_pos: np.ndarray = field(default_factory=lambda: np.empty(0))
    sigma_pos: np.ndarray = field(default_factory=lambda: np.empty(0))
    mu_neg: np.ndarray = field(default_factory=lambda: np.empty(0))
    sigma_neg: np.ndarray = field(default_factory=lambda: np.empty(0))

    # -- internals ---------------------------------------------------------------

    def _gammas(self, errors: np.ndarray, alpha: float) -> tuple[np.ndarray, np.ndarray]:
        errors = np.asarray(errors, dtype=float)
        denom_pos = np.maximum(self.mu_pos + alpha * self.sigma_pos, _DENOMINATOR_FLOOR)
        denom_neg = np.maximum(self.mu_neg + alpha * self.sigma_neg, _DENOMINATOR_FLOOR)
        return errors / denom_pos, errors / denom_neg

    def _score_with_alpha(self, errors: np.ndarray, alpha: float) -> float:
        gamma_pos, gamma_neg = self._gammas(errors, alpha)
        return max(float(gamma_pos.max()) / self.eta, float(gamma_neg.mean()) / self.lam)

    # -- public API -----------------------------------------------------------------

    def fit(
        self,
        positive_errors: list[np.ndarray],
        negative_errors: list[np.ndarray],
    ) -> "RuleBasedClassifier":
        """Estimate per-probe statistics and train alpha on the labelled data."""
        if not positive_errors or not negative_errors:
            raise ValueError("stage 2 needs both positive and negative samples")
        positives = np.asarray(positive_errors, dtype=float)
        negatives = np.asarray(negative_errors, dtype=float)
        if positives.shape[1] != negatives.shape[1]:
            raise ValueError("positive and negative error vectors differ in length")

        self.mu_pos = positives.mean(axis=0)
        self.sigma_pos = positives.std(axis=0)
        self.mu_neg = negatives.mean(axis=0)
        self.sigma_neg = negatives.std(axis=0)

        best_alpha = self.alpha_grid[0]
        best_threshold = 1.0
        best_tpr = -1.0
        best_fpr = 1.1
        for alpha in self.alpha_grid:
            pos_scores = np.array([self._score_with_alpha(e, alpha) for e in positives])
            neg_scores = np.array([self._score_with_alpha(e, alpha) for e in negatives])
            if self.calibrate_threshold:
                # Smallest threshold with zero false positives on the labelled
                # data, padded by a safety margin for unseen designs.
                threshold = float(neg_scores.max()) * self.threshold_margin
                threshold = max(threshold, 1e-9)
            else:
                threshold = 1.0
            tpr = float(np.mean(pos_scores > threshold))
            fpr = float(np.mean(neg_scores > threshold))
            if fpr <= self.max_fpr and (
                tpr > best_tpr or (tpr == best_tpr and fpr < best_fpr)
            ):
                best_tpr = tpr
                best_fpr = fpr
                best_alpha = alpha
                best_threshold = threshold
        if best_tpr < 0:
            # No alpha satisfies the FPR bound; fall back to the most
            # conservative value in the grid (largest denominators).
            best_alpha = max(self.alpha_grid)
        self.alpha = float(best_alpha)
        self.decision_threshold = float(best_threshold)
        return self

    def score(self, errors: np.ndarray) -> float:
        """Continuous detection score; values above 1.0 mean "bug detected"."""
        if self.mu_pos.size == 0:
            raise RuntimeError("classifier has not been fitted")
        raw = self._score_with_alpha(np.asarray(errors, dtype=float), self.alpha)
        return raw / self.decision_threshold

    def predict(self, errors: np.ndarray) -> bool:
        """Apply the two detection rules to one error vector."""
        return self.score(errors) > 1.0

    def gamma_vectors(self, errors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expose (gamma_plus, gamma_minus) for analysis and debugging."""
        if self.mu_pos.size == 0:
            raise RuntimeError("classifier has not been fitted")
        return self._gammas(np.asarray(errors, dtype=float), self.alpha)
