"""Two-step Pearson-correlation counter selection (Section III-B2).

Step 1 keeps counters whose correlation with the target metric (IPC) across
the bug-free training data exceeds a threshold (|r| > 0.7).  Step 2 prunes one
of every pair of surviving counters whose mutual correlation exceeds 0.95
(they are redundant).  Selection is per probe, and the number of selected
counters is clamped to the paper's observed 4-64 range.
"""

from __future__ import annotations

import numpy as np

from ..coresim.counters import CounterTimeSeries
from ..ml.metrics import pearson_correlation

#: Step-1 threshold on |corr(counter, target)|.
TARGET_CORRELATION_THRESHOLD = 0.7
#: Step-2 threshold on |corr(counter_a, counter_b)| above which one is pruned.
REDUNDANCY_THRESHOLD = 0.95
#: Bounds on the per-probe counter count reported by the paper.
MIN_COUNTERS = 4
MAX_COUNTERS = 64

#: Counters that must never be selected as features because they either are
#: the target itself or trivially encode it.
EXCLUDED_COUNTERS = frozenset(
    {
        "commit.instructions",
        "cycles",
        "derived.commit_utilization",
        "mem.amat",
    }
)


def _stack_series(
    series_list: list[CounterTimeSeries], names: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate counter matrices and targets across designs."""
    features = np.vstack([s.matrix(names) for s in series_list])
    targets = np.concatenate([s.ipc for s in series_list])
    return features, targets


def candidate_counters(series_list: list[CounterTimeSeries]) -> list[str]:
    """Counter names available in every series, minus the excluded ones."""
    if not series_list:
        raise ValueError("at least one series is required")
    common = set(series_list[0].counters)
    for series in series_list[1:]:
        common &= set(series.counters)
    return sorted(
        name
        for name in common
        if name not in EXCLUDED_COUNTERS and not name.startswith("uarch.")
        and not name.startswith("mem.l1d_") and not name.startswith("bug.")
    )


def select_counters(
    series_list: list[CounterTimeSeries],
    correlation_threshold: float = TARGET_CORRELATION_THRESHOLD,
    redundancy_threshold: float = REDUNDANCY_THRESHOLD,
    min_counters: int = MIN_COUNTERS,
    max_counters: int = MAX_COUNTERS,
) -> list[str]:
    """Select the per-probe counter subset from bug-free training series.

    Parameters
    ----------
    series_list:
        Bug-free :class:`CounterTimeSeries` of this probe across the training
        microarchitectures.
    correlation_threshold, redundancy_threshold:
        The two Pearson thresholds of Section III-B2.
    min_counters, max_counters:
        Clamp on the selected set size; if fewer than *min_counters* survive
        step 1, the highest-correlation counters are taken instead.
    """
    names = candidate_counters(series_list)
    if not names:
        raise ValueError("no candidate counters found")
    features, targets = _stack_series(series_list, names)

    correlations = np.array(
        [pearson_correlation(features[:, j], targets) for j in range(len(names))]
    )
    order = np.argsort(-np.abs(correlations))

    # Step 1: keep counters strongly correlated with the target.
    selected_indices = [j for j in order if abs(correlations[j]) > correlation_threshold]
    if len(selected_indices) < min_counters:
        selected_indices = list(order[:min_counters])

    # Step 2: prune redundant counters (pairwise correlation above threshold),
    # keeping the counter with the stronger target correlation.
    kept: list[int] = []
    for j in selected_indices:
        redundant = False
        for k in kept:
            pair_corr = pearson_correlation(features[:, j], features[:, k])
            if abs(pair_corr) > redundancy_threshold:
                redundant = True
                break
        if not redundant:
            kept.append(j)
        if len(kept) >= max_counters:
            break

    if len(kept) < min_counters:
        for j in selected_indices:
            if j not in kept:
                kept.append(j)
            if len(kept) >= min_counters:
                break
    return [names[j] for j in kept]


def manual_counter_set(series_list: list[CounterTimeSeries]) -> list[str]:
    """The fixed, manually chosen 22-counter set used as a baseline (Fig. 10).

    Mirrors the paper's manual selection: cache miss rates at every level,
    branch statistics, and per-stage instruction counts of the core pipeline.
    The same set is used for every probe.  Counters missing from the data
    (e.g. L3 statistics on designs without an L3) are dropped.
    """
    manual = [
        "derived.l1d_miss_rate",
        "derived.l2_miss_rate",
        "derived.l3_miss_rate",
        "derived.mpki_l1d",
        "derived.mpki_l2",
        "cache.l1d.accesses",
        "cache.l2.accesses",
        "bp.lookups",
        "bp.mispredicts",
        "derived.bp_mispredict_rate",
        "derived.branch_mpki",
        "derived.pct_branches",
        "derived.pct_loads",
        "derived.pct_stores",
        "derived.pct_fp",
        "fetch.instructions",
        "dispatch.instructions",
        "issue.instructions",
        "writeback.instructions",
        "commit.register_writes",
        "rob.occupancy_sum",
        "iq.occupancy_sum",
    ]
    available = set(candidate_counters(series_list))
    chosen = [name for name in manual if name in available]
    if not chosen:
        raise ValueError("none of the manual counters are present in the data")
    return chosen
