"""The paper's contribution: two-stage ML-based performance-bug detection."""

from .baseline import SingleStageBaseline
from .counter_selection import (
    MAX_COUNTERS,
    MIN_COUNTERS,
    manual_counter_set,
    select_counters,
)
from .dataset import (
    BUG_FREE_KEY,
    MemorySimulationCache,
    Observation,
    SimulationCache,
)
from .detector import (
    DetectionSetup,
    EvaluationResult,
    FoldResult,
    TwoStageDetector,
)
from .metrics import DetectionMetrics, compute_metrics, roc_auc, roc_curve
from .probe import (
    IngestedProbeSource,
    Probe,
    ProbeSource,
    SyntheticProbeSource,
    build_ingested_probes,
    build_probes,
)
from .stage1 import ProbeModel, ProbeModelConfig
from .stage2 import RuleBasedClassifier

__all__ = [
    "Probe",
    "ProbeSource",
    "SyntheticProbeSource",
    "IngestedProbeSource",
    "build_probes",
    "build_ingested_probes",
    "SimulationCache",
    "MemorySimulationCache",
    "Observation",
    "BUG_FREE_KEY",
    "select_counters",
    "manual_counter_set",
    "MIN_COUNTERS",
    "MAX_COUNTERS",
    "ProbeModel",
    "ProbeModelConfig",
    "RuleBasedClassifier",
    "DetectionSetup",
    "TwoStageDetector",
    "EvaluationResult",
    "FoldResult",
    "SingleStageBaseline",
    "DetectionMetrics",
    "compute_metrics",
    "roc_auc",
    "roc_curve",
]
