"""End-to-end two-stage bug detector and its evaluation protocol.

This module wires the pieces of the methodology together:

* simulate every probe, bug-free, on the stage-1 training (Set I) and
  validation (Set II) designs,
* select per-probe counters from that bug-free data,
* train one stage-1 model per probe,
* compute Equation-(1) error vectors for arbitrary (design, bug) pairs,
* train/evaluate the stage-2 rule-based classifier under the paper's
  leave-one-bug-type-out protocol (Figure 7), reporting TPR / FPR /
  precision / ROC-AUC overall, per bug type and per severity band (Table V).

The detector is generic over the substrate: it works identically for the core
study (``SimulationCache`` + ``MicroarchConfig`` + core bugs) and the memory
study (``MemorySimulationCache`` + ``MemoryHierarchyConfig`` + memory bugs),
because both expose the same small interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..bugs.base import Severity
from .counter_selection import manual_counter_set, select_counters
from .metrics import DetectionMetrics, compute_metrics
from .probe import Probe
from .stage1 import ProbeModel, ProbeModelConfig
from .stage2 import RuleBasedClassifier


@dataclass
class DetectionSetup:
    """Everything the detector needs: probes, designs, bugs and model config."""

    probes: list[Probe]
    train_designs: list  # Set I
    val_designs: list  # Set II
    stage2_designs: list  # Sets II + III
    test_designs: list  # Set IV
    bug_suite: dict[str, list]
    cache: object
    model_config: ProbeModelConfig = field(default_factory=ProbeModelConfig)
    counter_selection: str = "auto"  # "auto" or "manual"
    target_higher_is_better: bool = True  # True for IPC, False for AMAT
    presumed_bugfree_bug: object | None = None

    def __post_init__(self) -> None:
        if not self.probes:
            raise ValueError("at least one probe is required")
        if not self.train_designs or not self.test_designs:
            raise ValueError("training and test design sets must be non-empty")
        if self.counter_selection not in ("auto", "manual"):
            raise ValueError("counter_selection must be 'auto' or 'manual'")
        if not self.bug_suite:
            raise ValueError("bug_suite must not be empty")


@dataclass
class FoldResult:
    """Evaluation of one leave-one-bug-type-out fold."""

    bug_type: str
    labels: list[bool]
    predictions: list[bool]
    scores: list[float]
    bug_names: list[str]
    metrics: DetectionMetrics


@dataclass
class EvaluationResult:
    """Aggregate of all leave-one-bug-type-out folds."""

    folds: dict[str, FoldResult]
    overall: DetectionMetrics
    tpr_by_severity: dict[Severity, float]
    severity_of_bug: dict[str, Severity]

    def summary_row(self) -> dict[str, float]:
        """The Table-V style row for this configuration."""
        row = {
            "FPR": self.overall.fpr,
            "TPR": self.overall.tpr,
            "ROC AUC": self.overall.roc_auc,
            "Precision": self.overall.precision,
        }
        for severity in Severity:
            row[f"TPR {severity.value}"] = self.tpr_by_severity.get(severity, float("nan"))
        return row


class TwoStageDetector:
    """The paper's two-stage methodology, end to end."""

    def __init__(self, setup: DetectionSetup) -> None:
        self.setup = setup
        self.models: dict[str, ProbeModel] = {}
        self._prepared = False

    # -- helpers -------------------------------------------------------------------

    def _design_features(self, design) -> dict[str, float]:
        return design.feature_vector() if self.setup.model_config.use_arch_features else {}

    def _bugfree_bug(self):
        """Bug injected into designs presumed bug-free (None in the normal case)."""
        return self.setup.presumed_bugfree_bug

    def _observe(self, probe: Probe, design, bug=None):
        return self.setup.cache.get(probe, design, bug)

    def _warm(self, designs_and_bugs: Iterable[tuple]) -> None:
        """Batch-simulate (design, bug) pairs for every probe via the cache.

        Caches that expose ``warm`` (both bundled caches do) receive the
        whole working set as one batch, letting the job engine shard it
        across workers; other cache objects fall back to lazy ``get`` calls.
        """
        warm = getattr(self.setup.cache, "warm", None)
        if warm is None:
            return
        warm(
            (probe, design, bug)
            for design, bug in designs_and_bugs
            for probe in self.setup.probes
        )

    # -- preparation -----------------------------------------------------------------

    def prepare(self) -> None:
        """Collect bug-free training data, select counters, fit stage-1 models."""
        setup = self.setup
        presumed = self._bugfree_bug()
        self._warm((d, presumed) for d in setup.train_designs + setup.val_designs)
        for probe in setup.probes:
            train_series = {
                d.name: self._observe(probe, d, presumed).series for d in setup.train_designs
            }
            val_series = {
                d.name: self._observe(probe, d, presumed).series for d in setup.val_designs
            }
            all_series = list(train_series.values()) + list(val_series.values())
            if setup.counter_selection == "auto":
                probe.counters = select_counters(all_series)
            else:
                probe.counters = manual_counter_set(all_series)

            model = ProbeModel(probe=probe, config=setup.model_config)
            arch_features = {
                d.name: self._design_features(d)
                for d in setup.train_designs + setup.val_designs
            }
            model.fit(train_series, val_series, arch_features)
            self.models[probe.name] = model
        self._prepared = True

    # -- stage-1 errors -----------------------------------------------------------------

    def error_vector(self, design, bug=None) -> np.ndarray:
        """Equation-(1) errors of every probe for one (design, bug) pair."""
        if not self._prepared:
            raise RuntimeError("call prepare() before computing error vectors")
        features = self._design_features(design)
        errors = []
        for probe in self.setup.probes:
            observation = self._observe(probe, design, bug)
            model = self.models[probe.name]
            errors.append(model.inference_error(observation.series, features))
        return np.asarray(errors, dtype=float)

    def bugfree_error_vectors(self, designs: Sequence) -> dict[str, np.ndarray]:
        """Bug-free error vectors of several designs, keyed by design name."""
        presumed = self._bugfree_bug()
        return {d.name: self.error_vector(d, presumed) for d in designs}

    # -- severity --------------------------------------------------------------------------

    def measure_bug_severity(self, bug) -> Severity:
        """Severity band of *bug*: mean relative target degradation on test designs."""
        impacts = []
        for design in self.setup.test_designs:
            for probe in self.setup.probes:
                clean = self._observe(probe, design, None).target_metric
                buggy = self._observe(probe, design, bug).target_metric
                if clean <= 0:
                    continue
                if self.setup.target_higher_is_better:
                    impacts.append(max(0.0, (clean - buggy) / clean))
                else:
                    impacts.append(max(0.0, (buggy - clean) / clean))
        average = float(np.mean(impacts)) if impacts else 0.0
        return Severity.from_impact(average)

    # -- evaluation -------------------------------------------------------------------------

    def _stage2_training_errors(
        self, excluded_bug_type: str
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Positive/negative stage-2 training error vectors (Sets II + III)."""
        setup = self.setup
        presumed = self._bugfree_bug()
        positives: list[np.ndarray] = []
        negatives: list[np.ndarray] = []
        for design in setup.stage2_designs:
            negatives.append(self.error_vector(design, presumed))
            for bug_type, variants in setup.bug_suite.items():
                if bug_type == excluded_bug_type:
                    continue
                for bug in variants:
                    positives.append(self.error_vector(design, bug))
        return positives, negatives

    def _warm_for_evaluation(self, types: list[str]) -> None:
        """Pre-simulate exactly the observations :meth:`evaluate` will read.

        One big batch covers stage-2 training (Sets II + III, presumed
        bug-free plus every non-excluded bug variant), the Set-IV test rows
        and the severity measurement — the same set the lazy path would
        simulate one at a time, so cache miss counts are unchanged.
        """
        self._warm(evaluation_design_bug_pairs(self.setup, types))

    def evaluate_fold(self, bug_type: str) -> FoldResult:
        """Train stage 2 without *bug_type* and test on Set IV with it."""
        if bug_type not in self.setup.bug_suite:
            raise KeyError(f"unknown bug type {bug_type!r}")
        positives, negatives = self._stage2_training_errors(bug_type)
        classifier = RuleBasedClassifier()
        classifier.fit(positives, negatives)

        labels: list[bool] = []
        predictions: list[bool] = []
        scores: list[float] = []
        bug_names: list[str] = []
        for design in self.setup.test_designs:
            clean_errors = self.error_vector(design, None)
            labels.append(False)
            predictions.append(classifier.predict(clean_errors))
            scores.append(classifier.score(clean_errors))
            bug_names.append("bug-free")
            for bug in self.setup.bug_suite[bug_type]:
                errors = self.error_vector(design, bug)
                labels.append(True)
                predictions.append(classifier.predict(errors))
                scores.append(classifier.score(errors))
                bug_names.append(bug.name)
        metrics = compute_metrics(labels, predictions, scores)
        return FoldResult(
            bug_type=bug_type,
            labels=labels,
            predictions=predictions,
            scores=scores,
            bug_names=bug_names,
            metrics=metrics,
        )

    def evaluate(self, bug_types: Optional[Iterable[str]] = None) -> EvaluationResult:
        """Run every leave-one-bug-type-out fold and aggregate the metrics."""
        if not self._prepared:
            self.prepare()
        types = list(bug_types) if bug_types is not None else list(self.setup.bug_suite)
        self._warm_for_evaluation(types)
        folds = {bug_type: self.evaluate_fold(bug_type) for bug_type in types}

        all_labels: list[bool] = []
        all_predictions: list[bool] = []
        all_scores: list[float] = []
        for fold in folds.values():
            all_labels.extend(fold.labels)
            all_predictions.extend(fold.predictions)
            all_scores.extend(fold.scores)
        overall = compute_metrics(all_labels, all_predictions, all_scores)

        severity_of_bug: dict[str, Severity] = {}
        for bug_type in types:
            for bug in self.setup.bug_suite[bug_type]:
                severity_of_bug[bug.name] = self.measure_bug_severity(bug)

        tpr_by_severity = _tpr_by_severity(folds, severity_of_bug)
        return EvaluationResult(
            folds=folds,
            overall=overall,
            tpr_by_severity=tpr_by_severity,
            severity_of_bug=severity_of_bug,
        )


def evaluation_design_bug_pairs(
    setup: DetectionSetup, types: list[str]
) -> list[tuple]:
    """(design, bug) pairs a leave-one-bug-type-out evaluation reads.

    Shared by the two-stage detector and the single-stage baseline so their
    batch pre-warming stays in lockstep with the fold protocol: stage-2
    training designs with the presumed-bug-free bug plus every bug variant
    of each non-excluded type, then Set-IV test designs bug-free and with
    the evaluated types' variants (which also covers severity measurement).
    """
    presumed = setup.presumed_bugfree_bug
    pairs: list[tuple] = []
    # Stage-2 training: a bug type is needed whenever some evaluated fold
    # does not exclude it.
    stage2_types = [bt for bt in setup.bug_suite if any(t != bt for t in types)]
    for design in setup.stage2_designs:
        pairs.append((design, presumed))
        for bug_type in stage2_types:
            pairs.extend((design, bug) for bug in setup.bug_suite[bug_type])
    for design in setup.test_designs:
        pairs.append((design, None))
        for bug_type in types:
            pairs.extend((design, bug) for bug in setup.bug_suite[bug_type])
    return pairs


def _tpr_by_severity(
    folds: dict[str, FoldResult], severity_of_bug: dict[str, Severity]
) -> dict[Severity, float]:
    """True-positive rate broken down by measured severity band."""
    detected = {band: 0 for band in Severity}
    totals = {band: 0 for band in Severity}
    for fold in folds.values():
        for label, prediction, bug_name in zip(
            fold.labels, fold.predictions, fold.bug_names
        ):
            if not label:
                continue
            band = severity_of_bug.get(bug_name)
            if band is None:
                continue
            totals[band] += 1
            if prediction:
                detected[band] += 1
    return {
        band: (detected[band] / totals[band]) if totals[band] else float("nan")
        for band in Severity
    }
