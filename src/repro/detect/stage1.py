"""Stage 1: per-probe performance (IPC/AMAT) modelling (Section III-C).

One regression model is trained *per probe* on bug-free legacy designs.  The
model maps the probe's selected performance counters (optionally augmented
with static microarchitecture design-parameter features) sampled per time
step to the target metric of that step.  Applying the model to a new design
yields a time series of inferred values whose Equation-(1) error against the
simulated values is the probe's stage-1 output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coresim.counters import CounterTimeSeries
from ..ml.engines import build_model
from ..ml.metrics import inference_error, mean_squared_error
from ..ml.preprocessing import make_window_dataset
from .probe import Probe


@dataclass
class ProbeModelConfig:
    """Hyper-parameters of a per-probe stage-1 model."""

    engine: str = "GBT-250"
    window: int = 1
    use_arch_features: bool = True
    max_epochs: int | None = 150
    patience: int | None = 50
    seed: int = 0


@dataclass
class ProbeModel:
    """The stage-1 IPC/AMAT model of one probe."""

    probe: Probe
    config: ProbeModelConfig = field(default_factory=ProbeModelConfig)
    _model: object | None = None
    feature_names: list[str] = field(default_factory=list)

    def _build_features(
        self,
        series: CounterTimeSeries,
        arch_features: dict[str, float] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-step feature windows and targets for one design's series."""
        augmented = series
        if self.config.use_arch_features and arch_features:
            augmented = series.with_static_features(arch_features)
        matrix = augmented.matrix(self.feature_names)
        targets = augmented.ipc
        if len(targets) < self.config.window and len(targets) > 0:
            # Short probes on fast designs can have fewer steps than the
            # window; pad by repeating the first step so one sample exists.
            pad = self.config.window - len(targets)
            matrix = np.vstack([np.repeat(matrix[:1], pad, axis=0), matrix])
            targets = np.concatenate([np.repeat(targets[:1], pad), targets])
        return make_window_dataset(matrix, targets, self.config.window)

    def _resolve_feature_names(self, arch_features: dict[str, float] | None) -> None:
        names = list(self.probe.counters)
        if not names:
            raise ValueError(
                f"probe {self.probe.name} has no selected counters; run counter "
                "selection before training stage 1"
            )
        if self.config.use_arch_features and arch_features:
            names = names + sorted(arch_features)
        self.feature_names = names

    def fit(
        self,
        train_series: dict[str, CounterTimeSeries],
        val_series: dict[str, CounterTimeSeries],
        arch_features: dict[str, dict[str, float]] | None = None,
    ) -> float:
        """Train on bug-free series of the training/validation designs.

        Parameters
        ----------
        train_series:
            ``{design name: bug-free series}`` for the Set-I designs.
        val_series:
            Same for the Set-II designs (early-stopping validation).
        arch_features:
            ``{design name: static feature dict}``; required when
            ``use_arch_features`` is enabled.

        Returns the validation MSE (or training MSE when no validation data).
        """
        if not train_series:
            raise ValueError("stage-1 training requires at least one design")
        arch_features = arch_features or {}
        sample_arch = next(iter(train_series))
        self._resolve_feature_names(arch_features.get(sample_arch))

        def assemble(series_map: dict[str, CounterTimeSeries]):
            xs, ys = [], []
            for name, series in series_map.items():
                X, y = self._build_features(series, arch_features.get(name))
                if len(y):
                    xs.append(X)
                    ys.append(y)
            if not xs:
                return np.empty((0, self.config.window, len(self.feature_names))), np.empty(0)
            return np.concatenate(xs), np.concatenate(ys)

        X_train, y_train = assemble(train_series)
        X_val, y_val = assemble(val_series)
        if len(y_train) == 0:
            raise ValueError("no stage-1 training samples were produced")

        self._model = build_model(
            self.config.engine,
            seed=self.config.seed,
            max_epochs=self.config.max_epochs,
            patience=self.config.patience,
        )
        self._model.fit(X_train, y_train, X_val if len(y_val) else None,
                        y_val if len(y_val) else None)
        if len(y_val):
            return mean_squared_error(y_val, self._model.predict(X_val))
        return mean_squared_error(y_train, self._model.predict(X_train))

    def predict_series(
        self,
        series: CounterTimeSeries,
        arch_features: dict[str, float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (simulated, inferred) target series for one design."""
        if self._model is None:
            raise RuntimeError("stage-1 model has not been trained")
        X, y = self._build_features(series, arch_features)
        if len(y) == 0:
            raise ValueError(
                f"series for probe {self.probe.name} is shorter than the window"
            )
        return y, self._model.predict(X)

    def inference_error(
        self,
        series: CounterTimeSeries,
        arch_features: dict[str, float] | None = None,
    ) -> float:
        """Equation-(1) error of the model on one design's series."""
        simulated, inferred = self.predict_series(series, arch_features)
        return inference_error(simulated, inferred)

    def mse(
        self,
        series: CounterTimeSeries,
        arch_features: dict[str, float] | None = None,
    ) -> float:
        """Plain MSE of the model on one design's series (used by Fig. 11)."""
        simulated, inferred = self.predict_series(series, arch_features)
        return mean_squared_error(simulated, inferred)
