"""Simulation data collection and caching for the detection pipeline.

Running a probe on a microarchitecture (with or without an injected bug) is by
far the most expensive operation in the methodology, and the same (probe,
design, bug) observation is reused by several experiments — stage-1 training,
stage-2 training, every leave-one-bug-type-out fold, and the ablations.  The
:class:`SimulationCache` memoises those runs.

Both caches route their misses through a :class:`~repro.runtime.JobEngine`
as batches of :class:`~repro.runtime.SimulationJob` specs rather than looping
the simulators inline: callers that know their working set up front (the
detector, the experiments) call :meth:`SimulationCache.warm` with every
(probe, design, bug) triple they will need, and the engine shards the misses
across worker processes and/or serves them from its persistent result store.
Single :meth:`get` calls degrade to one-job batches, so the serial behaviour
is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..coresim.counters import CounterTimeSeries
from ..coresim.hooks import CoreBugModel
from ..runtime import CORE_STUDY, MEMORY_STUDY, JobEngine, SimulationJob, TraceRegistry
from ..uarch.config import MicroarchConfig
from .probe import Probe

#: Bug key used for bug-free observations.
BUG_FREE_KEY = "bug-free"

def _bug_key(bug) -> str:
    return bug.name if bug is not None else BUG_FREE_KEY


@dataclass
class Observation:
    """One simulated (probe, design, bug) data point."""

    probe_name: str
    config_name: str
    bug_name: str
    series: CounterTimeSeries
    ipc: float
    target_metric: float


class SimulationCache:
    """Memoised core-simulator runs keyed by (probe, design, bug)."""

    study = CORE_STUDY

    def __init__(self, step_cycles: int = 2048, engine: JobEngine | None = None) -> None:
        self.step_cycles = step_cycles
        self.engine = engine if engine is not None else JobEngine(jobs=1)
        self._cache: dict[tuple[str, str, str], Observation] = {}
        self._registry = TraceRegistry()
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def _job(self, probe: Probe, config, bug) -> SimulationJob:
        # Register the pre-decoded trace: the digest (and therefore every job
        # key and store entry) is identical to the plain list's, but workers
        # receive compact column arrays plus an amortised per-trace decode.
        return SimulationJob(
            study=self.study,
            config=config,
            bug=bug,
            trace_id=self._registry.register(probe.decoded),
            step=self.step_cycles,
        )

    def _observe(self, probe: Probe, config, bug, stored) -> Observation:
        result = stored.to_core()
        return Observation(
            probe_name=probe.name,
            config_name=config.name,
            bug_name=_bug_key(bug),
            series=result.series,
            ipc=result.ipc,
            target_metric=result.ipc,
        )

    def warm(self, requests: Iterable[Sequence]) -> int:
        """Simulate every not-yet-cached request as one engine batch.

        *requests* yields ``(probe, config, bug-or-None)`` triples.  Returns
        the number of jobs dispatched (in-memory cache misses); engine-level
        store hits still count as dispatched jobs here.
        """
        jobs: list[SimulationJob] = []
        meta: list[tuple[tuple[str, str, str], Probe, object, object]] = []
        seen: set[tuple[str, str, str]] = set()
        for probe, config, bug in requests:
            key = (probe.name, config.name, _bug_key(bug))
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            jobs.append(self._job(probe, config, bug))
            meta.append((key, probe, config, bug))
        if not jobs:
            return 0
        self.misses += len(jobs)
        stored_results = self.engine.run(jobs, self._registry.traces)
        for (key, probe, config, bug), stored in zip(meta, stored_results):
            self._cache[key] = self._observe(probe, config, bug, stored)
        return len(jobs)

    def get(
        self,
        probe: Probe,
        config: MicroarchConfig,
        bug: CoreBugModel | None = None,
    ) -> Observation:
        """Return the observation, simulating on first use."""
        key = (probe.name, config.name, _bug_key(bug))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.warm([(probe, config, bug)])
        return self._cache[key]


class MemorySimulationCache(SimulationCache):
    """Memoised memory-hierarchy runs keyed by (probe, design, bug)."""

    study = MEMORY_STUDY

    def __init__(
        self,
        step_instructions: int = 2000,
        target_metric: str = "amat",
        engine: JobEngine | None = None,
    ) -> None:
        if target_metric not in ("amat", "ipc"):
            raise ValueError("target_metric must be 'amat' or 'ipc'")
        super().__init__(step_cycles=step_instructions, engine=engine)
        self.step_instructions = step_instructions
        self.target_metric = target_metric

    def _observe(self, probe: Probe, config, bug, stored) -> Observation:
        result = stored.to_memory()
        series = result.series
        if self.target_metric == "amat":
            # Swap the target series so the generic stage-1 machinery (which
            # regresses ``series.ipc``) models AMAT instead.
            series = CounterTimeSeries(
                step_cycles=series.step_cycles,
                counters=dict(series.counters),
                ipc=series.counters["mem.amat"].copy(),
            )
        return Observation(
            probe_name=probe.name,
            config_name=config.name,
            bug_name=_bug_key(bug),
            series=series,
            ipc=result.ipc,
            target_metric=result.amat if self.target_metric == "amat" else result.ipc,
        )
