"""Simulation data collection and caching for the detection pipeline.

Running a probe on a microarchitecture (with or without an injected bug) is by
far the most expensive operation in the methodology, and the same (probe,
design, bug) observation is reused by several experiments — stage-1 training,
stage-2 training, every leave-one-bug-type-out fold, and the ablations.  The
:class:`SimulationCache` memoises those runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coresim.counters import CounterTimeSeries
from ..coresim.hooks import CoreBugModel
from ..coresim.simulator import simulate_trace
from ..memsim.hooks import MemoryBugModel
from ..memsim.simulator import simulate_memory_trace
from ..uarch.config import MemoryHierarchyConfig, MicroarchConfig
from .probe import Probe

#: Bug key used for bug-free observations.
BUG_FREE_KEY = "bug-free"


@dataclass
class Observation:
    """One simulated (probe, design, bug) data point."""

    probe_name: str
    config_name: str
    bug_name: str
    series: CounterTimeSeries
    ipc: float
    target_metric: float


class SimulationCache:
    """Memoised core-simulator runs keyed by (probe, design, bug)."""

    def __init__(self, step_cycles: int = 2048) -> None:
        self.step_cycles = step_cycles
        self._cache: dict[tuple[str, str, str], Observation] = {}
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def get(
        self,
        probe: Probe,
        config: MicroarchConfig,
        bug: CoreBugModel | None = None,
    ) -> Observation:
        """Return the observation, simulating on first use."""
        bug_name = bug.name if bug is not None else BUG_FREE_KEY
        key = (probe.name, config.name, bug_name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.misses += 1
        result = simulate_trace(
            config, probe.trace, bug=bug, step_cycles=self.step_cycles
        )
        observation = Observation(
            probe_name=probe.name,
            config_name=config.name,
            bug_name=bug_name,
            series=result.series,
            ipc=result.ipc,
            target_metric=result.ipc,
        )
        self._cache[key] = observation
        return observation


class MemorySimulationCache:
    """Memoised memory-hierarchy runs keyed by (probe, design, bug)."""

    def __init__(self, step_instructions: int = 2000, target_metric: str = "amat") -> None:
        if target_metric not in ("amat", "ipc"):
            raise ValueError("target_metric must be 'amat' or 'ipc'")
        self.step_instructions = step_instructions
        self.target_metric = target_metric
        self._cache: dict[tuple[str, str, str], Observation] = {}
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def get(
        self,
        probe: Probe,
        config: MemoryHierarchyConfig,
        bug: MemoryBugModel | None = None,
    ) -> Observation:
        bug_name = bug.name if bug is not None else BUG_FREE_KEY
        key = (probe.name, config.name, bug_name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.misses += 1
        result = simulate_memory_trace(
            config, probe.trace, bug=bug, step_instructions=self.step_instructions
        )
        series = result.series
        if self.target_metric == "amat":
            # Swap the target series so the generic stage-1 machinery (which
            # regresses ``series.ipc``) models AMAT instead.
            series = CounterTimeSeries(
                step_cycles=series.step_cycles,
                counters=dict(series.counters),
                ipc=series.counters["mem.amat"].copy(),
            )
        observation = Observation(
            probe_name=probe.name,
            config_name=config.name,
            bug_name=bug_name,
            series=series,
            ipc=result.ipc,
            target_metric=result.amat if self.target_metric == "amat" else result.ipc,
        )
        self._cache[key] = observation
        return observation
