"""The 6 memory-system performance-bug types of Section IV-D.

Each bug is a :class:`~repro.memsim.hooks.MemoryBugModel` subclass:

1. Replacement age counter not updated on access.
2. Eviction picks the most recently used block instead of the LRU block.
3. After N load misses at L1D (or L2 variant), reads are delayed T cycles.
4. SPP signatures are reset, making the prefetcher use the wrong address.
5. Lookahead prefetching follows the least-confident path.
6. Some prefetches are incorrectly marked as executed.
"""

from __future__ import annotations

from ..memsim.hooks import MemoryBugModel
from .base import BugInfo


class MemoryBug(MemoryBugModel):
    """Base class for injected memory-system bugs with metadata."""

    bug_type: str = "abstract"

    def __init__(self, name: str, params: dict[str, object], description: str) -> None:
        self.name = name
        self.info = BugInfo(
            name=name, bug_type=self.bug_type, params=params, description=description
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NoAgeUpdateOnAccess(MemoryBug):
    """Bug 1: the replacement age counter is not updated when a block hits."""

    bug_type = "ReplacementNoAgeUpdate"

    def __init__(self, level: str = "l1d") -> None:
        super().__init__(
            name=f"no_age_update_{level}",
            params={"level": level},
            description=f"LRU age not updated on {level.upper()} hits",
        )
        self.level = level

    def update_replacement_on_access(self, level: str) -> bool:
        return level != self.level


class EvictMRU(MemoryBug):
    """Bug 2: evictions remove the most recently used block."""

    bug_type = "EvictMRU"

    def __init__(self, level: str = "l1d") -> None:
        super().__init__(
            name=f"evict_mru_{level}",
            params={"level": level},
            description=f"{level.upper()} evicts the MRU block instead of the LRU block",
        )
        self.level = level

    def evict_most_recently_used(self, level: str) -> bool:
        return level == self.level


class LoadMissDelay(MemoryBug):
    """Bug 3: after N load misses at a level, reads are delayed T cycles."""

    bug_type = "LoadMissDelay"

    def __init__(self, level: str = "l1d", threshold: int = 64, delay: int = 20) -> None:
        super().__init__(
            name=f"load_miss_delay_{level}_{threshold}_{delay}",
            params={"level": level, "threshold": threshold, "delay": delay},
            description=f"After {threshold} load misses at {level.upper()}, reads "
            f"are delayed {delay} cycles",
        )
        self.level = level
        self.threshold = threshold
        self.delay = delay

    def load_miss_extra_delay(self, level: str, miss_count: int) -> int:
        if level == self.level and miss_count > self.threshold:
            return self.delay
        return 0


class SPPSignatureReset(MemoryBug):
    """Bug 4: SPP signatures are reset, so learned delta paths are lost."""

    bug_type = "SPPSignatureReset"

    def __init__(self) -> None:
        super().__init__(
            name="spp_signature_reset",
            params={},
            description="SPP signatures reset to zero on every access",
        )

    def spp_corrupt_signature(self, signature: int) -> int:
        return 0


class SPPLeastConfidence(MemoryBug):
    """Bug 5: lookahead prefetching follows the least-confident path."""

    bug_type = "SPPLeastConfidence"

    def __init__(self) -> None:
        super().__init__(
            name="spp_least_confidence",
            params={},
            description="SPP lookahead selects the least-confident delta",
        )

    def spp_pick_least_confident(self) -> bool:
        return True


class SPPDroppedPrefetches(MemoryBug):
    """Bug 6: a fraction of prefetches are marked executed but never issued."""

    bug_type = "SPPDroppedPrefetches"

    def __init__(self, drop_every: int = 2) -> None:
        super().__init__(
            name=f"spp_dropped_prefetches_{drop_every}",
            params={"drop_every": drop_every},
            description=f"Every {drop_every}-th prefetch is marked executed but dropped",
        )
        self.drop_every = max(1, drop_every)

    def spp_drop_prefetch(self, prefetch_index: int) -> bool:
        return prefetch_index % self.drop_every == 0


#: Memory bug-type identifiers in the paper's order.
MEMORY_BUG_TYPES: tuple[str, ...] = (
    "ReplacementNoAgeUpdate",
    "EvictMRU",
    "LoadMissDelay",
    "SPPSignatureReset",
    "SPPLeastConfidence",
    "SPPDroppedPrefetches",
)


def memory_bug_suite(max_variants_per_type: int | None = None) -> dict[str, list[MemoryBug]]:
    """The memory-system bug suite as ``{bug_type: [variants...]}``."""
    suite: dict[str, list[MemoryBug]] = {
        "ReplacementNoAgeUpdate": [NoAgeUpdateOnAccess("l1d"), NoAgeUpdateOnAccess("l2")],
        "EvictMRU": [EvictMRU("l1d"), EvictMRU("l2")],
        "LoadMissDelay": [
            LoadMissDelay("l1d", threshold=64, delay=20),
            LoadMissDelay("l2", threshold=32, delay=40),
        ],
        "SPPSignatureReset": [SPPSignatureReset()],
        "SPPLeastConfidence": [SPPLeastConfidence()],
        "SPPDroppedPrefetches": [SPPDroppedPrefetches(2), SPPDroppedPrefetches(4)],
    }
    if max_variants_per_type is not None:
        if max_variants_per_type <= 0:
            raise ValueError("max_variants_per_type must be positive")
        suite = {k: v[:max_variants_per_type] for k, v in suite.items()}
    return suite


def all_memory_bugs(max_variants_per_type: int | None = None) -> list[MemoryBug]:
    """Flat list of every memory bug variant."""
    return [b for variants in memory_bug_suite(max_variants_per_type).values()
            for b in variants]
