"""Severity measurement: average IPC impact of a bug across workloads.

Severity is defined exactly as in Section IV-C: the average relative IPC
degradation across the studied applications, banded into High / Medium / Low /
Very-Low.  Because the impact depends on the workloads and the simulator, it
is measured rather than declared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coresim.hooks import CoreBugModel
from ..coresim.simulator import simulate_trace
from ..uarch.config import MicroarchConfig
from ..workloads.isa import MicroOp
from .base import Severity


@dataclass
class SeverityReport:
    """Measured IPC impact of one bug."""

    bug_name: str
    per_workload_impact: dict[str, float]
    average_impact: float
    severity: Severity


def ipc_impact(
    config: MicroarchConfig,
    trace: list[MicroOp],
    bug: CoreBugModel,
    step_cycles: int = 2048,
) -> float:
    """Relative IPC degradation of *bug* on one trace (positive = slower)."""
    clean = simulate_trace(config, trace, bug=None, step_cycles=step_cycles)
    buggy = simulate_trace(config, trace, bug=bug, step_cycles=step_cycles)
    if clean.ipc <= 0:
        return 0.0
    return max(0.0, (clean.ipc - buggy.ipc) / clean.ipc)


def measure_severity(
    bug: CoreBugModel,
    config: MicroarchConfig,
    workload_traces: dict[str, list[MicroOp]],
    step_cycles: int = 2048,
) -> SeverityReport:
    """Measure the severity band of *bug* over a set of workload traces.

    Parameters
    ----------
    bug:
        The bug model to evaluate.
    config:
        Microarchitecture on which the impact is measured.
    workload_traces:
        Mapping of workload name to its dynamic trace (typically one
        representative SimPoint per application).
    """
    if not workload_traces:
        raise ValueError("workload_traces must not be empty")
    impacts = {
        name: ipc_impact(config, trace, bug, step_cycles=step_cycles)
        for name, trace in workload_traces.items()
    }
    average = float(np.mean(list(impacts.values())))
    return SeverityReport(
        bug_name=getattr(bug, "name", str(bug)),
        per_workload_impact=impacts,
        average_impact=average,
        severity=Severity.from_impact(average),
    )


def severity_distribution(reports: list[SeverityReport]) -> dict[Severity, float]:
    """Fraction of bugs in each severity band (the Figure 4 histogram)."""
    if not reports:
        raise ValueError("reports must not be empty")
    counts = {band: 0 for band in Severity}
    for report in reports:
        counts[report.severity] += 1
    total = len(reports)
    return {band: counts[band] / total for band in Severity}
