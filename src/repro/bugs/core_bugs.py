"""The 14 core performance-bug types of Section IV-C.

Each bug is a :class:`~repro.coresim.hooks.CoreBugModel` subclass whose hooks
perturb the out-of-order pipeline exactly where the paper describes.  Every
type is parameterised (opcode X/Y, threshold N, register R, delay T) so that
multiple variants with different severities can be instantiated, mirroring the
paper's configurable-impact bug suite.

Bug numbering follows the paper:

 1. Serialize X
 2. Issue X only if oldest
 3. If X is oldest, issue only X
 4. If X depends on Y, delay T cycles
 5. If fewer than N IQ slots free, delay T cycles
 6. If fewer than N ROB slots free, delay T cycles
 7. If mispredicted branch, delay T cycles
 8. If N stores to a cache line, delay T cycles
 9. After N stores to the same register, delay T cycles
10. L2 latency increased by T cycles
11. Available registers reduced by N
12. If branch longer than N bytes, delay T cycles
13. If X uses register R, delay T cycles
14. Branch predictor table reduced by N entries
"""

from __future__ import annotations

from ..coresim.hooks import CoreBugModel, DispatchContext
from ..workloads.isa import MicroOp, Opcode
from .base import BugInfo


class CoreBug(CoreBugModel):
    """Base class for injected core bugs; adds descriptive metadata."""

    bug_type: str = "abstract"

    def __init__(self, name: str, params: dict[str, object], description: str) -> None:
        self.name = name
        self.info = BugInfo(
            name=name, bug_type=self.bug_type, params=params, description=description
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class SerializeOpcode(CoreBug):
    """Bug 1: every instruction with opcode X is marked serialising."""

    bug_type = "Serialized"

    def __init__(self, opcode: Opcode) -> None:
        super().__init__(
            name=f"serialize_{opcode.name.lower()}",
            params={"opcode": opcode.name},
            description=f"Every {opcode.name} is treated as a serialising instruction",
        )
        self.opcode = opcode

    def serialize(self, uop: MicroOp) -> bool:
        return uop.opcode is self.opcode


class IssueOnlyIfOldest(CoreBug):
    """Bug 2: instructions with opcode X issue only once oldest in the IQ."""

    bug_type = "IssueXOnlyIfOldest"

    def __init__(self, opcode: Opcode) -> None:
        super().__init__(
            name=f"issue_only_if_oldest_{opcode.name.lower()}",
            params={"opcode": opcode.name},
            description=f"{opcode.name} may only issue when oldest in the IQ",
        )
        self.opcode = opcode

    def issue_only_if_oldest(self, uop: MicroOp) -> bool:
        return uop.opcode is self.opcode


class IfOldestIssueOnly(CoreBug):
    """Bug 3: while an X is the oldest IQ entry, only that X may issue."""

    bug_type = "IfOldestIssueOnlyX"

    def __init__(self, opcode: Opcode) -> None:
        super().__init__(
            name=f"if_oldest_issue_only_{opcode.name.lower()}",
            params={"opcode": opcode.name},
            description=f"While the oldest IQ entry is a {opcode.name}, "
            "no other instruction may issue",
        )
        self.opcode = opcode

    def oldest_blocks_others(self, uop: MicroOp) -> bool:
        return uop.opcode is self.opcode


class DependencyDelay(CoreBug):
    """Bug 4: if X consumes a value produced by Y, delay X by T cycles."""

    bug_type = "IfXDependsOnYDelayT"

    def __init__(self, opcode: Opcode, producer: Opcode, delay: int) -> None:
        super().__init__(
            name=f"dep_delay_{opcode.name.lower()}_on_{producer.name.lower()}_{delay}",
            params={"opcode": opcode.name, "producer": producer.name, "delay": delay},
            description=f"{opcode.name} consuming a {producer.name} result is "
            f"delayed {delay} cycles",
        )
        self.opcode = opcode
        self.producer = producer
        self.delay = delay

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        if uop.opcode is self.opcode and self.producer in context.producer_opcodes:
            return self.delay
        return 0


class IQPressureDelay(CoreBug):
    """Bug 5: if fewer than N IQ slots are free at dispatch, delay T cycles."""

    bug_type = "IQPressureDelay"

    def __init__(self, threshold: int, delay: int) -> None:
        super().__init__(
            name=f"iq_pressure_{threshold}_{delay}",
            params={"threshold": threshold, "delay": delay},
            description=f"Instructions dispatched with fewer than {threshold} free "
            f"IQ slots are delayed {delay} cycles",
        )
        self.threshold = threshold
        self.delay = delay

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        return self.delay if context.iq_free < self.threshold else 0


class ROBPressureDelay(CoreBug):
    """Bug 6: if fewer than N ROB slots are free at dispatch, delay T cycles."""

    bug_type = "ROBPressureDelay"

    def __init__(self, threshold: int, delay: int) -> None:
        super().__init__(
            name=f"rob_pressure_{threshold}_{delay}",
            params={"threshold": threshold, "delay": delay},
            description=f"Instructions dispatched with fewer than {threshold} free "
            f"ROB slots are delayed {delay} cycles",
        )
        self.threshold = threshold
        self.delay = delay

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        return self.delay if context.rob_free < self.threshold else 0


class MispredictPenalty(CoreBug):
    """Bug 7: mispredicted branches incur an extra T-cycle redirect penalty."""

    bug_type = "MispredictDelay"

    def __init__(self, delay: int) -> None:
        super().__init__(
            name=f"mispredict_penalty_{delay}",
            params={"delay": delay},
            description=f"Each mispredicted branch costs an extra {delay} cycles",
        )
        self.delay = delay

    def branch_extra_penalty(self, uop: MicroOp, mispredicted: bool) -> int:
        return self.delay if mispredicted else 0


class StoresToLineDelay(CoreBug):
    """Bug 8: after N stores to the same cache line, later stores stall T cycles."""

    bug_type = "NStoresToLineDelay"

    def __init__(self, threshold: int, delay: int, line_size: int = 64) -> None:
        super().__init__(
            name=f"stores_to_line_{threshold}_{delay}",
            params={"threshold": threshold, "delay": delay},
            description=f"After {threshold} stores to a cache line, further stores "
            f"to it are delayed {delay} cycles",
        )
        self.threshold = threshold
        self.delay = delay
        self.line_size = line_size
        self._counts: dict[int, int] = {}

    def on_simulation_start(self, config) -> None:
        self._counts = {}

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        if uop.opcode is not Opcode.STORE or uop.address is None:
            return 0
        line = uop.address // self.line_size
        count = self._counts.get(line, 0) + 1
        self._counts[line] = count
        return self.delay if count > self.threshold else 0


class StoresToRegisterDelay(CoreBug):
    """Bug 9: after N writes to the same register, further writes stall T cycles.

    ``mode="after"`` delays every write past the N-th (the TI GPMC-style
    behaviour); ``mode="every"`` delays only once every N writes (the second
    variant the paper describes).
    """

    bug_type = "NStoresToRegisterDelay"

    def __init__(self, threshold: int, delay: int, mode: str = "after") -> None:
        if mode not in ("after", "every"):
            raise ValueError("mode must be 'after' or 'every'")
        super().__init__(
            name=f"writes_to_reg_{mode}_{threshold}_{delay}",
            params={"threshold": threshold, "delay": delay, "mode": mode},
            description=f"Register write bursts of {threshold} incur {delay}-cycle "
            f"delays ({mode})",
        )
        self.threshold = threshold
        self.delay = delay
        self.mode = mode
        self._counts: dict[int, int] = {}

    def on_simulation_start(self, config) -> None:
        self._counts = {}

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        if uop.dest is None:
            return 0
        count = self._counts.get(uop.dest, 0) + 1
        self._counts[uop.dest] = count
        if self.mode == "after":
            return self.delay if count > self.threshold else 0
        return self.delay if count % self.threshold == 0 else 0


class L2LatencyBug(CoreBug):
    """Bug 10: L2 hit latency is increased by T cycles."""

    bug_type = "L2LatencyIncrease"

    def __init__(self, extra: int) -> None:
        super().__init__(
            name=f"l2_latency_plus_{extra}",
            params={"extra": extra},
            description=f"L2 cache latency increased by {extra} cycles",
        )
        self.extra = extra

    def cache_extra_latency(self, level: int) -> int:
        return self.extra if level == 2 else 0


class RegisterReduction(CoreBug):
    """Bug 11: N physical registers are unavailable for renaming."""

    bug_type = "RegisterReduction"

    def __init__(self, reduction: int) -> None:
        super().__init__(
            name=f"register_reduction_{reduction}",
            params={"reduction": reduction},
            description=f"{reduction} physical registers removed from the free pool",
        )
        self.reduction = reduction

    def register_reduction(self) -> int:
        return self.reduction


class LongBranchDelay(CoreBug):
    """Bug 12: branches whose displacement exceeds N bytes cost T extra cycles."""

    bug_type = "LongBranchDelay"

    def __init__(self, distance_bytes: int, delay: int) -> None:
        super().__init__(
            name=f"long_branch_{distance_bytes}_{delay}",
            params={"distance_bytes": distance_bytes, "delay": delay},
            description=f"Branches spanning more than {distance_bytes} bytes incur "
            f"{delay} extra cycles",
        )
        self.distance_bytes = distance_bytes
        self.delay = delay

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        if not uop.is_branch or uop.target is None:
            return 0
        if abs(uop.target - uop.pc) > self.distance_bytes:
            return self.delay
        return 0


class OpcodeUsesRegisterDelay(CoreBug):
    """Bug 13: if an X reads or writes register R, delay it T cycles."""

    bug_type = "IfXUsesRegNDelayT"

    def __init__(self, opcode: Opcode, register: int, delay: int) -> None:
        super().__init__(
            name=f"uses_reg_{opcode.name.lower()}_r{register}_{delay}",
            params={"opcode": opcode.name, "register": register, "delay": delay},
            description=f"{opcode.name} touching register {register} is delayed "
            f"{delay} cycles",
        )
        self.opcode = opcode
        self.register = register
        self.delay = delay

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        if uop.opcode is not self.opcode:
            return 0
        if uop.dest == self.register or self.register in uop.srcs:
            return self.delay
        return 0


class BPTableReduction(CoreBug):
    """Bug 14: the branch predictor's effective table size shrinks by N entries."""

    bug_type = "BPTableReduction"

    def __init__(self, reduction: int) -> None:
        super().__init__(
            name=f"bp_table_minus_{reduction}",
            params={"reduction": reduction},
            description=f"Branch-predictor table index covers {reduction} fewer entries",
        )
        self.reduction = reduction

    def bp_table_entries(self, configured: int) -> int:
        return max(4, configured - self.reduction)
