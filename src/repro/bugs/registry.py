"""Registry of the injected core-bug variants used throughout the experiments.

The paper implements 14 basic bug types and, for each, multiple variants
obtained by changing the opcode X/Y, threshold N, register R and delay T, so
that the suite spans the four severity bands.  :func:`core_bug_suite` builds
that suite; the named constructors reproduce the specific bugs the paper calls
out (Figure 1's two Skylake bugs and Table V's two "buggy training" bugs).
"""

from __future__ import annotations

from ..workloads.isa import Opcode
from .core_bugs import (
    BPTableReduction,
    CoreBug,
    DependencyDelay,
    IQPressureDelay,
    IfOldestIssueOnly,
    IssueOnlyIfOldest,
    L2LatencyBug,
    LongBranchDelay,
    MispredictPenalty,
    OpcodeUsesRegisterDelay,
    RegisterReduction,
    ROBPressureDelay,
    SerializeOpcode,
    StoresToLineDelay,
    StoresToRegisterDelay,
)

#: All 14 bug-type identifiers, in the paper's order.
CORE_BUG_TYPES: tuple[str, ...] = (
    "Serialized",
    "IssueXOnlyIfOldest",
    "IfOldestIssueOnlyX",
    "IfXDependsOnYDelayT",
    "IQPressureDelay",
    "ROBPressureDelay",
    "MispredictDelay",
    "NStoresToLineDelay",
    "NStoresToRegisterDelay",
    "L2LatencyIncrease",
    "RegisterReduction",
    "LongBranchDelay",
    "IfXUsesRegNDelayT",
    "BPTableReduction",
)


def _full_variants() -> dict[str, list[CoreBug]]:
    """The full variant suite (severity spread per type via X/N/R/T choices)."""
    return {
        "Serialized": [
            SerializeOpcode(Opcode.XOR),
            SerializeOpcode(Opcode.SUB),
            SerializeOpcode(Opcode.LOAD),
        ],
        "IssueXOnlyIfOldest": [
            IssueOnlyIfOldest(Opcode.ADD),
            IssueOnlyIfOldest(Opcode.XOR),
            IssueOnlyIfOldest(Opcode.MUL),
        ],
        "IfOldestIssueOnlyX": [
            IfOldestIssueOnly(Opcode.XOR),
            IfOldestIssueOnly(Opcode.SUB),
            IfOldestIssueOnly(Opcode.LOAD),
        ],
        "IfXDependsOnYDelayT": [
            DependencyDelay(Opcode.ADD, Opcode.LOAD, 6),
            DependencyDelay(Opcode.XOR, Opcode.ADD, 10),
            DependencyDelay(Opcode.FMUL, Opcode.FADD, 8),
        ],
        "IQPressureDelay": [
            IQPressureDelay(12, 8),
            IQPressureDelay(4, 4),
        ],
        "ROBPressureDelay": [
            ROBPressureDelay(24, 8),
            ROBPressureDelay(8, 4),
        ],
        "MispredictDelay": [
            MispredictPenalty(30),
            MispredictPenalty(8),
        ],
        "NStoresToLineDelay": [
            StoresToLineDelay(4, 12),
            StoresToLineDelay(16, 6),
        ],
        "NStoresToRegisterDelay": [
            StoresToRegisterDelay(16, 6, mode="every"),
            StoresToRegisterDelay(64, 8, mode="after"),
        ],
        "L2LatencyIncrease": [
            L2LatencyBug(16),
            L2LatencyBug(4),
        ],
        "RegisterReduction": [
            RegisterReduction(48),
            RegisterReduction(16),
        ],
        "LongBranchDelay": [
            LongBranchDelay(64, 12),
            LongBranchDelay(256, 6),
        ],
        "IfXUsesRegNDelayT": [
            OpcodeUsesRegisterDelay(Opcode.ADD, 0, 10),
            OpcodeUsesRegisterDelay(Opcode.XOR, 3, 12),
            OpcodeUsesRegisterDelay(Opcode.LOAD, 5, 8),
        ],
        "BPTableReduction": [
            BPTableReduction(4064),
            BPTableReduction(3840),
        ],
    }


def core_bug_suite(max_variants_per_type: int | None = None) -> dict[str, list[CoreBug]]:
    """Return the bug suite as ``{bug_type: [variants...]}``.

    Parameters
    ----------
    max_variants_per_type:
        If given, keep only the first *n* variants of each type.  Experiments
        at reduced scale use this to bound simulation cost.
    """
    suite = _full_variants()
    if max_variants_per_type is not None:
        if max_variants_per_type <= 0:
            raise ValueError("max_variants_per_type must be positive")
        suite = {k: v[:max_variants_per_type] for k, v in suite.items()}
    return suite


def all_core_bugs(max_variants_per_type: int | None = None) -> list[CoreBug]:
    """Flat list of every bug variant in the suite."""
    return [bug for variants in core_bug_suite(max_variants_per_type).values()
            for bug in variants]


# -- bugs the paper names explicitly ----------------------------------------


def figure1_bug1() -> CoreBug:
    """Figure 1 "Bug 1": xor issues alone when it is the oldest IQ entry."""
    return IfOldestIssueOnly(Opcode.XOR)


def figure1_bug2() -> CoreBug:
    """Figure 1 "Bug 2": sub instructions are incorrectly marked serialising."""
    return SerializeOpcode(Opcode.SUB)


def tableV_bug1() -> CoreBug:
    """Table V "Bug 1": if XOR is oldest in the IQ, issue only XOR."""
    return IfOldestIssueOnly(Opcode.XOR)


def tableV_bug2() -> CoreBug:
    """Table V "Bug 2": if ADD uses register 0, delay 10 cycles."""
    return OpcodeUsesRegisterDelay(Opcode.ADD, 0, 10)
