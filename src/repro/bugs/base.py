"""Common bug abstractions: severity bands and bug metadata.

The paper groups its injected bugs into four severity bands by their average
IPC impact across the studied applications (Section IV-C): High (>= 10 %),
Medium (5-10 %), Low (1-5 %) and Very-Low (< 1 %).  Severity is a *measured*
property — the same bug type with different parameters can land in different
bands — so the band is computed from simulation results rather than declared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Average-IPC-impact band of a bug (Section IV-C / Figure 4)."""

    HIGH = "High"
    MEDIUM = "Medium"
    LOW = "Low"
    VERY_LOW = "Very Low"

    @classmethod
    def from_impact(cls, impact: float) -> "Severity":
        """Band for an average relative IPC degradation *impact* (0.07 = 7 %)."""
        if impact >= 0.10:
            return cls.HIGH
        if impact >= 0.05:
            return cls.MEDIUM
        if impact >= 0.01:
            return cls.LOW
        return cls.VERY_LOW


@dataclass
class BugInfo:
    """Descriptive metadata shared by core and memory bugs."""

    name: str
    bug_type: str
    params: dict[str, object] = field(default_factory=dict)
    description: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
