"""repro — reproduction of "Automatic Microprocessor Performance Bug Detection".

The package is organised as:

* :mod:`repro.workloads` — synthetic SPEC CPU2006-like workloads and traces,
* :mod:`repro.simpoint` — SimPoint-based probe extraction,
* :mod:`repro.uarch` — microarchitecture configurations (Tables II/III),
* :mod:`repro.coresim` — cycle-level out-of-order core simulator (gem5 stand-in),
* :mod:`repro.memsim` — cache-hierarchy simulator (ChampSim stand-in),
* :mod:`repro.bugs` — the 14 core and 6 memory performance-bug types,
* :mod:`repro.ml` — from-scratch NumPy regression engines (Lasso/MLP/CNN/LSTM/GBT),
* :mod:`repro.detect` — the paper's two-stage detection methodology and baseline,
* :mod:`repro.runtime` — parallel simulation job engine + persistent result store,
* :mod:`repro.experiments` — regeneration of every table and figure.

Quickstart::

    from repro.detect import build_probes, SimulationCache, DetectionSetup, TwoStageDetector
    from repro.uarch import core_set
    from repro.bugs import core_bug_suite

    probes = build_probes(["403.gcc", "458.sjeng"], 40_000, 4_000)
    setup = DetectionSetup(
        probes=probes,
        train_designs=core_set("I"),
        val_designs=core_set("II"),
        stage2_designs=core_set("II") + core_set("III"),
        test_designs=core_set("IV"),
        bug_suite=core_bug_suite(max_variants_per_type=1),
        cache=SimulationCache(),
    )
    result = TwoStageDetector(setup).evaluate()
    print(result.summary_row())
"""

__version__ = "1.0.0"

__all__ = [
    "workloads",
    "simpoint",
    "uarch",
    "coresim",
    "memsim",
    "bugs",
    "ml",
    "detect",
    "experiments",
]
