"""SimPoint-based probe extraction (SimPoint 3.0 stand-in).

Implements basic-block-vector profiling, k-means clustering with BIC model
selection and representative-interval selection, used by the detection
methodology to extract short, orthogonal microbenchmark probes from the
synthetic SPEC-like workloads.
"""

from .bbv import basic_block_vector, bbv_matrix, project_bbvs
from .kmeans import KMeansResult, bic_score, choose_k, kmeans
from .simpoint import (
    SimPoint,
    SimPointSelection,
    select_simpoints,
    select_simpoints_from_uops,
    weighted_average,
)

__all__ = [
    "basic_block_vector",
    "bbv_matrix",
    "project_bbvs",
    "KMeansResult",
    "kmeans",
    "bic_score",
    "choose_k",
    "SimPoint",
    "SimPointSelection",
    "select_simpoints",
    "select_simpoints_from_uops",
    "weighted_average",
]
