"""SimPoint selection: from a dynamic trace to representative microbenchmarks.

The paper repurposes SimPoint: instead of estimating whole-program performance
from a weighted average over representative intervals, it uses the selected
intervals directly as short, orthogonal *performance probes*.  This module
implements the selection pipeline:

1. split the dynamic trace into fixed-length intervals,
2. compute (and randomly project) the basic-block vector of each interval,
3. cluster the BBVs with k-means, choosing k by BIC,
4. pick, for every cluster, the interval closest to the centroid as the
   SimPoint, weighted by the cluster's share of the execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.isa import MicroOp
from ..workloads.synth import SyntheticProgram
from ..workloads.trace import TraceGenerator, split_into_intervals
from .bbv import bbv_matrix, project_bbvs
from .kmeans import KMeansResult, choose_k


@dataclass
class SimPoint:
    """One selected SimPoint (a representative interval of a benchmark)."""

    benchmark: str
    index: int
    interval_index: int
    weight: float
    trace: list[MicroOp]
    bbv: np.ndarray

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``"403.gcc/sp03"``."""
        return f"{self.benchmark}/sp{self.index:02d}"

    @property
    def num_instructions(self) -> int:
        return len(self.trace)

    def opcode_fraction(self, opcode) -> float:
        """Fraction of dynamic instructions in this SimPoint with *opcode*."""
        if not self.trace:
            return 0.0
        hits = sum(1 for uop in self.trace if uop.opcode is opcode)
        return hits / len(self.trace)


@dataclass
class SimPointSelection:
    """All SimPoints selected for one benchmark, plus clustering diagnostics."""

    benchmark: str
    simpoints: list[SimPoint]
    clustering: KMeansResult
    interval_size: int

    def __len__(self) -> int:
        return len(self.simpoints)

    def __iter__(self):
        return iter(self.simpoints)

    def total_weight(self) -> float:
        return sum(sp.weight for sp in self.simpoints)


def select_simpoints_from_uops(
    trace: list[MicroOp],
    benchmark: str,
    num_blocks: int,
    interval_size: int,
    max_simpoints: int = 30,
    projection_dims: int = 15,
    seed: int = 0,
) -> SimPointSelection:
    """Run the SimPoint pipeline on an already-materialised dynamic trace.

    This is the generic back half of :func:`select_simpoints` — interval
    splitting, BBV profiling, projection, BIC-selected k-means and
    representative picking — usable for any micro-op stream: synthetic
    profiling traces and on-disk traces ingested by
    :mod:`repro.workloads.ingest` alike.

    Parameters
    ----------
    trace:
        The dynamic instruction stream to profile; every micro-op must carry
        a ``block_id`` in ``[0, num_blocks)`` (ingestion derives these from
        control-flow boundaries when the file does not provide them).
    benchmark:
        Name stamped on the resulting SimPoints (``"<benchmark>/spNN"``).
    num_blocks:
        Static basic-block count of the workload (the BBV dimension).
    interval_size, max_simpoints, projection_dims, seed:
        As in :func:`select_simpoints`.
    """
    intervals = split_into_intervals(trace, interval_size)
    if not intervals:
        raise ValueError(
            "trace too short to form a single interval; "
            f"got {len(trace)} instructions for interval_size={interval_size}"
        )

    bbvs = bbv_matrix(intervals, num_blocks)
    projected = project_bbvs(bbvs, projection_dims, seed=seed)
    clustering = choose_k(projected, max_k=min(max_simpoints, len(intervals)),
                          seed=seed)

    simpoints: list[SimPoint] = []
    n_intervals = len(intervals)
    for cluster_id in range(clustering.k):
        member_indices = np.flatnonzero(clustering.labels == cluster_id)
        if len(member_indices) == 0:
            continue
        centroid = clustering.centroids[cluster_id]
        member_points = projected[member_indices]
        distances = np.sum((member_points - centroid) ** 2, axis=1)
        representative = int(member_indices[int(np.argmin(distances))])
        weight = len(member_indices) / n_intervals
        simpoints.append(
            SimPoint(
                benchmark=benchmark,
                index=len(simpoints) + 1,
                interval_index=representative,
                weight=weight,
                trace=list(intervals[representative]),
                bbv=bbvs[representative].copy(),
            )
        )

    return SimPointSelection(
        benchmark=benchmark,
        simpoints=simpoints,
        clustering=clustering,
        interval_size=interval_size,
    )


def select_simpoints(
    program: SyntheticProgram,
    total_instructions: int,
    interval_size: int,
    max_simpoints: int = 30,
    projection_dims: int = 15,
    seed: int = 0,
) -> SimPointSelection:
    """Run the SimPoint pipeline on *program*.

    Parameters
    ----------
    program:
        The synthetic benchmark to profile.
    total_instructions:
        Length of the profiling trace to generate.
    interval_size:
        Instructions per interval (the paper uses ~10 M; we scale this down).
    max_simpoints:
        Upper bound on the number of clusters considered by BIC selection.
    projection_dims:
        Dimensionality of the random BBV projection (SimPoint 3.0 uses 15).
    seed:
        Seed controlling trace generation, projection and clustering.
    """
    generator = TraceGenerator(program, seed=seed)
    trace = generator.generate(total_instructions)
    return select_simpoints_from_uops(
        trace,
        benchmark=program.name,
        num_blocks=program.num_blocks,
        interval_size=interval_size,
        max_simpoints=max_simpoints,
        projection_dims=projection_dims,
        seed=seed,
    )


def weighted_average(values: dict[str, float], selection: SimPointSelection) -> float:
    """Estimate whole-program performance from per-SimPoint values.

    This is SimPoint's original use (and what the Figure 1 reproduction needs
    to compute whole-application speedups): a weighted average of per-SimPoint
    metrics using the cluster weights.
    """
    total = 0.0
    weight_sum = 0.0
    for sp in selection.simpoints:
        if sp.name not in values:
            raise KeyError(f"missing value for SimPoint {sp.name}")
        total += values[sp.name] * sp.weight
        weight_sum += sp.weight
    if weight_sum <= 0:
        raise ValueError("selection has zero total weight")
    return total / weight_sum
