"""Basic-block-vector (BBV) profiling.

SimPoint characterises each fixed-length interval of a program's execution by
the number of instructions executed in each static basic block — the
basic-block vector.  Intervals whose BBVs are close execute similar code and
are expected to have similar performance, which is the property the paper's
probe extraction relies on.
"""

from __future__ import annotations

import numpy as np

from ..workloads.isa import MicroOp


def basic_block_vector(
    interval: list[MicroOp], num_blocks: int, normalize: bool = True
) -> np.ndarray:
    """Compute the BBV of one interval.

    Parameters
    ----------
    interval:
        The dynamic instructions of the interval.
    num_blocks:
        Total number of static basic blocks in the program (vector dimension).
    normalize:
        If true (the default, as in SimPoint), the vector is normalised to sum
        to one so intervals of slightly different lengths are comparable.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    vector = np.zeros(num_blocks, dtype=float)
    for uop in interval:
        if 0 <= uop.block_id < num_blocks:
            vector[uop.block_id] += 1.0
    if normalize:
        total = vector.sum()
        if total > 0:
            vector /= total
    return vector


def bbv_matrix(
    intervals: list[list[MicroOp]], num_blocks: int, normalize: bool = True
) -> np.ndarray:
    """Stack the BBVs of all *intervals* into a matrix of shape (n, num_blocks)."""
    if not intervals:
        raise ValueError("at least one interval is required")
    return np.stack(
        [basic_block_vector(iv, num_blocks, normalize) for iv in intervals]
    )


def project_bbvs(matrix: np.ndarray, dims: int, seed: int = 0) -> np.ndarray:
    """Randomly project BBVs down to *dims* dimensions.

    SimPoint 3.0 projects BBVs to ~15 dimensions before clustering to make
    k-means cheap and robust; we follow the same recipe with a seeded Gaussian
    random projection.  When the BBV dimension is already small the matrix is
    returned unchanged.
    """
    n_features = matrix.shape[1]
    if dims <= 0:
        raise ValueError("dims must be positive")
    if n_features <= dims:
        return matrix.astype(float)
    rng = np.random.default_rng(seed)
    projection = rng.normal(0.0, 1.0 / np.sqrt(dims), size=(n_features, dims))
    return matrix @ projection
