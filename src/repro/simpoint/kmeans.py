"""K-means clustering with k-means++ seeding and BIC model selection.

This is the clustering engine behind SimPoint selection.  It is implemented
from scratch on NumPy (no scikit-learn available offline) and follows the
SimPoint 3.0 recipe: run k-means for a range of k, score each clustering with
the Bayesian Information Criterion, and pick the smallest k whose BIC reaches
a given fraction of the best observed score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of one k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeans_plus_plus(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ initial centroid selection."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=float)
    first = int(rng.integers(0, n))
    centroids[0] = data[first]
    closest_sq = np.sum((data - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            idx = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centroids[i] = data[idx]
        dist_sq = np.sum((data - centroids[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster *data* (n_samples x n_features) into *k* clusters.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always has exactly *k* non-degenerate clusters when the
    data has at least *k* distinct points.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    rng = np.random.default_rng(seed)
    centroids = _kmeans_plus_plus(data, k, rng)
    labels = np.zeros(n, dtype=int)
    previous_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        # Assignment step.
        distances = np.sum((data[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(n), labels].sum())

        # Update step.
        for j in range(k):
            members = data[labels == j]
            if len(members) == 0:
                farthest = int(np.argmax(distances[np.arange(n), labels]))
                centroids[j] = data[farthest]
            else:
                centroids[j] = members.mean(axis=0)

        if previous_inertia - inertia <= tol * max(previous_inertia, 1e-12):
            break
        previous_inertia = inertia

    distances = np.sum((data[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia,
                        n_iter=n_iter)


def bic_score(data: np.ndarray, result: KMeansResult) -> float:
    """Bayesian Information Criterion of a clustering (higher is better).

    Uses the spherical-Gaussian formulation from Pelleg & Moore (X-means),
    which is what SimPoint 3.0 uses to pick the number of clusters.
    """
    data = np.asarray(data, dtype=float)
    n, d = data.shape
    k = result.k
    sizes = result.cluster_sizes()

    # Maximum-likelihood variance estimate (pooled, spherical).
    denom = max(n - k, 1)
    variance = result.inertia / (denom * d)
    variance = max(variance, 1e-12)

    log_likelihood = 0.0
    for j in range(k):
        n_j = sizes[j]
        if n_j <= 0:
            continue
        log_likelihood += (
            n_j * np.log(max(n_j, 1))
            - n_j * np.log(n)
            - 0.5 * n_j * d * np.log(2.0 * np.pi * variance)
            - 0.5 * (n_j - 1) * d
        )
    n_params = k * (d + 1)
    return float(log_likelihood - 0.5 * n_params * np.log(n))


def choose_k(
    data: np.ndarray,
    max_k: int,
    seed: int = 0,
    bic_threshold: float = 0.9,
) -> KMeansResult:
    """Run k-means for k = 1..max_k and pick a clustering via BIC.

    Following SimPoint 3.0, the chosen k is the smallest one whose BIC reaches
    ``bic_threshold`` of the way from the worst to the best observed score.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    max_k = max(1, min(max_k, n))
    results = []
    scores = []
    for k in range(1, max_k + 1):
        result = kmeans(data, k, seed=seed + k)
        results.append(result)
        scores.append(bic_score(data, result))
    scores_arr = np.asarray(scores)
    best = scores_arr.max()
    worst = scores_arr.min()
    if np.isclose(best, worst):
        return results[0]
    cutoff = worst + bic_threshold * (best - worst)
    for result, score in zip(results, scores_arr):
        if score >= cutoff:
            return result
    return results[int(np.argmax(scores_arr))]
