"""Pluggable sweep policies: which queued chunk dispatches next.

The :class:`~repro.cluster.scheduler.ClusterScheduler` holds a queue of
:class:`ChunkTicket`\\ s and, whenever a worker slot is idle, asks its
:class:`SweepPolicy` to pick one.  A policy sees the queued tickets *and*
the tickets currently running, so it can decide not only *which* chunk goes
next but whether anything should go at all (``suspend`` stalls low-priority
work while a higher-priority sweep is contending).

Policies generalise the engine's LJF/uniform chunk-*planning* seam to
chunk-*dispatch* time: planning decides how jobs are binned into chunks,
the policy decides the order those bins reach workers.  All four policies
are deterministic functions of the ticket set — ties always break on the
submission sequence number — so a dispatch order can be asserted in tests
and compared across policies in the ``repro-bench`` A/B harness
(docs/PERFORMANCE.md).

==========  ==================================================================
Policy      Dispatch rule
==========  ==================================================================
``fifo``    submission order (sequence number).
``ljf``     costliest ticket first (cost proxy: Σ trace length × width, the
            same proxy LJF chunk planning uses); ties in submission order.
``edd``     earliest due date: smallest deadline first, deadline-less
            tickets last; ties in submission order.
``suspend`` strict priority: a ticket is dispatchable only if no queued *or
            running* ticket has a higher priority — a contending
            high-priority sweep pauses the low-priority queue entirely,
            including leaving workers idle while its own chunks finish.
            Within the top priority band, submission order.
==========  ==================================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ChunkTicket:
    """One planned chunk queued for dispatch, plus its scheduling inputs.

    ``seq`` is the backend-wide submission sequence number (the FIFO key and
    the universal tie-breaker).  ``cost`` is the engine's cost proxy summed
    over the chunk's jobs.  ``priority`` (higher = more urgent) and
    ``deadline`` (seconds on the scheduler's clock, ``None`` = no due date)
    come from :meth:`~repro.cluster.backend.ClusterBackend.submit_context`.
    ``requeues`` counts how many times the ticket was recovered from a dead
    worker and put back in the queue.
    """

    seq: int
    tag: int
    chunk: list = field(repr=False)
    cost: int = 1
    priority: int = 0
    deadline: "float | None" = None
    requeues: int = 0


class SweepPolicy:
    """Base dispatch policy: FIFO.  Subclasses override :meth:`select`."""

    name = "fifo"

    def select(
        self,
        queued: Sequence[ChunkTicket],
        running: Sequence[ChunkTicket],
    ) -> "ChunkTicket | None":
        """The queued ticket to dispatch next, or ``None`` to hold back.

        *queued* is never empty when called; *running* lists tickets
        currently executing on workers (``suspend`` is the only built-in
        policy that reads it).
        """
        return min(queued, key=lambda t: t.seq)


class LJFPolicy(SweepPolicy):
    """Longest job first: highest cost, then submission order."""

    name = "ljf"

    def select(self, queued, running):
        return min(queued, key=lambda t: (-t.cost, t.seq))


class EDDPolicy(SweepPolicy):
    """Earliest due date: smallest deadline, deadline-less tickets last."""

    name = "edd"

    def select(self, queued, running):
        return min(
            queued,
            key=lambda t: (t.deadline if t.deadline is not None else math.inf, t.seq),
        )


class SuspendPolicy(SweepPolicy):
    """Strict priority bands: lower bands pause while a higher one contends."""

    name = "suspend"

    def select(self, queued, running):
        ceiling = max(t.priority for t in queued)
        if running:
            ceiling = max(ceiling, max(t.priority for t in running))
        eligible = [t for t in queued if t.priority >= ceiling]
        if not eligible:
            # The top band is entirely in flight: stall rather than let a
            # lower band grab the idle worker (its chunk could outlive the
            # high-priority sweep's next submission).
            return None
        return min(eligible, key=lambda t: t.seq)


#: Policy name -> class, for spec strings (``cluster:4,policy=edd``).
POLICIES = {
    policy.name: policy
    for policy in (SweepPolicy, LJFPolicy, EDDPolicy, SuspendPolicy)
}


def parse_policy(name: "str | SweepPolicy") -> SweepPolicy:
    """Build a policy from its name (an instance passes through)."""
    if isinstance(name, SweepPolicy):
        return name
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown sweep policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
