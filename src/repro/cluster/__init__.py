"""``repro.cluster``: elastic scheduler-managed sweep execution.

The execution half of the elastic sweep service (the serving half is
:mod:`repro.serve`).  A :class:`ClusterBackend` — spec ``cluster:N`` —
drives a pool of ``repro-worker`` processes through the shared frame
protocol like ``subprocess:N`` does, but adds what a long sweep on shared
machines actually needs:

* a poll-loop **scheduler** (:mod:`repro.cluster.scheduler`) that spawns
  workers lazily up to a ``parallelmax``, tracks a per-worker job context,
  and grows/shrinks the pool elastically (:meth:`ClusterBackend.resize`);
* **health probes** — workers emit heartbeat frames from a side thread
  (protocol v2), silence past a deadline marks the worker dead, dead
  workers are respawned with exponential backoff and their in-flight
  chunk is **requeued**, so a ``SIGKILL``-ed or hung worker never loses
  work (results persisted per chunk by the engine are never re-executed);
* pluggable **sweep policies** (:mod:`repro.cluster.policies`): ``fifo``,
  ``ljf``, deadline-driven ``edd`` and ``suspend`` for priority-contended
  pools;
* a **roster** builder (:mod:`repro.cluster.roster`) naming every store
  key a scale's sweeps can produce — the keep-set for ``repro-store gc``.

See ``docs/RUNTIME.md`` ("The cluster backend") for the spec grammar and
the liveness protocol, and ``repro-cluster --help`` for the CLI.
"""

from .backend import ClusterBackend, parse_cluster_spec
from .policies import POLICIES, ChunkTicket, SweepPolicy, parse_policy
from .scheduler import ClusterScheduler

__all__ = [
    "POLICIES",
    "ChunkTicket",
    "ClusterBackend",
    "ClusterScheduler",
    "SweepPolicy",
    "parse_cluster_spec",
    "parse_policy",
]
