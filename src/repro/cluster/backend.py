"""``ClusterBackend``: the scheduler-managed execution backend (``cluster:N``).

The engine-facing face of :mod:`repro.cluster.scheduler`: an
:class:`~repro.runtime.backends.base.ExecutionBackend` that plans nothing
itself — the engine still consults the store, dedups the batch and bins
jobs into chunks — but hands every chunk to the
:class:`~repro.cluster.scheduler.ClusterScheduler` as a
:class:`~repro.cluster.policies.ChunkTicket` carrying the scheduling
inputs: the engine's cost proxy, plus the priority/deadline set through
:meth:`ClusterBackend.submit_context`.

Spec grammar (``REPRO_BACKEND``, ``JobEngine(backend=...)``,
``repro-experiments --backend``)::

    cluster[:N][,policy=fifo|ljf|edd|suspend][,heartbeat=S][,deadline=S]
              [,backoff=S][,respawns=K]

``N`` is the ``parallelmax`` worker budget (default 2, like
``subprocess``); the remaining options tune the dispatch policy and the
liveness machinery (defaults: the canonical
:data:`~repro.runtime.framing.HEARTBEAT_INTERVAL` /
:data:`~repro.runtime.framing.LIVENESS_DEADLINE`).  Workers are the same
``repro-worker`` processes ``subprocess:N`` spawns, so results are
bit-identical to every other backend; what ``cluster`` adds is survival —
worker death or hang requeues the chunk instead of failing the sweep.

Fault injection for CI/tests: ``REPRO_CLUSTER_CHAOS=kill:<n>`` SIGKILLs
the worker that received the *n*-th chunk dispatch (once per backend).
"""

from __future__ import annotations

import os
from typing import Iterator, Mapping, Set

from ..runtime.backends.base import ExecutionBackend
from ..runtime.backends.remote import local_worker_command
from ..runtime.engine import _job_cost
from ..runtime.framing import HEARTBEAT_INTERVAL, LIVENESS_DEADLINE
from .policies import ChunkTicket, parse_policy
from .scheduler import BACKOFF_BASE, MAX_RESPAWNS, ClusterScheduler

#: Default ``parallelmax`` for a bare ``cluster`` spec.
DEFAULT_CLUSTER_WORKERS = 2

#: Environment variable enabling scheduler fault injection (``kill:<n>``).
CHAOS_ENV_VAR = "REPRO_CLUSTER_CHAOS"


def _chaos_from_env() -> "tuple[str, int] | None":
    raw = os.environ.get(CHAOS_ENV_VAR, "").strip()
    if not raw:
        return None
    kind, _, arg = raw.partition(":")
    if kind != "kill":
        raise ValueError(
            f"bad {CHAOS_ENV_VAR} value {raw!r}: expected 'kill:<n>'"
        )
    try:
        nth = int(arg) if arg else 1
    except ValueError:
        raise ValueError(
            f"bad {CHAOS_ENV_VAR} value {raw!r}: {arg!r} is not a dispatch count"
        ) from None
    return ("kill", max(1, nth))


class ClusterBackend(ExecutionBackend):
    """Elastic scheduler-managed worker pool behind the backend seam."""

    remote = True
    persistent = True

    def __init__(
        self,
        workers: int = DEFAULT_CLUSTER_WORKERS,
        policy: str = "fifo",
        *,
        command_factory=None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        deadline: float = LIVENESS_DEADLINE,
        backoff: float = BACKOFF_BASE,
        max_respawns: int = MAX_RESPAWNS,
        spec: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("cluster backend needs at least one worker slot")
        super().__init__()
        policy_obj = parse_policy(policy)
        self.slots = workers
        self.spec = spec if spec is not None else f"cluster:{workers}"
        poll = min(0.1, max(0.01, heartbeat / 4))
        self.scheduler = ClusterScheduler(
            command_factory if command_factory is not None else local_worker_command,
            parallelmax=workers,
            policy=policy_obj,
            stats=self.stats,
            heartbeat=heartbeat,
            deadline=deadline,
            backoff=backoff,
            max_respawns=max_respawns,
            poll_interval=poll,
            label=self.spec,
            chaos=_chaos_from_env(),
        )
        self._seq = 0
        self._priority = 0
        self._deadline: "float | None" = None

    # -- scheduling context ----------------------------------------------------

    def submit_context(
        self, priority: int = 0, deadline: "float | None" = None
    ) -> "ClusterBackend":
        """Set the priority/deadline stamped onto subsequent submits.

        The engine's ``submit`` call carries no scheduling metadata, so
        callers that want ``edd``/``suspend`` behaviour set the context
        before running a batch::

            backend.submit_context(priority=1)        # a high-priority sweep
            backend.submit_context(deadline=30.0)     # due in 30s (edd)
            backend.submit_context()                  # reset to defaults
        """
        self._priority = int(priority)
        self._deadline = deadline if deadline is None else float(deadline)
        return self

    @property
    def dispatch_log(self) -> "list[dict]":
        """Per-dispatch scheduling record (see ``ClusterScheduler``)."""
        return self.scheduler.dispatch_log

    def resize(self, workers: int) -> None:
        """Elastically grow or shrink the worker budget mid-run."""
        self.scheduler.resize(workers)
        self.slots = workers

    def describe(self) -> dict:
        return self.scheduler.describe()

    # -- ExecutionBackend API --------------------------------------------------

    def start(self, traces: Mapping) -> None:
        # The engine rebinds ``self.stats`` after construction; re-point the
        # scheduler every batch so its counters land in the engine's object.
        self.scheduler.stats = self.stats
        self.scheduler.update_traces(traces)
        self.scheduler.begin_batch()
        if self.scheduler.live_workers() > 0:
            self.stats.pool_reuses += 1
        else:
            self.stats.pool_creates += 1

    def known_trace_ids(self) -> Set[str]:
        # Trace distribution is per-worker (shipped once per worker by
        # digest, exactly like the remote backend); the engine never
        # attaches deltas.
        return self.scheduler.known_trace_ids()

    def submit(self, tag: int, chunk: list, trace_delta: Mapping) -> None:
        if trace_delta:  # pragma: no cover - engine never computes one here
            self.scheduler.update_traces(trace_delta)
        cost = sum(_job_cost(job, self.scheduler._traces) for _, job in chunk)
        self._seq += 1
        self.scheduler.submit(
            ChunkTicket(
                seq=self._seq,
                tag=tag,
                chunk=chunk,
                cost=cost,
                priority=self._priority,
                deadline=self._deadline,
            )
        )

    def drain(self) -> Iterator[tuple]:
        return self.scheduler.drain()

    def cancel_pending(self) -> None:
        self.scheduler.cancel_pending()

    def close(self) -> None:
        self.scheduler.close()


def parse_cluster_spec(text: str) -> ClusterBackend:
    """Build a :class:`ClusterBackend` from its spec string (see module doc)."""
    stripped = text.strip()
    if stripped != "cluster" and not stripped.startswith("cluster:"):
        raise ValueError(f"bad cluster spec {text!r}: must start with 'cluster'")
    body = stripped[len("cluster"):].lstrip(":")
    parts = [part.strip() for part in body.split(",") if part.strip()]
    workers = DEFAULT_CLUSTER_WORKERS
    options: dict[str, str] = {}
    for i, part in enumerate(parts):
        if i == 0 and "=" not in part:
            try:
                workers = int(part)
            except ValueError:
                raise ValueError(
                    f"bad cluster spec {text!r}: {part!r} is not a worker count"
                ) from None
            if workers < 1:
                raise ValueError(f"bad cluster spec {text!r}: count must be >= 1")
            continue
        key, sep, value = part.partition("=")
        if not sep or not value:
            raise ValueError(
                f"bad cluster spec {text!r}: expected key=value, got {part!r}"
            )
        options[key] = value
    kwargs: dict = {}
    policy = options.pop("policy", "fifo")
    for key, cast in (
        ("heartbeat", float),
        ("deadline", float),
        ("backoff", float),
    ):
        if key in options:
            try:
                kwargs[key] = cast(options.pop(key))
            except ValueError:
                raise ValueError(
                    f"bad cluster spec {text!r}: {key} must be a number"
                ) from None
    if "respawns" in options:
        try:
            kwargs["max_respawns"] = int(options.pop("respawns"))
        except ValueError:
            raise ValueError(
                f"bad cluster spec {text!r}: respawns must be an integer"
            ) from None
    if options:
        unknown = ", ".join(sorted(options))
        raise ValueError(
            f"bad cluster spec {text!r}: unknown option(s) {unknown} "
            "(known: policy, heartbeat, deadline, backoff, respawns)"
        )
    canonical = f"cluster:{workers}"
    if policy != "fifo":
        canonical += f",policy={policy}"
    return ClusterBackend(workers, policy, spec=canonical, **kwargs)
