"""Roster building: every store key a scale's detection sweeps can produce.

``repro-store gc`` prunes a shared :class:`~repro.runtime.store.ResultStore`
down to the entries *reachable from a roster* — the set of
(config, bug, trace, step) keys the current experiment configuration can
ever ask for.  Store keys are content-addressed digests, so reachability
cannot be inferred from the store itself; it has to be recomputed from the
same inputs the experiments use.  This module is that computation, built
on the very classes the sweeps run through
(:class:`~repro.experiments.common.ExperimentContext`,
:class:`~repro.runtime.job.SimulationJob`), so the roster is consistent
with the sweeps *by construction*: a key an experiment writes is a key the
roster names, as long as both were built from the same scale, trace
directory and design/bug universe.

The roster covers the full cross product — every core design set (I–IV) ×
(bug-free + every bug variant) × every probe at the scale's step, plus the
memory-study counterpart — which is a superset of what any single
table/figure run touches.  GC with a superset roster is safe (it only
keeps more); GC with a *stale* roster (different scale or trace set) is
the operator's deliberate choice to drop those entries.

CLI: ``repro-cluster roster --scale smoke [--trace-dir D] > roster.txt``
then ``repro-store gc STORE --keep roster.txt``.
"""

from __future__ import annotations

from typing import Iterable

from ..bugs.registry import (
    figure1_bug1,
    figure1_bug2,
    tableV_bug1,
    tableV_bug2,
)
from ..runtime.job import CORE_STUDY, MEMORY_STUDY, SimulationJob, trace_digest


def _design_universe(sets: "dict[str, list]") -> list:
    designs = []
    seen = set()
    for name in sorted(sets):
        for design in sets[name]:
            marker = getattr(design, "name", repr(design))
            if marker not in seen:
                seen.add(marker)
                designs.append(design)
    return designs


def _bug_universe(suite: "dict[str, list]", named: tuple = ()) -> list:
    bugs: list = [None]  # bug-free runs are part of every sweep
    for bug_type in sorted(suite):
        bugs.extend(suite[bug_type])
    bugs.extend(named)
    return bugs


def _named_core_bugs() -> tuple:
    # The fig1/fig3/fig6/tab5 experiments inject the paper's explicitly
    # named bugs unconditionally, even when the scale's variant limits
    # exclude them from the suite — the roster must cover them too.
    return (figure1_bug1(), figure1_bug2(), tableV_bug1(), tableV_bug2())


def roster_keys(context) -> "list[str]":
    """Every store key the *context*'s core and memory sweeps can produce.

    *context* is an :class:`~repro.experiments.common.ExperimentContext`;
    the scale, trace source, design sets and bug suites are read from it so
    the roster tracks exactly what the experiments would simulate.
    """
    keys: set[str] = set()
    scale = context.scale

    core_digests = [trace_digest(probe.decoded) for probe in context.probes]
    for design in _design_universe(context.core_designs()):
        for bug in _bug_universe(context.core_bugs(), _named_core_bugs()):
            for digest in core_digests:
                keys.add(
                    SimulationJob(
                        study=CORE_STUDY,
                        config=design,
                        bug=bug,
                        trace_id=digest,
                        step=scale.step_cycles,
                    ).key()
                )

    memory_digests = [
        trace_digest(probe.decoded) for probe in context.memory_probes
    ]
    for design in _design_universe(context.memory_designs()):
        for bug in _bug_universe(context.memory_bugs()):
            for digest in memory_digests:
                keys.add(
                    SimulationJob(
                        study=MEMORY_STUDY,
                        config=design,
                        bug=bug,
                        trace_id=digest,
                        step=scale.memory_step_instructions,
                    ).key()
                )
    return sorted(keys)


def write_roster(keys: Iterable[str], stream) -> int:
    """Write one key per line (the ``repro-store gc --keep`` format)."""
    count = 0
    for key in keys:
        stream.write(f"{key}\n")
        count += 1
    return count


def read_roster(path: str) -> "set[str]":
    """Read a keep-set written by :func:`write_roster` (``#`` comments ok)."""
    keys: set[str] = set()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys
