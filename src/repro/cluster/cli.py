"""``repro-cluster``: operate the elastic cluster execution backend.

Subcommands::

    repro-cluster health [--workers N] [--heartbeat S]
        Spawn N workers, complete the v2 handshake, ping each one and wait
        for a heartbeat frame — a liveness smoke test for the machinery the
        ``cluster:N`` backend relies on.  Exits non-zero if any worker
        fails to answer.

    repro-cluster roster --scale SCALE [--trace-dir D] [--output FILE]
        Write the store-key roster of everything the scale's detection
        sweeps can produce (one key per line) — the keep-set for
        ``repro-store gc``.

    repro-cluster plan --scale SCALE [--policy P] [--workers N]
        Dry-run the chunk planner + dispatch policy over the scale's core
        sweep and print the dispatch order (no simulation executed).

Sweeps themselves run through the ordinary entry points with the backend
spec — ``repro-experiments --backend cluster:4,policy=ljf`` or
``REPRO_BACKEND=cluster:4`` — this CLI covers the operational side.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time

from ..runtime.framing import (
    ERROR,
    HEARTBEAT,
    HELLO,
    PING,
    PONG,
    PROTOCOL_VERSION,
    ProtocolError,
    SHUTDOWN,
    check_hello,
    read_frame,
    write_frame,
)


def _cmd_health(args) -> int:
    from ..runtime.backends.remote import local_worker_command

    failures = 0
    for index in range(args.workers):
        label = f"worker#{index}"
        process = subprocess.Popen(
            local_worker_command(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        try:
            write_frame(
                process.stdin,
                HELLO,
                {"protocol": PROTOCOL_VERSION, "heartbeat": args.heartbeat},
            )
            kind, payload = read_frame(process.stdout)
            if kind == ERROR:
                raise ProtocolError(f"handshake rejected: {payload}")
            if kind != HELLO:
                raise ProtocolError(f"expected hello, got {kind!r}")
            check_hello(payload, side=label)
            write_frame(process.stdin, PING, index)
            saw_pong = saw_heartbeat = False
            # repro: allow(wall-clock): CLI health-probe timeout only
            deadline = time.monotonic() + max(5.0, 5 * args.heartbeat)
            while not (saw_pong and saw_heartbeat):
                # repro: allow(wall-clock): CLI health-probe timeout only
                if time.monotonic() > deadline:
                    raise ProtocolError(
                        f"no {'pong' if not saw_pong else 'heartbeat'} "
                        f"within {max(5.0, 5 * args.heartbeat):.1f}s"
                    )
                kind, reply = read_frame(process.stdout)
                if kind == PONG and reply.get("token") == index:
                    saw_pong = True
                elif kind == HEARTBEAT:
                    saw_heartbeat = True
            print(
                f"{label}: ok (pid {payload.get('pid')}, "
                f"python {payload.get('python')}, protocol v{PROTOCOL_VERSION}, "
                f"heartbeat every {args.heartbeat}s)"
            )
        except (ProtocolError, OSError) as exc:
            failures += 1
            print(f"{label}: FAILED — {exc}", file=sys.stderr)
        finally:
            try:
                if process.poll() is None:
                    write_frame(process.stdin, SHUTDOWN, None)
                    process.stdin.close()
                process.wait(timeout=5)
            except (OSError, ValueError, subprocess.TimeoutExpired):
                process.kill()
                process.wait()
    print(f"repro-cluster health: {args.workers - failures}/{args.workers} workers ok")
    return 1 if failures else 0


def _cmd_roster(args) -> int:
    from ..experiments.common import ExperimentContext
    from .roster import roster_keys, write_roster

    with ExperimentContext(
        scale=args.scale,
        jobs=1,
        trace_dir=args.trace_dir,
        trace_format=args.trace_format,
    ) as context:
        keys = roster_keys(context)
        if args.output and args.output != "-":
            with open(args.output, "w", encoding="utf-8") as handle:
                count = write_roster(keys, handle)
            print(f"repro-cluster roster: {count} keys -> {args.output}")
        else:
            write_roster(keys, sys.stdout)
    return 0


def _cmd_plan(args) -> int:
    from ..detect.dataset import SimulationCache
    from ..experiments.common import ExperimentContext
    from ..runtime.engine import JobEngine, _job_cost
    from .policies import ChunkTicket, parse_policy

    policy = parse_policy(args.policy)
    with ExperimentContext(scale=args.scale, jobs=1) as context:
        cache = SimulationCache(
            step_cycles=context.scale.step_cycles, engine=context.engine
        )
        designs = context.core_designs()["I"]
        jobs = [
            cache._job(probe, design, None)
            for design in designs
            for probe in context.probes
        ]
        traces = dict(cache._registry.traces)
        planner = JobEngine(jobs=1)
        chunks = planner._plan_chunks(list(enumerate(jobs)), traces)
        planner.close()
        tickets = [
            ChunkTicket(
                seq=seq + 1,
                tag=seq,
                chunk=chunk,
                cost=sum(_job_cost(job, traces) for _, job in chunk),
            )
            for seq, chunk in enumerate(chunks)
        ]
    queued = list(tickets)
    order = []
    while queued:
        ticket = policy.select(queued, [])
        if ticket is None:
            break
        queued.remove(ticket)
        order.append(ticket)
    print(
        f"repro-cluster plan: scale={args.scale} policy={policy.name} "
        f"workers={args.workers} -> {len(tickets)} chunks"
    )
    for position, ticket in enumerate(order):
        print(
            f"  {position:3d}: chunk tag={ticket.tag} jobs={len(ticket.chunk)} "
            f"cost={ticket.cost}"
        )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    health = commands.add_parser(
        "health", help="spawn workers and verify handshake/ping/heartbeat"
    )
    health.add_argument("--workers", type=int, default=2)
    health.add_argument("--heartbeat", type=float, default=0.2,
                        help="requested heartbeat interval (seconds)")
    health.set_defaults(func=_cmd_health)

    roster = commands.add_parser(
        "roster", help="write the store-key keep-set for repro-store gc"
    )
    roster.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "full"])
    roster.add_argument("--trace-dir", default=None,
                        help="build the roster over ingested on-disk traces")
    roster.add_argument("--trace-format", default=None,
                        choices=["champsim", "gem5", "k6"])
    roster.add_argument("--output", "-o", default="-",
                        help="output file (default: stdout)")
    roster.set_defaults(func=_cmd_roster)

    plan = commands.add_parser(
        "plan", help="dry-run chunk planning + dispatch policy (no simulation)"
    )
    plan.add_argument("--scale", default="smoke",
                      choices=["smoke", "small", "full"])
    plan.add_argument("--policy", default="ljf",
                      choices=["fifo", "ljf", "edd", "suspend"])
    plan.add_argument("--workers", type=int, default=2)
    plan.set_defaults(func=_cmd_plan)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
