"""The poll-loop worker scheduler behind :class:`ClusterBackend`.

Shape (after PrunScheduler in vusec/instrumentation-infra): a single
scheduling thread owns a set of worker **slots** (bounded by
``parallelmax``), a queue of :class:`~repro.cluster.policies.ChunkTicket`\\ s
and one event queue.  Each iteration of the poll loop

1. dispatches queued tickets to idle live workers (the
   :class:`~repro.cluster.policies.SweepPolicy` picks which), spawning a
   new worker when every live one is busy and the slot budget allows;
2. waits briefly for worker events — results, worker exits, protocol
   errors — posted by one reader thread per worker connection;
3. enforces **liveness**: every worker is asked (via the protocol-v2 hello)
   to emit heartbeat frames; a worker silent past the deadline is presumed
   hung, killed, and its in-flight chunk is requeued;
4. respawns dead slots under exponential backoff, giving a slot up after
   ``max_respawns`` consecutive failed spawn attempts.

Failure semantics: losing a worker never loses work — the chunk it held
goes back to the queue (``chunks_requeued`` in
:class:`~repro.runtime.stats.EngineStats`) and re-executes elsewhere, while
results the engine already persisted stay persisted (the resumable-batch
path).  Only when *every* slot has permanently failed with work still
queued does :meth:`ClusterScheduler.drain` raise
:class:`~repro.runtime.backends.base.BackendError`; one flapping host
cannot fail a sweep a healthy host can finish.

Chaos hook: ``REPRO_CLUSTER_CHAOS=kill:<n>`` (read by the backend) makes
the scheduler ``SIGKILL`` its own worker right after the *n*-th chunk
dispatch — deterministic mid-sweep worker death for CI and tests, driving
exactly the kill/respawn/requeue path a reclaimed cluster node would.

Timing note: this module reads ``time.monotonic`` freely (liveness
deadlines, backoff, dispatch-log timestamps).  None of it can reach a
:class:`~repro.runtime.store.StoredResult` — workers compute results from
(config, bug, trace, step) alone — so the determinism lint allowlists the
file (``.repro-lint-allow``).
"""

from __future__ import annotations

import queue
import subprocess
import threading
import sys
import time
import weakref
from typing import Iterator, Mapping

from ..runtime.backends.base import BackendError
from ..runtime.framing import (
    CHUNK,
    ERROR,
    HEARTBEAT,
    HELLO,
    PONG,
    PROTOCOL_VERSION,
    RESULT,
    SHUTDOWN,
    TRACES,
    ProtocolError,
    check_hello,
    read_frame,
    write_frame,
)
from ..runtime.stats import EngineStats
from .policies import ChunkTicket, SweepPolicy

#: How long one poll-loop iteration blocks waiting for worker events.
POLL_INTERVAL = 0.1

#: First respawn delay; doubles per consecutive failed attempt.
BACKOFF_BASE = 0.25

#: Consecutive failed spawn attempts after which a slot is given up.
MAX_RESPAWNS = 5

_NEW, _LIVE, _DEAD, _FAILED, _RETIRED = "new", "live", "dead", "failed", "retired"


class _Incarnation:
    """One spawned worker process: streams, reader thread, liveness clock."""

    _next_gen = 0
    _gen_lock = threading.Lock()

    def __init__(self, process: subprocess.Popen, label: str) -> None:
        with _Incarnation._gen_lock:
            _Incarnation._next_gen += 1
            self.gen = _Incarnation._next_gen
        self.process = process
        self.label = label
        #: Content digests already shipped to this worker process.
        self.shipped: set[str] = set()
        #: Monotonic time of the last frame received (reader thread writes,
        #: scheduler thread reads; a float store is atomic under the GIL).
        self.last_seen = time.monotonic()
        self.reader: "threading.Thread | None" = None


def _read_worker(incarnation: _Incarnation, events: "queue.Queue") -> None:
    """Reader loop for one worker connection (daemon thread).

    Posts ``("result", gen, tag, outcome)`` and ``("down", gen, reason)``
    events; heartbeat/pong frames only refresh the liveness clock.  The
    scheduler ignores events whose generation it no longer tracks, so a
    reader racing its worker's teardown is harmless.
    """
    stdout = incarnation.process.stdout
    while True:
        try:
            frame = read_frame(stdout, allow_eof=True)
        except ProtocolError as exc:
            events.put(("down", incarnation.gen, f"{incarnation.label}: {exc}"))
            return
        if frame is None:
            events.put(("down", incarnation.gen,
                        f"{incarnation.label}: connection closed"))
            return
        incarnation.last_seen = time.monotonic()
        kind, payload = frame
        if kind == RESULT:
            tag, outcome = payload
            events.put(("result", incarnation.gen, tag, outcome))
        elif kind in (HEARTBEAT, PONG):
            continue  # liveness only; the clock update above is the point
        elif kind == ERROR:
            events.put(("down", incarnation.gen,
                        f"{incarnation.label}: worker error: {payload}"))
            return
        else:
            events.put(("down", incarnation.gen,
                        f"{incarnation.label}: unexpected {kind!r} frame"))
            return


class _Slot:
    """One worker position: its incarnation (if any) and respawn bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = _NEW
        self.incarnation: "_Incarnation | None" = None
        #: In-flight work: the dispatched ticket and the epoch it belongs to.
        self.ticket: "ChunkTicket | None" = None
        self.ticket_epoch = -1
        #: Consecutive failed spawn attempts (reset by a successful handshake).
        self.attempts = 0
        self.next_spawn_at = 0.0
        self.ever_live = False

    @property
    def idle(self) -> bool:
        return self.state == _LIVE and self.ticket is None


def _finalize_processes(registry: "dict[int, subprocess.Popen]") -> None:
    """GC fallback: make sure no worker process outlives a dropped scheduler."""
    for process in list(registry.values()):
        try:
            process.kill()
            process.wait()
        except OSError:  # pragma: no cover - already reaped
            pass


class ClusterScheduler:
    """Elastic poll-loop scheduler over ``repro-worker`` connections.

    Parameters
    ----------
    command_factory:
        ``() -> list[str]`` producing the worker command for the next spawn
        (every spawn calls it again, so respawns get fresh commands).
    parallelmax:
        Worker slot budget; workers spawn lazily as queued work demands,
        and :meth:`resize` changes the budget mid-run (elastic grow/shrink).
    policy:
        The dispatch :class:`~repro.cluster.policies.SweepPolicy`.
    stats:
        The engine-shared :class:`EngineStats`; the scheduler owns the
        ``workers_spawned`` / ``workers_lost`` / ``workers_respawned`` /
        ``chunks_requeued`` counters.
    heartbeat / deadline:
        Liveness tuning: requested worker heartbeat interval and the
        silence threshold (seconds) past which a worker is presumed dead.
        Defaults scale from the canonical framing constants.
    chaos:
        Optional ``("kill", n)`` fault injection — see module docstring.
    """

    def __init__(
        self,
        command_factory,
        parallelmax: int,
        policy: SweepPolicy,
        stats: "EngineStats | None" = None,
        *,
        heartbeat: float,
        deadline: float,
        backoff: float = BACKOFF_BASE,
        max_respawns: int = MAX_RESPAWNS,
        poll_interval: float = POLL_INTERVAL,
        label: str = "cluster",
        chaos: "tuple[str, int] | None" = None,
    ) -> None:
        if parallelmax < 1:
            raise ValueError("parallelmax must be >= 1")
        self.command_factory = command_factory
        self.parallelmax = parallelmax
        self.policy = policy
        self.stats = stats if stats is not None else EngineStats()
        self.heartbeat = heartbeat
        self.deadline = deadline
        self.backoff = backoff
        self.max_respawns = max_respawns
        self.poll_interval = poll_interval
        self.label = label
        self._chaos = chaos
        self._slots: list[_Slot] = []
        self._by_gen: dict[int, _Slot] = {}
        self._events: "queue.Queue" = queue.Queue()
        self._queued: list[ChunkTicket] = []
        self._traces: dict[str, object] = {}
        self._epoch = 0
        self._outstanding = 0
        self._dispatches = 0
        #: One dict per dispatch, in dispatch order — the policy A/B record
        #: (``repro-bench`` asserts ordering invariants over it).
        self.dispatch_log: list[dict] = []
        self._process_registry: dict[int, subprocess.Popen] = {}
        self._finalizer = weakref.finalize(
            self, _finalize_processes, self._process_registry
        )

    # -- engine-facing API -----------------------------------------------------

    def update_traces(self, traces: Mapping) -> None:
        self._traces.update(traces)

    def known_trace_ids(self) -> set:
        return set(self._traces)

    def live_workers(self) -> int:
        return sum(1 for slot in self._slots if slot.state == _LIVE)

    def begin_batch(self) -> None:
        """Start a fresh batch epoch: any still-in-flight result from an
        earlier (cancelled) batch is dropped on arrival instead of being
        mistaken for this batch's work."""
        self._epoch += 1

    def submit(self, ticket: ChunkTicket) -> None:
        self._queued.append(ticket)
        self._outstanding += 1

    def cancel_pending(self) -> None:
        """Drop queued work; in-flight chunks finish but their results drop."""
        self._epoch += 1
        self._queued.clear()
        self._outstanding = 0

    def resize(self, parallelmax: int) -> None:
        """Change the slot budget; shrinking retires idle surplus workers.

        Busy surplus workers finish their current chunk first — they retire
        the moment they next go idle (checked every poll iteration).
        """
        if parallelmax < 1:
            raise ValueError("parallelmax must be >= 1")
        self.parallelmax = parallelmax
        self._shrink_to_budget()

    def drain(self) -> Iterator[tuple]:
        """The poll loop: yield ``(tag, ChunkOutcome)`` until the batch drains."""
        while self._outstanding > 0:
            self._dispatch_ready()
            completed = self._pump_events()
            self._outstanding -= len(completed)
            self._check_liveness()
            self._shrink_to_budget()
            if self._outstanding > 0:
                self._check_wedged()
            for item in completed:
                yield item

    def close(self) -> None:
        """Shut every worker down (idempotent); a later dispatch respawns."""
        self._epoch += 1
        self._queued.clear()
        self._outstanding = 0
        for slot in self._slots:
            if slot.incarnation is not None:
                self._shutdown_incarnation(slot)
            slot.state = _RETIRED
        self._slots = []
        self._by_gen = {}
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break

    # -- spawning and teardown -------------------------------------------------

    def _spawn_into(self, slot: _Slot) -> bool:
        """Spawn + handshake a worker for *slot*; schedule a retry on failure."""
        now = time.monotonic()
        try:
            process = subprocess.Popen(
                self.command_factory(),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                # stderr inherited: worker tracebacks reach the driver.
            )
        except OSError as exc:
            self._spawn_failed(slot, f"spawn failed: {exc}", now)
            return False
        incarnation = _Incarnation(process, f"{self.label}#{slot.index}")
        try:
            write_frame(
                process.stdin,
                HELLO,
                {"protocol": PROTOCOL_VERSION, "heartbeat": self.heartbeat},
            )
            frame = read_frame(process.stdout)
            kind, payload = frame
            if kind == ERROR:
                raise ProtocolError(
                    f"worker {incarnation.label} rejected handshake: {payload}"
                )
            if kind != HELLO:
                raise ProtocolError(
                    f"worker {incarnation.label} sent {kind!r} instead of a handshake"
                )
            check_hello(payload, side=f"worker {incarnation.label}")
        except Exception as exc:
            try:
                process.kill()
                process.wait()
            except OSError:  # pragma: no cover - already gone
                pass
            self._spawn_failed(slot, str(exc), now)
            return False
        incarnation.reader = threading.Thread(
            target=_read_worker,
            args=(incarnation, self._events),
            daemon=True,
            name=f"repro-cluster-{incarnation.label}",
        )
        incarnation.reader.start()
        self._process_registry[incarnation.gen] = process
        slot.incarnation = incarnation
        slot.state = _LIVE
        slot.ticket = None
        slot.attempts = 0
        self._by_gen[incarnation.gen] = slot
        self.stats.workers_spawned += 1
        if slot.ever_live:
            self.stats.workers_respawned += 1
        slot.ever_live = True
        return True

    def _spawn_failed(self, slot: _Slot, reason: str, now: float) -> None:
        slot.incarnation = None
        slot.attempts += 1
        if slot.attempts > self.max_respawns:
            slot.state = _FAILED
            print(
                f"[cluster] slot {slot.index} failed permanently after "
                f"{slot.attempts} attempts: {reason}",
                file=sys.stderr, flush=True,
            )
            return
        delay = self.backoff * (2 ** (slot.attempts - 1))
        slot.state = _DEAD
        slot.next_spawn_at = now + delay
        print(
            f"[cluster] slot {slot.index} spawn failed ({reason}); "
            f"retry in {delay:.2f}s",
            file=sys.stderr, flush=True,
        )

    def _shutdown_incarnation(self, slot: _Slot) -> None:
        """Politely stop a live worker (shutdown frame, then the hammer)."""
        incarnation, slot.incarnation = slot.incarnation, None
        if incarnation is None:
            return
        self._by_gen.pop(incarnation.gen, None)
        self._process_registry.pop(incarnation.gen, None)
        process = incarnation.process
        try:
            if process.poll() is None and process.stdin and not process.stdin.closed:
                write_frame(process.stdin, SHUTDOWN, None)
                process.stdin.close()
        except (OSError, ValueError):
            pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            process.kill()
            process.wait()
        if incarnation.reader is not None:
            incarnation.reader.join(timeout=5)

    def _slot_down(self, slot: _Slot, reason: str) -> None:
        """A live worker was lost: kill remnants, requeue its chunk, back off."""
        incarnation, slot.incarnation = slot.incarnation, None
        if incarnation is not None:
            self._by_gen.pop(incarnation.gen, None)
            self._process_registry.pop(incarnation.gen, None)
            try:
                incarnation.process.kill()
                incarnation.process.wait()
            except OSError:  # pragma: no cover - already reaped
                pass
        self.stats.workers_lost += 1
        ticket, slot.ticket = slot.ticket, None
        if ticket is not None and slot.ticket_epoch == self._epoch:
            ticket.requeues += 1
            self.stats.chunks_requeued += 1
            self._queued.append(ticket)
            print(
                f"[cluster] worker {self.label}#{slot.index} lost ({reason}); "
                f"requeued chunk {ticket.tag}",
                file=sys.stderr, flush=True,
            )
        else:
            print(
                f"[cluster] worker {self.label}#{slot.index} lost ({reason})",
                file=sys.stderr, flush=True,
            )
        slot.attempts += 1
        if slot.attempts > self.max_respawns:
            slot.state = _FAILED
        else:
            slot.state = _DEAD
            slot.next_spawn_at = time.monotonic() + self.backoff * (
                2 ** (slot.attempts - 1)
            )

    # -- the poll loop ---------------------------------------------------------

    def _active_slots(self) -> "list[_Slot]":
        return [s for s in self._slots if s.state not in (_RETIRED,)]

    def _dispatch_ready(self) -> None:
        """Hand queued tickets to idle workers, spawning/respawning as needed."""
        now = time.monotonic()
        for slot in self._slots:
            if (
                slot.state == _DEAD
                and self._queued
                and now >= slot.next_spawn_at
            ):
                self._spawn_into(slot)
        while self._queued:
            idle = [slot for slot in self._slots if slot.idle]
            if not idle and len(self._active_slots()) < self.parallelmax:
                slot = _Slot(len(self._slots))
                self._slots.append(slot)
                if self._spawn_into(slot):
                    idle = [slot]
            if not idle:
                return
            running = [
                s.ticket
                for s in self._slots
                if s.ticket is not None and s.ticket_epoch == self._epoch
            ]
            ticket = self.policy.select(self._queued, running)
            if ticket is None:  # the policy is holding work back (suspend)
                return
            self._queued.remove(ticket)
            self._dispatch(idle[0], ticket)

    def _dispatch(self, slot: _Slot, ticket: ChunkTicket) -> None:
        incarnation = slot.incarnation
        assert incarnation is not None
        slot.ticket = ticket
        slot.ticket_epoch = self._epoch
        self._dispatches += 1
        self.dispatch_log.append(
            {
                "seq": ticket.seq,
                "tag": ticket.tag,
                "cost": ticket.cost,
                "priority": ticket.priority,
                "deadline": ticket.deadline,
                "slot": slot.index,
                "requeues": ticket.requeues,
            }
        )
        try:
            missing = {job.trace_id for _, job in ticket.chunk} - incarnation.shipped
            if missing:
                write_frame(
                    incarnation.process.stdin,
                    TRACES,
                    {tid: self._traces[tid] for tid in sorted(missing)},
                )
                incarnation.shipped |= missing
                self.stats.traces_shipped += len(missing)
            write_frame(incarnation.process.stdin, CHUNK, (ticket.tag, ticket.chunk))
        except (OSError, ValueError) as exc:
            # The worker died under the dispatch; _slot_down requeues.
            self._slot_down(slot, f"dispatch failed: {exc}")
            return
        if self._chaos is not None and self._chaos[0] == "kill":
            if self._dispatches >= self._chaos[1]:
                self._chaos = None
                print(
                    f"[cluster] chaos: SIGKILL worker {incarnation.label} "
                    f"after dispatch {self._dispatches}",
                    file=sys.stderr, flush=True,
                )
                try:
                    incarnation.process.kill()
                except OSError:  # pragma: no cover - already gone
                    pass

    def _pump_events(self) -> "list[tuple]":
        """Wait briefly for worker events; return completed current-batch work."""
        completed: list[tuple] = []
        try:
            event = self._events.get(timeout=self.poll_interval)
        except queue.Empty:
            return completed
        while True:
            kind = event[0]
            if kind == "result":
                _, gen, tag, outcome = event
                slot = self._by_gen.get(gen)
                if slot is not None:
                    current = (
                        slot.ticket is not None
                        and slot.ticket_epoch == self._epoch
                        and slot.ticket.tag == tag
                    )
                    slot.ticket = None
                    if current:
                        completed.append((tag, outcome))
                    # else: leftover from a cancelled batch — drop it, the
                    # worker itself is fine and now idle again.
            elif kind == "down":
                _, gen, reason = event
                slot = self._by_gen.get(gen)
                if slot is not None:
                    self._slot_down(slot, reason)
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                return completed

    def _check_liveness(self) -> None:
        """Kill workers silent past the deadline (their chunks requeue)."""
        now = time.monotonic()
        for slot in self._slots:
            if slot.state != _LIVE or slot.incarnation is None:
                continue
            silent = now - slot.incarnation.last_seen
            if silent > self.deadline:
                self._slot_down(
                    slot, f"no heartbeat for {silent:.1f}s (deadline {self.deadline}s)"
                )

    def _shrink_to_budget(self) -> None:
        """Retire surplus idle workers when the budget shrank."""
        surplus = len(self._active_slots()) - self.parallelmax
        if surplus <= 0:
            return
        for slot in reversed(self._slots):
            if surplus <= 0:
                break
            if slot.state in (_RETIRED,) or slot.ticket is not None:
                continue
            if slot.state == _LIVE:
                self._shutdown_incarnation(slot)
            slot.state = _RETIRED
            surplus -= 1

    def _check_wedged(self) -> None:
        """Raise when outstanding work can never complete (only called with
        ``_outstanding > 0``)."""
        in_flight = any(
            s.ticket is not None and s.ticket_epoch == self._epoch
            for s in self._slots
        )
        if not self._queued and not in_flight:
            # Every outstanding chunk is either queued or running (losing a
            # worker requeues its chunk); neither means bookkeeping broke.
            # Fail loudly rather than poll forever.
            raise BackendError(
                f"cluster scheduler wedged: {self._outstanding} chunks "
                "outstanding with nothing queued or running"
            )
        active = self._active_slots()
        if (
            self._queued
            and active
            and len(active) >= self.parallelmax
            and all(s.state == _FAILED for s in active)
        ):
            raise BackendError(
                f"all {len(active)} cluster worker slots failed permanently "
                f"(max_respawns={self.max_respawns} exceeded on each)"
            )

    # -- health reporting ------------------------------------------------------

    def describe(self) -> dict:
        """Snapshot for the CLI/report line: slot states and counters."""
        states: dict[str, int] = {}
        for slot in self._slots:
            states[slot.state] = states.get(slot.state, 0) + 1
        return {
            "parallelmax": self.parallelmax,
            "slots": states,
            "queued": len(self._queued),
            "dispatches": self._dispatches,
            "policy": self.policy.name,
        }
