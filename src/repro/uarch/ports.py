"""Issue-port and functional-unit organisation (Table III of the paper).

Each microarchitecture exposes a set of issue ports; every port hosts one or
more functional units.  An instruction may issue through any port that hosts a
unit capable of executing its :class:`~repro.workloads.isa.OpClass`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..workloads.isa import OpClass


class UnitType(enum.Enum):
    """Functional-unit types named in Table III."""

    ALU = "ALU"
    INT_MULT = "Int Mult"
    DIVIDER = "Divider"
    FP_UNIT = "FP Unit"
    FP_MULT = "FP Mult"
    VECTOR = "Vector Unit"
    BRANCH = "Branch Unit"
    LOAD = "Load Unit"
    STORE = "Store Unit"


#: Which unit types can execute each operation class.  Order expresses
#: preference (the scheduler tries earlier entries first).
CLASS_TO_UNITS: dict[OpClass, tuple[UnitType, ...]] = {
    OpClass.INT_ALU: (UnitType.ALU,),
    OpClass.INT_MULT: (UnitType.INT_MULT, UnitType.ALU),
    OpClass.INT_DIV: (UnitType.DIVIDER, UnitType.INT_MULT),
    OpClass.FP_ALU: (UnitType.FP_UNIT, UnitType.FP_MULT),
    OpClass.FP_MULT: (UnitType.FP_MULT, UnitType.FP_UNIT),
    OpClass.FP_DIV: (UnitType.DIVIDER, UnitType.FP_UNIT),
    OpClass.VECTOR: (UnitType.VECTOR, UnitType.FP_UNIT),
    OpClass.LOAD: (UnitType.LOAD,),
    OpClass.STORE: (UnitType.STORE,),
    OpClass.BRANCH: (UnitType.BRANCH, UnitType.ALU),
}


@dataclass(frozen=True)
class Port:
    """One issue port: a named collection of functional units."""

    index: int
    units: tuple[UnitType, ...]

    def can_execute(self, op_class: OpClass) -> bool:
        """True if any unit on this port can execute *op_class*."""
        capable = CLASS_TO_UNITS[op_class]
        return any(unit in self.units for unit in capable)


@dataclass(frozen=True)
class PortOrganization:
    """The full set of issue ports of a microarchitecture."""

    ports: tuple[Port, ...]

    @classmethod
    def from_unit_lists(cls, unit_lists: list[list[UnitType]]) -> "PortOrganization":
        """Build from a list of per-port unit lists (Table III rows)."""
        if not unit_lists:
            raise ValueError("a port organization needs at least one port")
        ports = tuple(
            Port(index=i, units=tuple(units)) for i, units in enumerate(unit_lists)
        )
        return cls(ports=ports)

    @property
    def num_ports(self) -> int:
        return len(self.ports)

    def ports_for(self, op_class: OpClass) -> list[Port]:
        """All ports capable of executing *op_class*."""
        return [p for p in self.ports if p.can_execute(op_class)]

    def capability_histogram(self) -> dict[OpClass, int]:
        """Number of ports able to execute each operation class."""
        return {oc: len(self.ports_for(oc)) for oc in OpClass}

    def validate(self) -> None:
        """Ensure every operation class has at least one capable port."""
        missing = [oc.name for oc, n in self.capability_histogram().items() if n == 0]
        if missing:
            raise ValueError(f"no issue port can execute: {', '.join(missing)}")


# Shorthand aliases used by the preset tables.
A = UnitType.ALU
IM = UnitType.INT_MULT
DIV = UnitType.DIVIDER
FU = UnitType.FP_UNIT
FM = UnitType.FP_MULT
V = UnitType.VECTOR
BR = UnitType.BRANCH
LD = UnitType.LOAD
ST = UnitType.STORE


def make_ports(*unit_lists: list[UnitType]) -> PortOrganization:
    """Convenience wrapper: ``make_ports([A, FM], [LD], ...)``."""
    organization = PortOrganization.from_unit_lists(list(unit_lists))
    organization.validate()
    return organization
