"""The 20 core microarchitecture presets of Tables II and III.

Eight real designs (Intel Broadwell, Cedarview, Ivybridge, Skylake,
Silvermont; AMD Jaguar, K8, K10) plus twelve artificial designs with realistic
settings, partitioned into the four training/validation/testing sets the
paper's methodology uses:

* Set I   — stage-1 (IPC model) training,
* Set II  — stage-1 validation + stage-2 training,
* Set III — additional stage-2 training,
* Set IV  — stage-2 testing (real designs only).
"""

from __future__ import annotations

from .config import CacheConfig, MicroarchConfig, kb, mb
from .ports import A, BR, DIV, FM, FU, IM, LD, ST, V, PortOrganization, make_ports

# ----------------------------------------------------------------------------
# Port organisations (Table III)
# ----------------------------------------------------------------------------

#: Broadwell-style big-core ports (also Artificial 0/2/3/4/6).
BROADWELL_PORTS = make_ports(
    [A, FM, FU, V, IM, DIV, BR],
    [A, V, FM, IM],
    [LD],
    [LD],
    [ST],
    [A, V],
    [A, BR],
)

#: Skylake-style big-core ports.
SKYLAKE_PORTS = make_ports(
    [A, V, FU, IM, DIV, BR],
    [A, V, FM, FU, IM],
    [LD],
    [LD],
    [ST],
    [A, V],
    [A, BR],
)

#: Cedarview-style small-core ports (also Artificial 10/11).
CEDARVIEW_PORTS = make_ports(
    [A, LD, ST, V, IM, DIV],
    [A, V, FU, BR],
    [LD],
    [ST],
)

#: AMD Jaguar ports.
JAGUAR_PORTS = make_ports(
    [A, V],
    [A, V],
    [FU, IM],
    [FM, DIV],
    [LD],
    [ST],
)

#: Silvermont-style ports (also Artificial 7).
SILVERMONT_PORTS = make_ports(
    [LD, ST],
    [A, IM],
    [A, BR],
    [FM, DIV],
    [FU],
)

#: Ivybridge ports.
IVYBRIDGE_PORTS = make_ports(
    [A, V, FM, DIV],
    [A, V, IM, FU],
    [LD],
    [LD],
    [ST],
    [A, V, BR, FU],
)

#: AMD K8/K10-style ports (also Artificial 1/5/8/9).
AMD_PORTS = make_ports(
    [A, V, IM],
    [A, V],
    [A, V],
    [LD],
    [ST],
    [FU],
    [FU],
)


def _core(
    name: str,
    training_set: str,
    is_real: bool,
    clock: float,
    width: int,
    rob: int,
    l1: tuple[int, int, int],
    l2: tuple[int, int, int],
    l3: tuple[int, int, int] | None,
    fu: tuple[int, int, int],
    ports: PortOrganization,
) -> MicroarchConfig:
    """Build one Table-II row. Cache tuples are (bytes, assoc, latency)."""
    return MicroarchConfig(
        name=name,
        training_set=training_set,
        is_real=is_real,
        clock_ghz=clock,
        width=width,
        rob_size=rob,
        l1=CacheConfig(size=l1[0], associativity=l1[1], latency=l1[2]),
        l2=CacheConfig(size=l2[0], associativity=l2[1], latency=l2[2]),
        l3=CacheConfig(size=l3[0], associativity=l3[1], latency=l3[2]) if l3 else None,
        fp_latency=fu[0],
        mult_latency=fu[1],
        div_latency=fu[2],
        ports=ports,
    )


#: All 20 core microarchitectures, keyed by name (Tables II + III verbatim).
CORE_MICROARCHES: dict[str, MicroarchConfig] = {
    cfg.name: cfg
    for cfg in [
        # --- Set I ---------------------------------------------------------
        _core("Broadwell", "I", True, 4.0, 4, 192, (kb(32), 8, 4),
              (kb(256), 8, 12), (mb(64), 16, 59), (5, 3, 20), BROADWELL_PORTS),
        _core("Cedarview", "I", True, 1.8, 2, 32, (kb(32), 8, 3),
              (kb(512), 8, 15), None, (5, 4, 30), CEDARVIEW_PORTS),
        _core("Jaguar", "I", True, 1.8, 2, 56, (kb(32), 8, 3),
              (mb(2), 16, 26), None, (4, 3, 20), JAGUAR_PORTS),
        _core("Artificial2", "I", False, 4.0, 8, 168, (kb(32), 2, 5),
              (kb(256), 8, 16), None, (4, 4, 20), BROADWELL_PORTS),
        _core("Artificial3", "I", False, 3.0, 8, 32, (kb(32), 2, 3),
              (kb(512), 16, 24), (mb(8), 32, 52), (4, 4, 20), BROADWELL_PORTS),
        _core("Artificial4", "I", False, 4.0, 2, 192, (kb(64), 8, 3),
              (mb(1), 8, 20), (mb(32), 16, 28), (5, 3, 20), BROADWELL_PORTS),
        _core("Artificial6", "I", False, 3.5, 4, 192, (kb(64), 8, 4),
              (mb(1), 8, 16), (mb(8), 32, 36), (4, 4, 20), BROADWELL_PORTS),
        _core("Artificial7", "I", False, 3.0, 4, 32, (kb(16), 8, 3),
              (kb(512), 16, 12), (mb(32), 32, 28), (2, 7, 69), SILVERMONT_PORTS),
        _core("Artificial10", "I", False, 1.5, 8, 32, (kb(32), 2, 2),
              (kb(256), 16, 24), (mb(64), 32, 36), (5, 4, 30), CEDARVIEW_PORTS),
        _core("Artificial11", "I", False, 3.5, 4, 32, (kb(64), 4, 5),
              (kb(256), 4, 24), None, (5, 4, 30), CEDARVIEW_PORTS),
        # --- Set II --------------------------------------------------------
        _core("Ivybridge", "II", True, 3.4, 4, 168, (kb(32), 8, 4),
              (kb(256), 8, 11), (mb(16), 16, 28), (5, 3, 20), IVYBRIDGE_PORTS),
        _core("Artificial0", "II", False, 2.5, 4, 192, (kb(64), 2, 4),
              (kb(512), 4, 12), None, (5, 3, 20), BROADWELL_PORTS),
        _core("Artificial9", "II", False, 3.5, 8, 192, (kb(16), 4, 5),
              (mb(1), 4, 20), (mb(64), 16, 44), (4, 3, 11), AMD_PORTS),
        # --- Set III -------------------------------------------------------
        _core("Artificial1", "III", False, 1.5, 4, 192, (kb(64), 8, 5),
              (mb(2), 8, 16), None, (4, 3, 11), AMD_PORTS),
        _core("Artificial5", "III", False, 3.5, 2, 32, (kb(32), 4, 5),
              (kb(256), 4, 16), (mb(8), 32, 44), (4, 3, 11), AMD_PORTS),
        _core("Artificial8", "III", False, 3.0, 2, 192, (kb(32), 2, 2),
              (mb(1), 16, 16), (mb(32), 32, 52), (4, 3, 11), AMD_PORTS),
        # --- Set IV --------------------------------------------------------
        _core("K8", "IV", True, 2.0, 3, 24, (kb(64), 2, 4),
              (kb(512), 16, 12), None, (4, 3, 11), AMD_PORTS),
        _core("K10", "IV", True, 2.8, 3, 24, (kb(64), 2, 4),
              (kb(512), 16, 12), (mb(6), 16, 40), (4, 3, 11), AMD_PORTS),
        _core("Silvermont", "IV", True, 2.2, 2, 32, (kb(32), 8, 3),
              (mb(1), 16, 14), None, (2, 7, 69), SILVERMONT_PORTS),
        _core("Skylake", "IV", True, 4.0, 4, 256, (kb(32), 8, 4),
              (kb(256), 4, 12), (mb(8), 16, 34), (4, 4, 20), SKYLAKE_PORTS),
    ]
}


def core_microarch(name: str) -> MicroarchConfig:
    """Return the core preset named *name*."""
    try:
        return CORE_MICROARCHES[name]
    except KeyError:
        raise KeyError(
            f"unknown microarchitecture {name!r}; "
            f"available: {sorted(CORE_MICROARCHES)}"
        ) from None


def core_set(training_set: str) -> list[MicroarchConfig]:
    """All core presets in the given training set ("I", "II", "III" or "IV")."""
    if training_set not in ("I", "II", "III", "IV"):
        raise ValueError("training_set must be one of 'I', 'II', 'III', 'IV'")
    return [c for c in CORE_MICROARCHES.values() if c.training_set == training_set]


def all_core_microarches() -> list[MicroarchConfig]:
    """All 20 core presets, in Table-II order."""
    return list(CORE_MICROARCHES.values())
