"""Microarchitecture configuration knobs (Table II of the paper).

A :class:`MicroarchConfig` carries every knob the paper varies across its 20
core designs — clock period, pipeline width, ROB size, the cache hierarchy,
functional-unit latencies and the issue-port organisation — plus a handful of
derived structure sizes (instruction-queue and load/store-queue capacity,
physical register count) that gem5 derives from its own defaults.

The same dataclass also provides ``feature_vector``, the static
"microarchitecture design parameter" features that stage 1 of the methodology
optionally appends to the performance-counter time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ports import PortOrganization


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size in bytes, associativity and hit latency (cycles)."""

    size: int
    associativity: int
    latency: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size <= 0 or self.associativity <= 0 or self.latency <= 0:
            raise ValueError("cache size, associativity and latency must be positive")
        if self.line_size <= 0 or self.size % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        num_lines = self.size // self.line_size
        if num_lines % self.associativity != 0:
            raise ValueError(
                f"cache with {num_lines} lines cannot be {self.associativity}-way"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.associativity)


def kb(n: int) -> int:
    """Kilobytes to bytes."""
    return n * 1024


def mb(n: int) -> int:
    """Megabytes to bytes."""
    return n * 1024 * 1024


@dataclass(frozen=True)
class MicroarchConfig:
    """Full core configuration (Table II row + Table III row + defaults)."""

    name: str
    training_set: str  # "I", "II", "III" or "IV" (Table II "Set" column)
    is_real: bool
    clock_ghz: float
    width: int
    rob_size: int
    l1: CacheConfig
    l2: CacheConfig
    l3: Optional[CacheConfig]
    fp_latency: int
    mult_latency: int
    div_latency: int
    ports: PortOrganization

    # Structures gem5 sizes from its own defaults; scaled from ROB/width here.
    iq_size: int = 0
    lsq_size: int = 0
    num_phys_regs: int = 0
    bp_table_entries: int = 4096
    btb_entries: int = 1024
    indirect_predictor_sets: int = 256
    memory_latency: int = 200
    fetch_buffer: int = 16

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.width <= 0 or self.rob_size <= 0:
            raise ValueError("width and ROB size must be positive")
        # Fill derived structure sizes if the preset did not specify them.
        if self.iq_size <= 0:
            object.__setattr__(self, "iq_size", max(12, self.rob_size // 3))
        if self.lsq_size <= 0:
            object.__setattr__(self, "lsq_size", max(8, self.rob_size // 3))
        if self.num_phys_regs <= 0:
            object.__setattr__(self, "num_phys_regs", self.rob_size + 48)

    @property
    def clock_period_ps(self) -> float:
        """Clock period in picoseconds."""
        return 1000.0 / self.clock_ghz

    @property
    def has_l3(self) -> bool:
        return self.l3 is not None

    def cache_levels(self) -> list[CacheConfig]:
        """The configured cache levels, L1 first."""
        levels = [self.l1, self.l2]
        if self.l3 is not None:
            levels.append(self.l3)
        return levels

    def feature_vector(self) -> dict[str, float]:
        """Static microarchitecture design-parameter features (Section III-C).

        These are the features stage 1 optionally appends to every time step;
        they are constant over time for a given design.
        """
        features = {
            "uarch.clock_ghz": self.clock_ghz,
            "uarch.width": float(self.width),
            "uarch.rob_size": float(self.rob_size),
            "uarch.iq_size": float(self.iq_size),
            "uarch.lsq_size": float(self.lsq_size),
            "uarch.l1_size_kb": self.l1.size / 1024.0,
            "uarch.l1_assoc": float(self.l1.associativity),
            "uarch.l1_latency": float(self.l1.latency),
            "uarch.l2_size_kb": self.l2.size / 1024.0,
            "uarch.l2_assoc": float(self.l2.associativity),
            "uarch.l2_latency": float(self.l2.latency),
            "uarch.l3_size_kb": (self.l3.size / 1024.0) if self.l3 else 0.0,
            "uarch.l3_assoc": float(self.l3.associativity) if self.l3 else 0.0,
            "uarch.l3_latency": float(self.l3.latency) if self.l3 else 0.0,
            "uarch.fp_latency": float(self.fp_latency),
            "uarch.mult_latency": float(self.mult_latency),
            "uarch.div_latency": float(self.div_latency),
            "uarch.num_ports": float(self.ports.num_ports),
        }
        return features

    def describe(self) -> str:
        """One-line human-readable summary."""
        l3 = (
            f"{self.l3.size // (1024 * 1024)}MB/{self.l3.associativity}-way"
            if self.l3
            else "none"
        )
        return (
            f"{self.name}: {self.clock_ghz}GHz width={self.width} ROB={self.rob_size} "
            f"L1={self.l1.size // 1024}kB L2={self.l2.size // 1024}kB L3={l3}"
        )


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Configuration of the ChampSim-like memory-system simulator.

    Used for the memory-system bug study (Section IV-D): the core is abstracted
    away and only the cache hierarchy, prefetcher and DRAM latency matter.
    """

    name: str
    training_set: str
    is_real: bool
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    dram_latency: int = 200
    prefetcher: str = "spp"
    prefetch_degree: int = 2
    mshr_entries: int = 16
    issue_width: int = 4

    def __post_init__(self) -> None:
        if self.dram_latency <= 0:
            raise ValueError("DRAM latency must be positive")
        if self.prefetcher not in ("none", "next_line", "spp"):
            raise ValueError(f"unknown prefetcher {self.prefetcher!r}")

    def feature_vector(self) -> dict[str, float]:
        """Static design-parameter features for the memory-system study."""
        return {
            "mem.l1d_size_kb": self.l1d.size / 1024.0,
            "mem.l1d_latency": float(self.l1d.latency),
            "mem.l2_size_kb": self.l2.size / 1024.0,
            "mem.l2_latency": float(self.l2.latency),
            "mem.llc_size_kb": self.llc.size / 1024.0,
            "mem.llc_latency": float(self.llc.latency),
            "mem.dram_latency": float(self.dram_latency),
            "mem.prefetch_degree": float(self.prefetch_degree),
        }
