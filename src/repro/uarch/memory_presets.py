"""Memory-hierarchy presets for the ChampSim-like simulator (Section IV-D).

The paper evaluates memory-system bug detection on Intel Broadwell, Haswell,
Skylake, Sandybridge, Ivybridge and Nehalem, AMD K10 and Ryzen 7, plus four
artificial architectures.  It only names the designs, so realistic cache and
latency parameters are used here (documented deviation, see DESIGN.md §6).

The partition into Sets I–IV mirrors the core study: Set I trains the stage-1
models, Sets II/III train stage 2, Set IV is held out for testing.
"""

from __future__ import annotations

from .config import CacheConfig, MemoryHierarchyConfig, kb, mb


def _mem(
    name: str,
    training_set: str,
    is_real: bool,
    l1d: tuple[int, int, int],
    l2: tuple[int, int, int],
    llc: tuple[int, int, int],
    dram_latency: int,
    prefetcher: str = "spp",
    prefetch_degree: int = 2,
) -> MemoryHierarchyConfig:
    """Build one memory-hierarchy preset. Cache tuples: (bytes, assoc, latency)."""
    return MemoryHierarchyConfig(
        name=name,
        training_set=training_set,
        is_real=is_real,
        l1d=CacheConfig(size=l1d[0], associativity=l1d[1], latency=l1d[2]),
        l2=CacheConfig(size=l2[0], associativity=l2[1], latency=l2[2]),
        llc=CacheConfig(size=llc[0], associativity=llc[1], latency=llc[2]),
        dram_latency=dram_latency,
        prefetcher=prefetcher,
        prefetch_degree=prefetch_degree,
    )


#: The 12 memory-system presets, keyed by name.
MEMORY_MICROARCHES: dict[str, MemoryHierarchyConfig] = {
    cfg.name: cfg
    for cfg in [
        # --- Set I ---------------------------------------------------------
        _mem("Broadwell-mem", "I", True, (kb(32), 8, 4), (kb(256), 8, 12),
             (mb(8), 16, 40), 190),
        _mem("Haswell-mem", "I", True, (kb(32), 8, 4), (kb(256), 8, 11),
             (mb(8), 16, 36), 200),
        _mem("Sandybridge-mem", "I", True, (kb(32), 8, 4), (kb(256), 8, 12),
             (mb(8), 16, 30), 210),
        _mem("Nehalem-mem", "I", True, (kb(32), 8, 4), (kb(256), 8, 10),
             (mb(8), 16, 38), 220),
        _mem("MemArtificial1", "I", False, (kb(64), 8, 5), (kb(512), 8, 14),
             (mb(4), 16, 34), 180, prefetcher="spp", prefetch_degree=4),
        _mem("MemArtificial2", "I", False, (kb(16), 4, 3), (kb(256), 4, 12),
             (mb(2), 8, 28), 240, prefetcher="next_line", prefetch_degree=1),
        # --- Set II --------------------------------------------------------
        _mem("Ivybridge-mem", "II", True, (kb(32), 8, 4), (kb(256), 8, 11),
             (mb(8), 16, 32), 205),
        _mem("MemArtificial3", "II", False, (kb(32), 8, 4), (mb(1), 16, 18),
             (mb(16), 16, 44), 170),
        # --- Set III -------------------------------------------------------
        _mem("K10-mem", "III", True, (kb(64), 2, 3), (kb(512), 16, 12),
             (mb(6), 48, 40), 230, prefetcher="next_line"),
        _mem("MemArtificial4", "III", False, (kb(48), 12, 5), (kb(512), 8, 15),
             (mb(4), 16, 38), 200),
        # --- Set IV --------------------------------------------------------
        _mem("Skylake-mem", "IV", True, (kb(32), 8, 4), (kb(256), 4, 12),
             (mb(8), 16, 34), 195),
        _mem("Ryzen7-mem", "IV", True, (kb(32), 8, 4), (kb(512), 8, 12),
             (mb(16), 16, 35), 215),
    ]
}


def memory_microarch(name: str) -> MemoryHierarchyConfig:
    """Return the memory-hierarchy preset named *name*."""
    try:
        return MEMORY_MICROARCHES[name]
    except KeyError:
        raise KeyError(
            f"unknown memory hierarchy {name!r}; "
            f"available: {sorted(MEMORY_MICROARCHES)}"
        ) from None


def memory_set(training_set: str) -> list[MemoryHierarchyConfig]:
    """All memory presets in the given training set."""
    if training_set not in ("I", "II", "III", "IV"):
        raise ValueError("training_set must be one of 'I', 'II', 'III', 'IV'")
    return [c for c in MEMORY_MICROARCHES.values() if c.training_set == training_set]


def all_memory_microarches() -> list[MemoryHierarchyConfig]:
    """All 12 memory-hierarchy presets."""
    return list(MEMORY_MICROARCHES.values())
