"""Microarchitecture configuration: Table II knobs, Table III ports, presets."""

from .config import CacheConfig, MemoryHierarchyConfig, MicroarchConfig, kb, mb
from .memory_presets import (
    MEMORY_MICROARCHES,
    all_memory_microarches,
    memory_microarch,
    memory_set,
)
from .ports import CLASS_TO_UNITS, Port, PortOrganization, UnitType, make_ports
from .presets import (
    CORE_MICROARCHES,
    all_core_microarches,
    core_microarch,
    core_set,
)

__all__ = [
    "CacheConfig",
    "MicroarchConfig",
    "MemoryHierarchyConfig",
    "kb",
    "mb",
    "UnitType",
    "Port",
    "PortOrganization",
    "CLASS_TO_UNITS",
    "make_ports",
    "CORE_MICROARCHES",
    "core_microarch",
    "core_set",
    "all_core_microarches",
    "MEMORY_MICROARCHES",
    "memory_microarch",
    "memory_set",
    "all_memory_microarches",
]
