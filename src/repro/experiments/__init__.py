"""Reproduction harness: one module per table/figure of the paper's evaluation."""

from .common import (
    SCALES,
    ExperimentContext,
    ExperimentResult,
    ExperimentScale,
    get_scale,
    render_table,
)

__all__ = [
    "ExperimentScale",
    "ExperimentContext",
    "ExperimentResult",
    "SCALES",
    "get_scale",
    "render_table",
]
