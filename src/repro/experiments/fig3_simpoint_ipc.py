"""Figure 3: per-SimPoint IPC of 403.gcc, bug-free vs Bug 1, on Skylake.

Shows why probe-level analysis beats whole-application analysis: Bug 1 ("if
xor is oldest in the IQ, issue only xor") barely moves whole-program IPC but
sharply degrades the xor-heavy SimPoint.
"""

from __future__ import annotations

import numpy as np

from ..bugs.registry import figure1_bug1
from ..uarch.presets import core_microarch
from ..workloads.isa import Opcode
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig3"
TITLE = "IPC by SimPoint for 403.gcc, bug-free vs Bug 1 (Figure 3)"


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the per-SimPoint IPC comparison of Figure 3."""
    context = context or ExperimentContext(get_scale(scale))
    skylake = core_microarch("Skylake")
    bug = figure1_bug1()
    if not context.probes:
        raise RuntimeError("no probes available for figure 3")
    # The paper's running example is 403.gcc; every synthetic scale includes
    # it.  Ingested trace directories may not, so fall back to the first
    # benchmark present rather than refusing to run on external workloads.
    benchmark = "403.gcc"
    if not any(p.benchmark == benchmark for p in context.probes):
        benchmark = context.probes[0].benchmark
    probes = [p for p in context.probes if p.benchmark == benchmark]

    context.cache.warm(
        (probe, skylake, b) for probe in probes for b in (None, bug)
    )
    rows: list[dict[str, object]] = []
    clean_weighted = 0.0
    buggy_weighted = 0.0
    total_weight = 0.0
    for probe in probes:
        clean = context.cache.get(probe, skylake, None)
        buggy = context.cache.get(probe, skylake, bug)
        relative = buggy.ipc / clean.ipc if clean.ipc > 0 else 0.0
        rows.append(
            {
                "SimPoint": probe.name,
                "xor fraction": probe.simpoint.opcode_fraction(Opcode.XOR),
                "IPC (bug-free)": clean.ipc,
                "IPC (Bug 1)": buggy.ipc,
                "Bug 1 / bug-free": relative,
            }
        )
        clean_weighted += clean.ipc * probe.weight
        buggy_weighted += buggy.ipc * probe.weight
        total_weight += probe.weight

    whole_program = buggy_weighted / clean_weighted if clean_weighted > 0 else 0.0
    worst = min((row["Bug 1 / bug-free"] for row in rows), default=1.0)
    rows.append(
        {
            "SimPoint": f"{benchmark} (whole program)",
            "xor fraction": float(
                np.mean([row["xor fraction"] for row in rows]) if rows else 0.0
            ),
            "IPC (bug-free)": clean_weighted / total_weight if total_weight else 0.0,
            "IPC (Bug 1)": buggy_weighted / total_weight if total_weight else 0.0,
            "Bug 1 / bug-free": whole_program,
        }
    )
    notes = (
        f"Whole-program impact {100 * (1 - whole_program):.1f}% vs worst SimPoint impact "
        f"{100 * (1 - worst):.1f}% — the paper reports <1% whole-program vs >20% on its "
        "xor-heavy SimPoint #12."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
