"""Figure 8: ROC curves per bug type for the GBT-based two-stage detector."""

from __future__ import annotations

import numpy as np

from ..detect.detector import TwoStageDetector
from ..detect.metrics import roc_auc, roc_curve
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig8"
TITLE = "ROC curves per bug type, GBT stage 1 (Figure 8)"

#: Bug types highlighted by the paper's Figure 8 (subset to what the scale enables).
PREFERRED_TYPES = (
    "Serialized",
    "IssueXOnlyIfOldest",
    "IfXUsesRegNDelayT",
    "IfOldestIssueOnlyX",
)


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the per-bug-type ROC data of Figure 8."""
    context = context or ExperimentContext(get_scale(scale))
    setup = context.detection_setup()
    detector = TwoStageDetector(setup)
    detector.prepare()

    available = list(setup.bug_suite)
    chosen = [t for t in PREFERRED_TYPES if t in available] or available[:4]

    rows: list[dict[str, object]] = []
    curve_dump: list[str] = []
    for bug_type in chosen:
        fold = detector.evaluate_fold(bug_type)
        labels = np.asarray(fold.labels)
        scores = np.asarray(fold.scores)
        fpr, tpr = roc_curve(labels, scores)
        rows.append(
            {
                "Bug type": bug_type,
                "ROC AUC": roc_auc(labels, scores),
                "TPR @ 0 FPR": float(max(tpr[fpr == 0.0], default=0.0)),
                "Positives": int(labels.sum()),
                "Negatives": int((~labels).sum()),
            }
        )
        curve_dump.append(
            f"{bug_type}: FPR=" + ",".join(f"{v:.2f}" for v in fpr)
            + " TPR=" + ",".join(f"{v:.2f}" for v in tpr)
        )

    notes = (
        "Difficult bug types have lower ROC AUC; high-impact types are detected "
        "without false positives (paper).  Full curves:\n  " + "\n  ".join(curve_dump)
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
