"""Figure 6: GBT IPC inference on bug-free vs buggy microarchitectures.

For two probes on Skylake, compares the Equation-(1) inference error of the
default (GBT) stage-1 model on the bug-free design against the same design
with an injected instruction-scheduling bug: the error should increase sharply
under the bug, which is the signal stage 2 consumes.
"""

from __future__ import annotations

from ..bugs.registry import figure1_bug1, figure1_bug2
from ..detect.detector import TwoStageDetector
from ..uarch.presets import core_microarch
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig6"
TITLE = "IPC inference error, bug-free vs buggy designs (Figure 6)"

#: Number of probes reported (the paper shows two SimPoints).
MAX_PROBES = 4


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the Figure-6 bug-free vs buggy error comparison."""
    context = context or ExperimentContext(get_scale(scale))
    skylake = core_microarch("Skylake")
    setup = context.detection_setup()
    detector = TwoStageDetector(setup)
    detector.prepare()

    bugs = [figure1_bug2(), figure1_bug1()]
    setup.cache.warm(
        (probe, skylake, bug)
        for probe in setup.probes[:MAX_PROBES]
        for bug in [None, *bugs]
    )
    rows: list[dict[str, object]] = []
    for probe in setup.probes[:MAX_PROBES]:
        model = detector.models[probe.name]
        features = skylake.feature_vector()
        clean_error = model.inference_error(
            setup.cache.get(probe, skylake, None).series, features
        )
        row: dict[str, object] = {"Probe": probe.name, "Error (bug-free)": clean_error}
        for bug in bugs:
            error = model.inference_error(
                setup.cache.get(probe, skylake, bug).series, features
            )
            row[f"Error ({bug.name})"] = error
            row[f"Ratio ({bug.name})"] = error / clean_error if clean_error > 0 else 0.0
        rows.append(row)

    notes = (
        "The paper's Figure 6 shows GBT-250 tracking bug-free IPC closely while the "
        "error drastically increases on buggy designs; the ratio columns quantify that."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
