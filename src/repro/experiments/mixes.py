"""Per-mix detection scorecard over the multi-program workload mixes.

Not a paper table: this experiment widens the memory study's workload
universe with the MPKI-ordered mixes of :mod:`repro.workloads.mixes`.  For
every mix it (a) builds the interleaved stream twice and asserts the content
digests agree — the determinism contract the store relies on — (b) extracts
SimPoint probes from the mix, (c) measures aggregate LLC MPKI on the
reference memory design, and (d) runs the unchanged two-stage detection
methodology with the mix probes standing in for the memory-study probes.
All simulation flows through the shared context engine/caches, so a
``--store`` replay performs zero new simulations.

When the context has a ``--trace-dir``, an extra ``mix-ingest`` row mixes up
to four of the discovered on-disk traces through the same path.

Opt-in: excluded from default ``run_all`` sweeps; select it with
``--mixes`` or ``--only mixes``.
"""

from __future__ import annotations

import numpy as np

from ..detect.detector import TwoStageDetector
from ..detect.probe import Probe, build_mix_probes
from ..simpoint.simpoint import SimPoint
from ..uarch.memory_presets import memory_microarch
from ..workloads.ingest import discover_traces
from ..workloads.mixes import DEFAULT_MIXES, MixSpec, build_mix
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "mixes"
TITLE = "Multi-program mix detection scorecard (mix1-mix7)"

#: Reference design MPKI is measured on (the Set IV running example).
REFERENCE_DESIGN = "Skylake-mem"


def _full_trace_probe(mix) -> Probe:
    """The whole mix as one weight-1.0 probe (exact, not SimPoint-sampled)."""
    bbv = np.bincount(
        [uop.block_id for uop in mix.uops], minlength=mix.num_blocks
    ).astype(float)
    simpoint = SimPoint(
        benchmark=mix.name, index=99, interval_index=0, weight=1.0,
        trace=mix.uops, bbv=bbv,
    )
    return Probe(simpoint=simpoint)


def _mix_llc_mpki(cache, mix, design) -> float:
    """LLC misses per kilo-instruction of the full mix stream on *design*.

    Measured through the shared simulation cache/engine, so the result is
    content-addressed in any attached store and replays without executing.
    """
    probe = _full_trace_probe(mix)
    cache.warm([(probe, design, None)])
    counters = cache.get(probe, design).series.counters
    misses = float(counters["mem.llc.misses"].sum())
    instructions = float(counters["mem.instructions"].sum())
    return 1000.0 * misses / max(1.0, instructions)


def _mix_specs(context: ExperimentContext) -> list[MixSpec]:
    """The default mixes, plus a mix of ingested traces when available."""
    specs = list(DEFAULT_MIXES)
    if context.trace_dir is not None:
        names = tuple(
            ingested.name
            for ingested in discover_traces(context.trace_dir, context.trace_format)
        )[:4]
        if names:
            specs.append(
                MixSpec("mix-ingest", names, "discovered on-disk traces interleaved")
            )
    return specs


def run_mix_scorecard(
    context: ExperimentContext, specs: list[MixSpec] | None = None
) -> ExperimentResult:
    """Build, measure and run detection on every mix in *specs*."""
    scale = context.scale
    specs = _mix_specs(context) if specs is None else list(specs)
    reference = memory_microarch(REFERENCE_DESIGN)
    rows: list[dict[str, object]] = []
    for index, spec in enumerate(specs):
        mix = build_mix(
            spec,
            instructions=scale.mix_instructions,
            chunk=scale.mix_chunk,
            seed=scale.seed,
            trace_dir=context.trace_dir,
        )
        rebuilt = build_mix(
            spec,
            instructions=scale.mix_instructions,
            chunk=scale.mix_chunk,
            seed=scale.seed,
            trace_dir=context.trace_dir,
        )
        if mix.digest != rebuilt.digest:  # pragma: no cover - determinism guard
            raise AssertionError(
                f"mix {spec.name!r} is not deterministic: "
                f"{mix.digest} != {rebuilt.digest}"
            )
        probes = build_mix_probes(
            [mix],
            interval_size=max(1, scale.mix_instructions // 4),
            max_simpoints_per_mix=scale.mix_max_simpoints,
            seed=scale.seed + 300 + index,
        )
        mpki = _mix_llc_mpki(context.memory_cache, mix, reference)
        setup = context.memory_detection_setup(probes=probes)
        detection = TwoStageDetector(setup).evaluate()
        rows.append(
            {
                "Mix": mix.name,
                "Components": "+".join(c.name for c in mix.components),
                "Instr": len(mix),
                "Probes": len(probes),
                "LLC MPKI": mpki,
                "FPR": detection.overall.fpr,
                "TPR": detection.overall.tpr,
                "Precision": detection.overall.precision,
            }
        )
    notes = (
        "Mixes are ordered by aggregate memory intensity; LLC MPKI "
        f"(on {REFERENCE_DESIGN}) should rise from mix1 to mix7.  Detection "
        "quality should hold across the intensity range."
    )
    summary = (
        f"mixes={len(rows)} chunk={scale.mix_chunk} "
        f"instructions={scale.mix_instructions} digests=stable"
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary=summary)


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Run the mix scorecard over the default mixes (plus any ingested mix)."""
    context = context or ExperimentContext(get_scale(scale))
    return run_mix_scorecard(context)
