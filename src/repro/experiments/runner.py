"""Run every table/figure experiment and render a combined report.

Usage::

    python -m repro.experiments.runner --scale smoke
    python -m repro.experiments.runner --scale small --only tab5 tab7
    python -m repro.experiments.runner --scale small --jobs 8 --store .repro-store
    python -m repro.experiments.runner --scale small --backend subprocess:4

``--jobs N`` shards the underlying simulations across N local worker
processes (sugar for ``--backend local:N``); ``--backend SPEC`` selects any
execution backend — ``serial``, ``local:N``, ``subprocess:N`` (local
``repro-worker`` processes over the stdio frame protocol) or
``ssh://hostA:4,hostB:4`` (the same protocol over ssh; see
``docs/RUNTIME.md``).  ``--store PATH`` persists every simulated counter
series keyed by content
hash, so a repeat invocation (same scale/experiments) performs zero new
simulations.  ``--trace-dir DIR [--trace-format champsim|gem5|k6]`` swaps the
synthetic workloads for on-disk traces (see ``docs/TRACES.md``): probes are
SimPoint-extracted from the ingested streams and flow through the same
engine, store and detection path.  ``--mixes`` adds the multi-program mix
scorecard (opt-in; also reachable as ``--only mixes``), which renders an
extra ``[mixes]`` bracket line at the end of the report.  The installed
``repro-experiments`` console script is an alias for this module.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

from . import (
    fig1_speedup,
    fig3_simpoint_ipc,
    fig4_severity,
    fig5_traces,
    fig6_bug_vs_bugfree,
    fig8_roc,
    fig9_probes,
    fig10_counters,
    fig11_timestep,
    fig12_arch_features,
    fig13_training_archs,
    mixes as mixes_experiment,
    table4_ipc_modeling,
    table5_detection,
    table6_window,
    table7_memory,
)
from .common import ExperimentContext, ExperimentResult, get_scale

#: All experiments in paper order: id -> run callable.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_speedup.run,
    "fig3": fig3_simpoint_ipc.run,
    "fig4": fig4_severity.run,
    "tab4": table4_ipc_modeling.run,
    "fig5": fig5_traces.run,
    "fig6": fig6_bug_vs_bugfree.run,
    "tab5": table5_detection.run,
    "fig8": fig8_roc.run,
    "fig9": fig9_probes.run,
    "fig10": fig10_counters.run,
    "fig11": fig11_timestep.run,
    "tab6": table6_window.run,
    "fig12": fig12_arch_features.run,
    "fig13": fig13_training_archs.run,
    "tab7": table7_memory.run,
    "mixes": mixes_experiment.run,
}

#: Experiments excluded from default sweeps; run via --only or their flag.
OPT_IN = frozenset({"mixes"})


def run_all(
    scale: str = "smoke",
    only: list[str] | None = None,
    context: ExperimentContext | None = None,
    jobs: int | None = None,
    store: str | None = None,
    trace_dir: str | None = None,
    trace_format: str | None = None,
    backend: str | None = None,
    mixes: bool = False,
) -> list[ExperimentResult]:
    """Run the selected experiments, sharing one context, and return results.

    *jobs*, *store*, *trace_dir*, *trace_format* and *backend* configure the
    implicitly created context (see :class:`ExperimentContext`); they are
    ignored when an explicit *context* is passed.  Opt-in experiments (the
    mix scorecard) only run when named in *only* or enabled by *mixes*.
    """
    if not only:
        chosen = [e for e in EXPERIMENTS if e not in OPT_IN or (mixes and e == "mixes")]
    else:
        chosen = [e for e in EXPERIMENTS if e in set(only)]
        if mixes and "mixes" not in chosen:
            chosen.append("mixes")
    unknown = set(only or []) - set(EXPERIMENTS)
    if unknown:
        raise KeyError(f"unknown experiment ids: {sorted(unknown)}")
    context = context or ExperimentContext(
        get_scale(scale), jobs=jobs, store_path=store,
        trace_dir=trace_dir, trace_format=trace_format, backend=backend,
    )
    results = []
    for experiment_id in chosen:
        results.append(EXPERIMENTS[experiment_id](scale=scale, context=context))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "full"])
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (default: all)")
    parser.add_argument("--output", default=None,
                        help="optional path to write the combined report")
    parser.add_argument("--jobs", type=int, default=None,
                        help="simulation worker processes, sugar for "
                             "--backend local:N "
                             "(default: $REPRO_JOBS or 1 = serial)")
    parser.add_argument("--backend", default=None,
                        help="execution backend spec: serial, local:N, "
                             "subprocess:N or ssh://host:N,host2:N "
                             "(default: $REPRO_BACKEND; see docs/RUNTIME.md)")
    parser.add_argument("--store", default=None,
                        help="directory of a persistent simulation result store; "
                             "repeat runs against it never re-simulate")
    parser.add_argument("--trace-dir", default=None,
                        help="directory of on-disk traces; probes are extracted "
                             "from these instead of from synthetic workloads")
    parser.add_argument("--trace-format", default=None,
                        choices=["champsim", "gem5", "k6"],
                        help="restrict --trace-dir ingestion to one format "
                             "(default: every recognised trace file)")
    parser.add_argument("--mixes", action="store_true",
                        help="also run the multi-program mix scorecard "
                             "(opt-in; equivalent to adding 'mixes' to --only)")
    args = parser.parse_args(argv)
    if args.trace_format is not None and args.trace_dir is None:
        parser.error("--trace-format requires --trace-dir")
    if args.backend is not None and args.jobs is not None:
        parser.error("--jobs and --backend are mutually exclusive "
                     "(--jobs N is sugar for --backend local:N)")

    start = time.time()
    context = ExperimentContext(
        get_scale(args.scale), jobs=args.jobs, store_path=args.store,
        trace_dir=args.trace_dir, trace_format=args.trace_format,
        backend=args.backend,
    )
    results = run_all(scale=args.scale, only=args.only, context=context,
                      mixes=args.mixes)
    report = "\n\n".join(result.to_text() for result in results)
    report += f"\n\nTotal runtime: {time.time() - start:.1f}s at scale '{args.scale}'\n"
    for result in results:
        if result.summary:
            report += f"[{result.experiment_id}] {result.summary}\n"
    if args.trace_dir is not None:
        # Report only probe sets the experiments actually built — forcing a
        # build here would run SimPoint extraction just to print a count.
        built = [
            f"{label}={len(probes)}"
            for label, probes in (
                ("probes", context._probes),
                ("memory_probes", context._memory_probes),
            )
            if probes is not None
        ]
        report += (
            f"[workloads] source=ingested trace_dir={args.trace_dir} "
            f"format={args.trace_format or 'auto'} {' '.join(built) or 'probes=0'}\n"
        )
    stats = context.engine.stats
    report += (
        f"[runtime] backend={context.engine.backend.spec} "
        f"jobs={context.engine.jobs} simulations={stats.jobs} "
        f"executed={stats.executed} store_hits={stats.store_hits} "
        f"batches={stats.batches}\n"
        f"[scheduler] {context.engine.scheduler} chunks={stats.chunks} "
        f"pool_creates={stats.pool_creates} pool_reuses={stats.pool_reuses} "
        f"traces_shipped={stats.traces_shipped} trace_deltas={stats.trace_deltas} "
        f"straggler_jobs={stats.straggler_jobs} "
        f"workers={stats.workers_spawned}/{stats.workers_lost}lost"
        f"/{stats.workers_respawned}respawned "
        f"chunks_requeued={stats.chunks_requeued}\n"
    )
    context.close()
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
