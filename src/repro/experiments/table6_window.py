"""Table VI: effect of the stage-1 input window size.

Re-trains the default stage-1 engine with window sizes 1-4 (the number of
consecutive time steps fed to the model) and reports detection TPR/FPR.  The
paper finds window size 1 best because its time step is already large.
"""

from __future__ import annotations

from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "tab6"
TITLE = "Window size effect (Table VI)"

WINDOW_SIZES = (1, 2, 3, 4)


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the window-size sweep of Table VI."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []
    for window in WINDOW_SIZES:
        setup = context.detection_setup(window=window)
        detector = TwoStageDetector(setup)
        result = detector.evaluate()
        rows.append(
            {
                "Window Size": window,
                "TPR": result.overall.tpr,
                "FPR": result.overall.fpr,
            }
        )
    notes = "Paper (GBT-250): TPR 0.84/0.48/0.32/0.48 and FPR 0.00/0.21/0.00/0.39 for windows 1-4."
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
