"""Shared plumbing for the table/figure reproduction experiments.

Every experiment module exposes ``run(scale, context) -> ExperimentResult``.
The :class:`ExperimentScale` controls how much work is done (number of
benchmarks, probe length, microarchitectures, bug variants, ML engines and
training budget); ``smoke`` is sized for CI and the pytest benchmarks,
``small`` for a laptop run, ``full`` approaches the paper's configuration.
An :class:`ExperimentContext` owns the probe set and the simulation caches so
that experiments sharing data do not repeat simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from ..bugs.memory_bugs import memory_bug_suite
from ..bugs.registry import core_bug_suite
from ..detect.dataset import MemorySimulationCache, SimulationCache
from ..detect.detector import DetectionSetup
from ..detect.probe import (
    IngestedProbeSource,
    Probe,
    SyntheticProbeSource,
)
from ..detect.stage1 import ProbeModelConfig
from ..runtime import JobEngine, ResultStore
from ..uarch.memory_presets import memory_set
from ..uarch.presets import core_set


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs bounding the cost of an experiment run."""

    name: str
    benchmarks: tuple[str, ...]
    instructions_per_benchmark: int
    interval_size: int
    max_simpoints: int
    step_cycles: int
    bug_variants_per_type: int
    bug_types: tuple[str, ...] | None  # None = all 14 types
    engines: tuple[str, ...]
    default_engine: str
    nn_max_epochs: int
    nn_patience: int
    train_arch_limit: int | None
    stage2_arch_limit: int | None
    test_arch_limit: int | None
    memory_benchmarks: tuple[str, ...]
    memory_instructions: int
    memory_step_instructions: int
    seed: int = 7
    # Multi-program mix scorecard knobs (the ``mixes`` experiment).
    mix_instructions: int = 12_000
    mix_chunk: int = 64
    mix_max_simpoints: int = 2


SMOKE = ExperimentScale(
    name="smoke",
    benchmarks=("403.gcc", "458.sjeng"),
    instructions_per_benchmark=15_000,
    interval_size=3_000,
    max_simpoints=3,
    step_cycles=512,
    bug_variants_per_type=1,
    bug_types=(
        "Serialized",
        "IfOldestIssueOnlyX",
        "MispredictDelay",
        "L2LatencyIncrease",
        "RegisterReduction",
    ),
    engines=("Lasso", "GBT-150", "1-MLP-500"),
    default_engine="GBT-150",
    nn_max_epochs=40,
    nn_patience=15,
    train_arch_limit=None,
    stage2_arch_limit=None,
    test_arch_limit=None,
    memory_benchmarks=("403.gcc", "426.mcf"),
    memory_instructions=40_000,
    memory_step_instructions=2_000,
)

SMALL = ExperimentScale(
    name="small",
    benchmarks=("400.perlbench", "403.gcc", "433.milc", "458.sjeng", "462.libquantum"),
    instructions_per_benchmark=48_000,
    interval_size=6_000,
    max_simpoints=5,
    step_cycles=512,
    bug_variants_per_type=2,
    bug_types=None,
    engines=("Lasso", "1-LSTM-150", "1-CNN-150", "1-MLP-500", "GBT-150", "GBT-250"),
    default_engine="GBT-250",
    nn_max_epochs=120,
    nn_patience=40,
    train_arch_limit=None,
    stage2_arch_limit=None,
    test_arch_limit=None,
    memory_benchmarks=("403.gcc", "426.mcf", "450.soplex", "462.libquantum"),
    memory_instructions=80_000,
    memory_step_instructions=2_000,
    mix_instructions=24_000,
    mix_chunk=64,
    mix_max_simpoints=3,
)

FULL = ExperimentScale(
    name="full",
    benchmarks=(
        "400.perlbench", "401.bzip2", "403.gcc", "426.mcf", "433.milc",
        "436.cactusADM", "444.namd", "450.soplex", "458.sjeng", "462.libquantum",
    ),
    instructions_per_benchmark=200_000,
    interval_size=10_000,
    max_simpoints=10,
    step_cycles=1_024,
    bug_variants_per_type=3,
    bug_types=None,
    engines=(
        "Lasso", "1-LSTM-150", "1-LSTM-250", "1-LSTM-500", "4-LSTM-150",
        "1-CNN-150", "4-CNN-150", "1-MLP-500", "1-MLP-2500", "4-MLP-500",
        "GBT-150", "GBT-250",
    ),
    default_engine="GBT-250",
    nn_max_epochs=300,
    nn_patience=100,
    train_arch_limit=None,
    stage2_arch_limit=None,
    test_arch_limit=None,
    memory_benchmarks=(
        "400.perlbench", "403.gcc", "426.mcf", "433.milc", "450.soplex",
        "458.sjeng", "462.libquantum",
    ),
    memory_instructions=200_000,
    memory_step_instructions=4_000,
    mix_instructions=96_000,
    mix_chunk=128,
    mix_max_simpoints=4,
)

SCALES: dict[str, ExperimentScale] = {"smoke": SMOKE, "small": SMALL, "full": FULL}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale name or pass an explicit scale through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}") from None


@dataclass
class ExperimentResult:
    """Uniform result container: one table of rows plus free-form notes."""

    experiment_id: str
    title: str
    rows: list[dict[str, object]]
    notes: str = ""
    #: Optional machine-greppable one-liner the runner renders as a
    #: ``[<experiment_id>] ...`` bracket line at the end of the report.
    summary: str = ""

    def to_text(self) -> str:
        """Render the result as a fixed-width text table."""
        return f"== {self.experiment_id}: {self.title} ==\n" + render_table(self.rows) + (
            f"\n{self.notes}\n" if self.notes else ""
        )


def render_table(rows: list[dict[str, object]]) -> str:
    """Format a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    formatted = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in formatted)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in formatted
    ]
    return "\n".join([header, separator, *body])


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class ExperimentContext:
    """Shared probes, caches, design sets and simulation runtime for one scale.

    Parameters
    ----------
    scale:
        Scale name or explicit :class:`ExperimentScale`.
    jobs:
        Simulation worker processes — sugar for the ``local:N`` execution
        backend (``1`` = serial).  ``None`` defers to *backend*, then to
        the ``REPRO_BACKEND`` / ``REPRO_JOBS`` environment variables.
    backend:
        Execution backend spec string (``"serial"``, ``"local:8"``,
        ``"subprocess:4"``, ``"ssh://hostA:4,hostB:4"`` — see
        ``docs/RUNTIME.md``).  Mutually exclusive with *jobs*.
    store_path:
        Optional directory for a persistent :class:`~repro.runtime.ResultStore`;
        repeated runs against the same store never re-simulate.
    progress:
        Optional ``callback(done, total)`` forwarded to the job engine.
    trace_dir:
        Optional directory of on-disk traces (ChampSim/gem5-style, see
        ``docs/TRACES.md``).  When given, the context's probes are extracted
        from those traces instead of from synthetic workloads; everything
        else (caches, engine, store keys) is unchanged.
    trace_format:
        Optional format restriction for *trace_dir* (``"champsim"`` /
        ``"gem5"`` / ``"k6"``; default: ingest every recognised trace file).
    """

    def __init__(
        self,
        scale: str | ExperimentScale = "smoke",
        jobs: int | None = None,
        store_path: str | None = None,
        progress: Callable[[int, int], None] | None = None,
        trace_dir: str | None = None,
        trace_format: str | None = None,
        backend: str | None = None,
    ) -> None:
        self.scale = get_scale(scale)
        self.trace_dir = trace_dir
        self.trace_format = trace_format
        self._probes: list[Probe] | None = None
        self._memory_probes: list[Probe] | None = None
        self.store = ResultStore(store_path) if store_path else None
        self.engine = JobEngine(
            jobs=jobs, backend=backend, store=self.store, progress=progress
        )
        self.jobs = self.engine.jobs
        self.cache = SimulationCache(
            step_cycles=self.scale.step_cycles, engine=self.engine
        )
        self.memory_cache = MemorySimulationCache(
            step_instructions=self.scale.memory_step_instructions,
            target_metric="amat",
            engine=self.engine,
        )

    def close(self) -> None:
        """Shut down the shared engine's persistent worker pool."""
        self.engine.close()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- probes ----------------------------------------------------------------

    @property
    def probe_source(self):
        """Where this context's core-study probes come from."""
        if self.trace_dir is not None:
            return IngestedProbeSource(
                trace_dir=self.trace_dir,
                trace_format=self.trace_format,
                interval_size=self.scale.interval_size,
                max_simpoints_per_trace=self.scale.max_simpoints,
                seed=self.scale.seed,
            )
        return SyntheticProbeSource(
            benchmarks=tuple(self.scale.benchmarks),
            instructions_per_benchmark=self.scale.instructions_per_benchmark,
            interval_size=self.scale.interval_size,
            max_simpoints_per_benchmark=self.scale.max_simpoints,
            seed=self.scale.seed,
        )

    @property
    def memory_probe_source(self):
        """Where this context's memory-study probes come from."""
        if self.trace_dir is not None:
            return IngestedProbeSource(
                trace_dir=self.trace_dir,
                trace_format=self.trace_format,
                interval_size=self.scale.memory_instructions // 3,
                max_simpoints_per_trace=3,
                seed=self.scale.seed + 100,
            )
        return SyntheticProbeSource(
            benchmarks=tuple(self.scale.memory_benchmarks),
            instructions_per_benchmark=self.scale.memory_instructions,
            interval_size=self.scale.memory_instructions // 3,
            max_simpoints_per_benchmark=3,
            seed=self.scale.seed + 100,
        )

    @property
    def probes(self) -> list[Probe]:
        if self._probes is None:
            self._probes = self.probe_source.build()
        return self._probes

    @property
    def memory_probes(self) -> list[Probe]:
        if self._memory_probes is None:
            self._memory_probes = self.memory_probe_source.build()
        return self._memory_probes

    # -- design sets --------------------------------------------------------------

    def core_designs(self) -> dict[str, list]:
        """Sets I-IV of core designs, truncated according to the scale."""
        scale = self.scale
        sets = {name: core_set(name) for name in ("I", "II", "III", "IV")}
        if scale.train_arch_limit is not None:
            sets["I"] = sets["I"][: scale.train_arch_limit]
        if scale.stage2_arch_limit is not None:
            combined = sets["II"] + sets["III"]
            kept = combined[: scale.stage2_arch_limit]
            sets["II"] = [c for c in sets["II"] if c in kept] or sets["II"][:1]
            sets["III"] = [c for c in sets["III"] if c in kept]
        if scale.test_arch_limit is not None:
            # Keep Skylake (the paper's running example) in the test set.
            test = sets["IV"]
            skylake = [c for c in test if c.name == "Skylake"]
            others = [c for c in test if c.name != "Skylake"]
            sets["IV"] = (skylake + others)[: scale.test_arch_limit]
        return sets

    def memory_designs(self) -> dict[str, list]:
        return {name: memory_set(name) for name in ("I", "II", "III", "IV")}

    # -- bug suites ------------------------------------------------------------------

    def core_bugs(self) -> dict[str, list]:
        suite = core_bug_suite(max_variants_per_type=self.scale.bug_variants_per_type)
        if self.scale.bug_types is not None:
            suite = {k: v for k, v in suite.items() if k in self.scale.bug_types}
        return suite

    def memory_bugs(self) -> dict[str, list]:
        return memory_bug_suite(max_variants_per_type=self.scale.bug_variants_per_type)

    # -- detector setup -----------------------------------------------------------------

    def model_config(self, engine: str | None = None, **overrides) -> ProbeModelConfig:
        params = dict(
            engine=engine or self.scale.default_engine,
            window=1,
            use_arch_features=True,
            max_epochs=self.scale.nn_max_epochs,
            patience=self.scale.nn_patience,
            seed=self.scale.seed,
        )
        params.update(overrides)
        return ProbeModelConfig(**params)

    def detection_setup(
        self,
        engine: str | None = None,
        probes: list[Probe] | None = None,
        cache: SimulationCache | None = None,
        counter_selection: str = "auto",
        presumed_bugfree_bug=None,
        **model_overrides,
    ) -> DetectionSetup:
        """Standard core-study :class:`DetectionSetup` for this scale."""
        sets = self.core_designs()
        chosen_probes = probes if probes is not None else self.probes
        return DetectionSetup(
            probes=[Probe(simpoint=p.simpoint, counters=list(p.counters))
                    for p in chosen_probes],
            train_designs=sets["I"],
            val_designs=sets["II"],
            stage2_designs=sets["II"] + sets["III"],
            test_designs=sets["IV"],
            bug_suite=self.core_bugs(),
            cache=cache if cache is not None else self.cache,
            model_config=self.model_config(engine, **model_overrides),
            counter_selection=counter_selection,
            presumed_bugfree_bug=presumed_bugfree_bug,
        )

    def memory_detection_setup(
        self,
        engine: str | None = None,
        target_metric: str = "amat",
        probes: list[Probe] | None = None,
    ) -> DetectionSetup:
        """Memory-study :class:`DetectionSetup` (Section IV-D / Table VII).

        *probes* overrides the context's memory probes — used by the mix
        scorecard to evaluate detection on per-mix probe sets while sharing
        this context's caches and engine.
        """
        sets = self.memory_designs()
        chosen_probes = probes if probes is not None else self.memory_probes
        if target_metric == "amat":
            cache = self.memory_cache
        else:
            cache = MemorySimulationCache(
                step_instructions=self.scale.memory_step_instructions,
                target_metric="ipc",
                engine=self.engine,
            )
        return DetectionSetup(
            probes=[Probe(simpoint=p.simpoint) for p in chosen_probes],
            train_designs=sets["I"],
            val_designs=sets["II"],
            stage2_designs=sets["II"] + sets["III"],
            test_designs=sets["IV"],
            bug_suite=self.memory_bugs(),
            cache=cache,
            model_config=self.model_config(engine),
            counter_selection="auto",
            target_higher_is_better=(target_metric == "ipc"),
        )
