"""Figure 1: Skylake vs Ivybridge speedups with and without performance bugs.

For each benchmark, whole-application performance is estimated as the
SimPoint-weighted average of per-probe performance (IPC x clock frequency) and
normalised to bug-free Ivybridge, for four configurations: Ivybridge bug-free,
Skylake bug-free, Skylake with Bug 1 (xor issues alone when oldest) and
Skylake with Bug 2 (sub marked serialising).
"""

from __future__ import annotations

import numpy as np

from ..bugs.registry import figure1_bug1, figure1_bug2
from ..uarch.presets import core_microarch
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig1"
TITLE = "Speedup of Skylake vs Ivybridge, with and without bugs (Figure 1)"


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the Figure-1 speedup comparison."""
    context = context or ExperimentContext(get_scale(scale))
    ivybridge = core_microarch("Ivybridge")
    skylake = core_microarch("Skylake")
    configurations = [
        ("Ivybridge (Bug-Free)", ivybridge, None),
        ("Skylake (Bug-Free)", skylake, None),
        ("Skylake (Bug 1)", skylake, figure1_bug1()),
        ("Skylake (Bug 2)", skylake, figure1_bug2()),
    ]

    context.cache.warm(
        (probe, design, bug)
        for _, design, bug in configurations
        for probe in context.probes
    )

    benchmarks = sorted({p.benchmark for p in context.probes})
    rows: list[dict[str, object]] = []
    per_config_speedups: dict[str, list[float]] = {name: [] for name, _, _ in configurations}
    for benchmark in benchmarks:
        probes = [p for p in context.probes if p.benchmark == benchmark]
        performance: dict[str, float] = {}
        for name, design, bug in configurations:
            weighted = 0.0
            total_weight = 0.0
            for probe in probes:
                observation = context.cache.get(probe, design, bug)
                weighted += observation.ipc * design.clock_ghz * probe.weight
                total_weight += probe.weight
            performance[name] = weighted / total_weight if total_weight else 0.0
        base = performance["Ivybridge (Bug-Free)"]
        row: dict[str, object] = {"Benchmark": benchmark}
        for name, _, _ in configurations:
            speedup = performance[name] / base if base > 0 else 0.0
            row[name] = speedup
            per_config_speedups[name].append(speedup)
        rows.append(row)

    geomean_row: dict[str, object] = {"Benchmark": "Geometric Mean"}
    for name, values in per_config_speedups.items():
        geomean_row[name] = float(np.exp(np.mean(np.log(np.maximum(values, 1e-9)))))
    rows.append(geomean_row)

    notes = (
        "Paper reports bug-free Skylake at ~1.7x Ivybridge, Bug 1 costing <1% and "
        "Bug 2 ~7% on average, both bugs staying above bug-free Ivybridge."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
