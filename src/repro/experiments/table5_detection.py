"""Table V: end-to-end bug-detection results.

Rows:

* the naive single-stage voting baseline (Section II),
* the two-stage methodology with each stage-1 engine enabled at this scale,
* the two-stage methodology (default engine) trained on designs presumed
  bug-free that actually contain Bug 1 / Bug 2 (the "buggy training" rows).

Each row reports FPR, TPR, ROC AUC, precision and per-severity TPR under the
leave-one-bug-type-out protocol of Figure 7.
"""

from __future__ import annotations

from ..bugs.base import Severity
from ..bugs.registry import tableV_bug1, tableV_bug2
from ..detect.baseline import SingleStageBaseline
from ..detect.detector import EvaluationResult, TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "tab5"
TITLE = "Bug detection results (Table V)"


def _row(label: str, engine: str, result: EvaluationResult) -> dict[str, object]:
    row: dict[str, object] = {
        "Training": label,
        "Stage 1 ML Model": engine,
        "FPR": result.overall.fpr,
        "TPR": result.overall.tpr,
        "ROC AUC": result.overall.roc_auc,
        "Precision": result.overall.precision,
    }
    for severity in (Severity.HIGH, Severity.MEDIUM, Severity.LOW, Severity.VERY_LOW):
        row[f"TPR {severity.value}"] = result.tpr_by_severity.get(severity, float("nan"))
    return row


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate Table V for the engines enabled at this scale."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []

    # Single-stage baseline (uses the default engine as its classifier family).
    baseline_setup = context.detection_setup()
    baseline = SingleStageBaseline(setup=baseline_setup)
    rows.append(_row("NoBug", "Single-stage baseline", baseline.evaluate()))

    # Two-stage methodology, one row per stage-1 engine.
    for engine in context.scale.engines:
        setup = context.detection_setup(engine=engine)
        detector = TwoStageDetector(setup)
        rows.append(_row("NoBug", engine, detector.evaluate()))

    # "Buggy training" rows: legacy designs presumed bug-free actually carry a bug.
    for label, bug in (("Bug1", tableV_bug1()), ("Bug2", tableV_bug2())):
        setup = context.detection_setup(presumed_bugfree_bug=bug)
        detector = TwoStageDetector(setup)
        rows.append(_row(label, context.scale.default_engine, detector.evaluate()))

    notes = (
        "Paper headline (GBT-250, all 14 bug types, 190 probes): TPR 0.84 overall, "
        "91.5% for bugs with >=1% IPC impact, FPR 0.00, precision 1.00, ROC AUC 0.90; "
        "single-stage baseline TPR 0.75.  Buggy-training rows degrade to ~0.7 TPR with "
        "a few false positives."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
