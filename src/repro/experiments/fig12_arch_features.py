"""Figure 12: effect of microarchitecture design-parameter features.

Runs the two-stage detector with and without the static design-parameter
features (ROB size, issue width, cache geometry, ...) appended to each time
step, for the default engine and one contrasting engine.
"""

from __future__ import annotations

from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale
from .fig10_counters import _engines

EXPERIMENT_ID = "fig12"
TITLE = "Effect of microarchitecture design-parameter features (Figure 12)"


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the with/without-architecture-features comparison."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []
    for engine in _engines(context):
        for use_features in (True, False):
            setup = context.detection_setup(engine=engine,
                                            use_arch_features=use_features)
            detector = TwoStageDetector(setup)
            result = detector.evaluate()
            label = "Arch Feat." if use_features else "No Arch Feat."
            rows.append(
                {
                    "Configuration": f"{engine} ({label})",
                    "TPR": result.overall.tpr,
                    "FPR": result.overall.fpr,
                }
            )
    notes = (
        "Paper: removing the design-parameter features has no impact for GBT-250 and a "
        "small impact (contained in Low/Very-Low bugs) for 1-LSTM-500 — counter data "
        "already carries most of the information."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
