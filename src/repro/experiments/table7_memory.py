"""Table VII: bug detection in the cache memory system (Section V-I).

Runs the unchanged two-stage methodology on the ChampSim-like memory-hierarchy
simulator, with both IPC and AMAT as the stage-1 target metric, over the six
memory bug types.
"""

from __future__ import annotations

from ..bugs.base import Severity
from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "tab7"
TITLE = "Bug detection in memory systems (Table VII)"


def _memory_engines(context: ExperimentContext) -> list[str]:
    """GBT plus an LSTM when the scale enables one (as in the paper's table)."""
    engines = [context.scale.default_engine]
    for candidate in context.scale.engines:
        if candidate.upper().find("LSTM") >= 0:
            engines.append(candidate)
            break
    return engines


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate Table VII."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []
    for metric in ("ipc", "amat"):
        for engine in _memory_engines(context):
            setup = context.memory_detection_setup(engine=engine, target_metric=metric)
            detector = TwoStageDetector(setup)
            result = detector.evaluate()
            row: dict[str, object] = {
                "Stage 1 Metric": metric.upper(),
                "Stage 1 ML Model": engine,
                "FPR": result.overall.fpr,
                "TPR": result.overall.tpr,
                "Precision": result.overall.precision,
            }
            for severity in (Severity.HIGH, Severity.MEDIUM, Severity.LOW,
                             Severity.VERY_LOW):
                row[f"TPR {severity.value}"] = result.tpr_by_severity.get(
                    severity, float("nan")
                )
            rows.append(row)
    notes = (
        "Paper: 100% TPR at 0 FPR with GBT for both metrics; LSTM misses only the "
        "Very-Low AMAT-impact bugs."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
