"""Figure 13: effect of reducing the number of training microarchitectures.

Compares the standard design sets against reduced sets that keep only the real
legacy designs (dropping the artificial ones), showing why the paper augments
its training data with artificial-but-realistic configurations.
"""

from __future__ import annotations

from ..detect.detector import DetectionSetup, TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig13"
TITLE = "Effect of number of training microarchitectures (Figure 13)"


def _reduced(designs: list, fallback: int = 1) -> list:
    """Keep only real designs, padding with artificial ones if none are real."""
    real = [d for d in designs if d.is_real]
    return real if real else designs[:fallback]


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the all-samples vs reduced-samples comparison."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []

    full_setup = context.detection_setup()
    full_result = TwoStageDetector(full_setup).evaluate()
    rows.append(
        {
            "Training designs": "All Samples",
            "Set I size": len(full_setup.train_designs),
            "TPR": full_result.overall.tpr,
            "FPR": full_result.overall.fpr,
        }
    )

    reduced_setup = DetectionSetup(
        probes=[type(p)(simpoint=p.simpoint) for p in context.probes],
        train_designs=_reduced(full_setup.train_designs),
        val_designs=_reduced(full_setup.val_designs),
        stage2_designs=_reduced(full_setup.stage2_designs, fallback=2),
        test_designs=full_setup.test_designs,
        bug_suite=full_setup.bug_suite,
        cache=full_setup.cache,
        model_config=full_setup.model_config,
        counter_selection=full_setup.counter_selection,
    )
    reduced_result = TwoStageDetector(reduced_setup).evaluate()
    rows.append(
        {
            "Training designs": "Reduced Samples (real only)",
            "Set I size": len(reduced_setup.train_designs),
            "TPR": reduced_result.overall.tpr,
            "FPR": reduced_result.overall.fpr,
        }
    )
    notes = (
        "Paper: dropping the artificial designs degrades detection, confirming that "
        "data augmentation with artificial microarchitectures is necessary."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
