"""Figure 11: effect of the counter-sampling time-step size.

Sweeps the time-step size (multiples of the scale's base step), reporting the
average stage-1 MSE on bug-free Set-IV designs and the detection TPR/FPR.
Larger steps ease the regression task (lower MSE) but reduce sensitivity to
bugs (worse TPR/FPR), which is why the paper settles on 500 k cycles.
"""

from __future__ import annotations

import numpy as np

from ..detect.dataset import SimulationCache
from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig11"
TITLE = "Effect of time-step size (Figure 11)"

#: Step-size multipliers relative to the scale's base step (paper: 0.5M-2M cycles).
MULTIPLIERS = (1, 2, 3, 4)


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the time-step-size sweep of Figure 11."""
    context = context or ExperimentContext(get_scale(scale))
    base_step = context.scale.step_cycles
    rows: list[dict[str, object]] = []

    for multiplier in MULTIPLIERS:
        step_cycles = base_step * multiplier
        cache = (
            context.cache
            if step_cycles == context.scale.step_cycles
            else SimulationCache(step_cycles=step_cycles, engine=context.engine)
        )
        setup = context.detection_setup(cache=cache)
        detector = TwoStageDetector(setup)
        detector.prepare()
        cache.warm(
            (probe, design, None)
            for design in setup.test_designs
            for probe in setup.probes
        )

        mses = []
        for design in setup.test_designs:
            features = design.feature_vector()
            for probe in setup.probes:
                observation = cache.get(probe, design, None)
                try:
                    mses.append(detector.models[probe.name].mse(observation.series,
                                                                features))
                except ValueError:
                    continue  # probe too short for this step size
        result = detector.evaluate()
        rows.append(
            {
                "Step (cycles)": step_cycles,
                "Step (x base)": multiplier,
                "Average MSE": float(np.mean(mses)) if mses else float("nan"),
                "TPR": result.overall.tpr,
                "FPR": result.overall.fpr,
            }
        )

    notes = (
        "Paper: MSE decreases with larger steps while TPR/FPR degrade, confirming the "
        "500k-cycle choice (here the base step plays the role of 500k cycles)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
