"""Figure 4: distribution of injected-bug severity bands.

Every core bug variant's average IPC impact is measured across the probe
workloads on the test designs and banded into High / Medium / Low / Very-Low,
reproducing the severity histogram of Figure 4.
"""

from __future__ import annotations

import numpy as np

from ..bugs.base import Severity
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig4"
TITLE = "Distribution of bug severity (Figure 4)"


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Measure the severity of every bug variant and histogram the bands."""
    context = context or ExperimentContext(get_scale(scale))
    designs = context.core_designs()["IV"]
    probes = context.probes
    suite = context.core_bugs()

    all_bugs = [bug for variants in suite.values() for bug in variants]
    context.cache.warm(
        (probe, design, bug)
        for design in designs
        for probe in probes
        for bug in [None, *all_bugs]
    )

    severities: list[Severity] = []
    per_bug_rows: list[dict[str, object]] = []
    for bug_type, variants in suite.items():
        for bug in variants:
            impacts = []
            for design in designs:
                for probe in probes:
                    clean = context.cache.get(probe, design, None).ipc
                    buggy = context.cache.get(probe, design, bug).ipc
                    if clean > 0:
                        impacts.append(max(0.0, (clean - buggy) / clean))
            impact = float(np.mean(impacts)) if impacts else 0.0
            band = Severity.from_impact(impact)
            severities.append(band)
            per_bug_rows.append(
                {
                    "Bug": bug.name,
                    "Type": bug_type,
                    "Avg IPC impact (%)": 100.0 * impact,
                    "Severity": band.value,
                }
            )

    total = len(severities)
    histogram_rows = [
        {
            "Severity": band.value,
            "% implemented": 100.0 * sum(1 for s in severities if s is band) / total
            if total
            else 0.0,
        }
        for band in (Severity.VERY_LOW, Severity.LOW, Severity.MEDIUM, Severity.HIGH)
    ]
    notes = "Per-bug measurements:\n" + "\n".join(
        f"  {row['Bug']:35s} {row['Avg IPC impact (%)']:6.2f}%  {row['Severity']}"
        for row in per_bug_rows
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, histogram_rows, notes)
