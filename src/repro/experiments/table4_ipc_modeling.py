"""Table IV: stage-1 IPC-modelling runtime and inference-error statistics.

For every ML engine in the scale's engine list, trains one model per probe on
the bug-free Set-I/Set-II data and evaluates Equation-(1) inference errors on
the bug-free Set-IV designs, reporting training/inference wall-clock time and
the average / standard deviation / median / 90th-percentile error.
"""

from __future__ import annotations

import time

import numpy as np

from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "tab4"
TITLE = "IPC modelling runtime and error statistics (Table IV)"


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate Table IV for the engines enabled at this scale."""
    context = context or ExperimentContext(get_scale(scale))
    test_designs = context.core_designs()["IV"]
    rows: list[dict[str, object]] = []

    for engine in context.scale.engines:
        setup = context.detection_setup(engine=engine)
        detector = TwoStageDetector(setup)

        start = time.perf_counter()
        detector.prepare()
        training_time = time.perf_counter() - start

        start = time.perf_counter()
        errors: list[float] = []
        for design in test_designs:
            errors.extend(detector.error_vector(design, None).tolist())
        inference_time = time.perf_counter() - start

        error_array = np.asarray(errors)
        rows.append(
            {
                "ML Model": engine,
                "Training (s)": training_time,
                "Inference (s)": inference_time,
                "Average": float(error_array.mean()),
                "Std. Dev.": float(error_array.std()),
                "Median": float(np.median(error_array)),
                "90th Perc.": float(np.percentile(error_array, 90)),
            }
        )

    notes = (
        "Errors use Equation (1) on bug-free Set-IV designs, as in the paper. "
        "Wall-clock times are for the scaled-down probe set on this machine; only "
        "the relative ordering (Lasso/GBT fast, deep networks slow) is meaningful."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
