"""Figure 9: effect of reducing the number of probes on detection quality.

Probes are removed either (a) highest stage-1 inference error first or (b) in
random order, and TPR/FPR are re-evaluated for each reduced probe set.  Stage-1
models are per probe, so they are trained once and shared across the sweep.
"""

from __future__ import annotations

import numpy as np

from ..detect.detector import DetectionSetup, TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig9"
TITLE = "Effect of removing probes (Figure 9)"


def _subset_detector(
    base: TwoStageDetector, probe_names: list[str]
) -> TwoStageDetector:
    """A detector over a subset of an already-prepared detector's probes."""
    setup = base.setup
    subset = [p for p in setup.probes if p.name in probe_names]
    new_setup = DetectionSetup(
        probes=subset,
        train_designs=setup.train_designs,
        val_designs=setup.val_designs,
        stage2_designs=setup.stage2_designs,
        test_designs=setup.test_designs,
        bug_suite=setup.bug_suite,
        cache=setup.cache,
        model_config=setup.model_config,
        counter_selection=setup.counter_selection,
        target_higher_is_better=setup.target_higher_is_better,
        presumed_bugfree_bug=setup.presumed_bugfree_bug,
    )
    detector = TwoStageDetector(new_setup)
    detector.models = {name: base.models[name] for name in probe_names}
    detector._prepared = True
    return detector


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the probe-reduction sweep of Figure 9."""
    context = context or ExperimentContext(get_scale(scale))
    setup = context.detection_setup()
    base = TwoStageDetector(setup)
    base.prepare()

    # Rank probes by their bug-free inference error on the test designs.
    mean_errors = {}
    for probe in setup.probes:
        errors = []
        for design in setup.test_designs:
            features = design.feature_vector()
            observation = setup.cache.get(probe, design, None)
            errors.append(base.models[probe.name].inference_error(observation.series,
                                                                  features))
        mean_errors[probe.name] = float(np.mean(errors))

    all_names = [p.name for p in setup.probes]
    by_error = sorted(all_names, key=lambda name: -mean_errors[name])
    rng = np.random.default_rng(context.scale.seed)
    random_order = list(rng.permutation(all_names))

    step = max(1, len(all_names) // 4)
    rows: list[dict[str, object]] = []
    for order_name, order in (("By error", by_error), ("Random order", random_order)):
        removed = 0
        while len(all_names) - removed >= max(2, step):
            kept = [n for n in all_names if n not in set(order[:removed])]
            detector = _subset_detector(base, kept)
            result = detector.evaluate()
            rows.append(
                {
                    "Order": order_name,
                    "Probes kept": len(kept),
                    "TPR": result.overall.tpr,
                    "FPR": result.overall.fpr,
                }
            )
            removed += step

    notes = (
        "The paper finds quality degrades only slowly as probes are removed "
        "(TPR drops / FPR rises gradually), for both removal orders."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
