"""Figure 5: inferred vs simulated IPC time series on bug-free designs.

Reports, for a few representative probes on Skylake, the simulated IPC series
alongside each engine's inferred series and the resulting per-probe error —
the textual equivalent of the figure's line plots.
"""

from __future__ import annotations

from ..detect.detector import TwoStageDetector
from ..ml.metrics import inference_error
from ..uarch.presets import core_microarch
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig5"
TITLE = "ML-based IPC inference vs simulation on bug-free designs (Figure 5)"

#: Maximum number of probes reported (the paper shows three).
MAX_PROBES = 3


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the Figure-5 comparison for the scale's engines."""
    context = context or ExperimentContext(get_scale(scale))
    skylake = core_microarch("Skylake")
    engines = list(context.scale.engines)
    probes = context.probes[:MAX_PROBES]

    detectors = {}
    for engine in engines:
        setup = context.detection_setup(engine=engine)
        detector = TwoStageDetector(setup)
        detector.prepare()
        detectors[engine] = detector

    context.cache.warm((probe, skylake, None) for probe in probes)
    rows: list[dict[str, object]] = []
    series_dump: list[str] = []
    for probe_index, probe in enumerate(probes):
        observation = context.cache.get(probe, skylake, None)
        row: dict[str, object] = {
            "Probe": probe.name,
            "Steps": observation.series.num_steps,
            "Mean simulated IPC": float(observation.series.ipc.mean()),
        }
        for engine, detector in detectors.items():
            model = detector.models[detector.setup.probes[
                context.probes.index(probe)].name]
            simulated, inferred = model.predict_series(
                observation.series, skylake.feature_vector()
            )
            row[f"{engine} error"] = inference_error(simulated, inferred)
            if probe_index == 0:
                series_dump.append(
                    f"{probe.name} / {engine}: simulated="
                    + ",".join(f"{v:.3f}" for v in simulated[:10])
                    + " inferred="
                    + ",".join(f"{v:.3f}" for v in inferred[:10])
                )
        rows.append(row)

    notes = "First probe's leading time steps:\n  " + "\n  ".join(series_dump)
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
