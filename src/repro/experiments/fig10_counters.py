"""Figure 10: automatic vs manual performance-counter selection.

Compares detection TPR/FPR when probes use the paper's automatic two-step
Pearson counter selection against a fixed, manually chosen 22-counter set
shared by all probes.
"""

from __future__ import annotations

from ..detect.detector import TwoStageDetector
from .common import ExperimentContext, ExperimentResult, get_scale

EXPERIMENT_ID = "fig10"
TITLE = "Effect of counter selection method (Figure 10)"


def _engines(context: ExperimentContext) -> list[str]:
    """Default engine plus one contrasting engine, as in the paper (GBT vs LSTM)."""
    engines = [context.scale.default_engine]
    for candidate in context.scale.engines:
        if candidate != context.scale.default_engine and not candidate.startswith("Lasso"):
            engines.append(candidate)
            break
    return engines


def run(scale: str = "smoke", context: ExperimentContext | None = None) -> ExperimentResult:
    """Regenerate the Figure-10 counter-selection comparison."""
    context = context or ExperimentContext(get_scale(scale))
    rows: list[dict[str, object]] = []
    for engine in _engines(context):
        for method in ("auto", "manual"):
            setup = context.detection_setup(engine=engine, counter_selection=method)
            detector = TwoStageDetector(setup)
            result = detector.evaluate()
            label = "Our method" if method == "auto" else "Manual"
            rows.append(
                {
                    "Configuration": f"{engine} ({label})",
                    "TPR": result.overall.tpr,
                    "FPR": result.overall.fpr,
                    "ROC AUC": result.overall.roc_auc,
                }
            )
    notes = (
        "The paper reports the automatic selection beating the manual 22-counter "
        "set for both GBT and LSTM stage-1 models."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)
