"""Trace-driven memory-hierarchy simulator (ChampSim stand-in)."""

from .cache import ReplacementCache
from .hooks import MEM_BUG_FREE, MemoryBugModel
from .prefetcher import (
    NextLinePrefetcher,
    NoPrefetcher,
    PrefetchRequest,
    Prefetcher,
    SignaturePathPrefetcher,
    build_prefetcher,
)
from .simulator import (
    DEFAULT_STEP_INSTRUCTIONS,
    MemoryHierarchySim,
    MemSimResult,
    llc_mpki,
    simulate_memory_trace,
)

__all__ = [
    "ReplacementCache",
    "MemoryBugModel",
    "MEM_BUG_FREE",
    "Prefetcher",
    "NoPrefetcher",
    "NextLinePrefetcher",
    "SignaturePathPrefetcher",
    "PrefetchRequest",
    "build_prefetcher",
    "MemoryHierarchySim",
    "MemSimResult",
    "simulate_memory_trace",
    "llc_mpki",
    "DEFAULT_STEP_INSTRUCTIONS",
]
