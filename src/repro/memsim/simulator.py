"""Trace-driven memory-hierarchy simulator (ChampSim stand-in).

Processes a dynamic instruction trace, sending loads and stores through an
L1D/L2/LLC hierarchy with a prefetcher, and produces a counter time series
whose per-step target metrics are AMAT (average memory access time) and a
simple-core IPC proxy.  This is the substrate for the memory-system bug study
of Section IV-D.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coresim.counters import CounterTimeSeries
from ..uarch.config import MemoryHierarchyConfig
from ..workloads.decoded import DecodedTrace, as_uops
from ..workloads.isa import MicroOp
from .cache import ReplacementCache
from .hooks import MEM_BUG_FREE, MemoryBugModel
from .prefetcher import build_prefetcher

#: Default sampling step, in instructions (the memory study samples by
#: retired-instruction count rather than cycles).
DEFAULT_STEP_INSTRUCTIONS = 2000

#: How much of a miss's latency the out-of-order core is assumed to overlap.
MLP_FACTOR = 3.0


@dataclass
class MemSimResult:
    """Outcome of one memory-hierarchy simulation."""

    config_name: str
    bug_name: str
    instructions: int
    cycles: float
    series: CounterTimeSeries
    amat: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def amat_series(self) -> np.ndarray:
        return self.series.counters["mem.amat"]


class MemoryHierarchySim:
    """Simulates the cache hierarchy of one :class:`MemoryHierarchyConfig`."""

    def __init__(
        self,
        config: MemoryHierarchyConfig,
        bug: MemoryBugModel | None = None,
        step_instructions: int = DEFAULT_STEP_INSTRUCTIONS,
    ) -> None:
        self.config = config
        self.bug = bug if bug is not None else MEM_BUG_FREE
        self.step_instructions = step_instructions
        self.bug.on_simulation_start(config)

        self.l1d = ReplacementCache("l1d", config.l1d, self.bug)
        self.l2 = ReplacementCache("l2", config.l2, self.bug)
        self.llc = ReplacementCache("llc", config.llc, self.bug)
        self.prefetcher = build_prefetcher(
            config.prefetcher, config.l1d.line_size, config.prefetch_degree, self.bug
        )

    # -- access path -----------------------------------------------------------

    def _access(self, address: int, is_load: bool) -> int:
        """One demand access; returns its latency in cycles."""
        cfg = self.config
        latency = cfg.l1d.latency
        if not self.l1d.access(address, is_load):
            latency += cfg.l2.latency
            extra = self.bug.load_miss_extra_delay("l1d", self.l1d.load_misses)
            latency += extra if is_load else 0
            if not self.l2.access(address, is_load):
                latency += cfg.llc.latency
                extra = self.bug.load_miss_extra_delay("l2", self.l2.load_misses)
                latency += extra if is_load else 0
                if not self.llc.access(address, is_load):
                    latency += cfg.dram_latency
        # Prefetcher observes demand accesses at L1D and fills into L2/LLC
        # (filling L1D directly would pollute the small L1 working set).
        for request in self.prefetcher.observe(address):
            self.l2.prefetch_fill(request.address)
            self.llc.prefetch_fill(request.address)
        return latency

    # -- driver ------------------------------------------------------------------

    def run(self, trace: list[MicroOp], warmup_fraction: float = 0.1) -> MemSimResult:
        """Simulate *trace*; the first *warmup_fraction* of it warms the caches."""
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        warmup_count = int(len(trace) * warmup_fraction)
        for uop in trace[:warmup_count]:
            if uop.address is not None:
                self._access(uop.address, uop.is_load)
        for cache in (self.l1d, self.l2, self.llc):
            cache.reset_stats()

        measured = trace[warmup_count:]
        rows: list[dict[str, float]] = []
        ipc_values: list[float] = []
        step_latency = 0.0
        step_accesses = 0
        step_instructions = 0
        total_latency = 0.0
        total_accesses = 0
        total_cycles = 0.0
        previous_stats = self._stats()

        def flush_step() -> None:
            nonlocal step_latency, step_accesses, step_instructions, previous_stats
            current = self._stats()
            deltas = {k: current[k] - previous_stats.get(k, 0.0) for k in current}
            previous_stats = current
            amat = step_latency / step_accesses if step_accesses else float(
                self.config.l1d.latency
            )
            stall = max(0.0, step_latency - step_accesses * self.config.l1d.latency)
            cycles = step_instructions / self.config.issue_width + stall / MLP_FACTOR
            deltas["mem.amat"] = amat
            deltas["mem.accesses"] = float(step_accesses)
            deltas["mem.instructions"] = float(step_instructions)
            deltas["mem.stall_cycles"] = stall
            rows.append(deltas)
            ipc_values.append(step_instructions / cycles if cycles > 0 else 0.0)
            step_latency = 0.0
            step_accesses = 0
            step_instructions = 0

        for uop in measured:
            step_instructions += 1
            if uop.address is not None:
                latency = self._access(uop.address, uop.is_load)
                step_latency += latency
                step_accesses += 1
                total_latency += latency
                total_accesses += 1
                total_cycles += max(0.0, latency - self.config.l1d.latency) / MLP_FACTOR
            if step_instructions >= self.step_instructions:
                flush_step()
        if step_instructions >= self.step_instructions // 2:
            flush_step()
        if not rows:
            flush_step()

        total_cycles += len(measured) / self.config.issue_width
        names = sorted({name for row in rows for name in row})
        counters = {
            name: np.array([row.get(name, 0.0) for row in rows], dtype=float)
            for name in names
        }
        series = CounterTimeSeries(
            step_cycles=self.step_instructions,
            counters=counters,
            ipc=np.array(ipc_values, dtype=float),
        )
        amat = (
            total_latency / total_accesses
            if total_accesses
            else float(self.config.l1d.latency)
        )
        return MemSimResult(
            config_name=self.config.name,
            bug_name=self.bug.name,
            instructions=len(measured),
            cycles=total_cycles,
            series=series,
            amat=amat,
        )

    def _stats(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for cache in (self.l1d, self.l2, self.llc):
            merged.update(cache.stats())
        merged["mem.prefetches_issued"] = float(self.prefetcher.issued)
        return merged


def simulate_memory_trace(
    config: MemoryHierarchyConfig,
    trace: "list[MicroOp] | DecodedTrace",
    bug: MemoryBugModel | None = None,
    step_instructions: int = DEFAULT_STEP_INSTRUCTIONS,
) -> MemSimResult:
    """Convenience wrapper mirroring :func:`repro.coresim.simulate_trace`.

    Accepts a plain micro-op list or a pre-decoded
    :class:`~repro.workloads.decoded.DecodedTrace` (as shipped to job-engine
    workers); the memory simulator walks micro-op objects either way.
    """
    sim = MemoryHierarchySim(config, bug=bug, step_instructions=step_instructions)
    return sim.run(as_uops(trace))


def llc_mpki(result: MemSimResult) -> float:
    """Last-level-cache misses per kilo-instruction of a finished run."""
    counters = result.series.counters
    misses = float(counters["mem.llc.misses"].sum())
    instructions = float(counters["mem.instructions"].sum())
    return 1000.0 * misses / max(1.0, instructions)
