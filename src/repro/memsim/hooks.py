"""Bug-injection hook interface for the memory-hierarchy simulator.

Mirrors :mod:`repro.coresim.hooks` for the ChampSim-like cache-hierarchy model
used in the memory-system study (Section IV-D).  The six memory bug classes of
the paper are expressed through these hooks.
"""

from __future__ import annotations


class MemoryBugModel:
    """No-op memory bug model (bug-free hierarchy behaviour)."""

    name: str = "bug-free"

    def on_simulation_start(self, config) -> None:
        """Called once before simulation; may reset internal state."""

    # -- replacement policy -------------------------------------------------

    def update_replacement_on_access(self, level: str) -> bool:
        """False to skip the LRU age update on an access hit (bug 1)."""
        return True

    def evict_most_recently_used(self, level: str) -> bool:
        """True to evict the MRU block instead of the LRU block (bug 2)."""
        return False

    # -- miss handling -------------------------------------------------------

    def load_miss_extra_delay(self, level: str, miss_count: int) -> int:
        """Extra cycles added to a load miss at *level* (bug 3).

        *miss_count* is the cumulative number of load misses observed at that
        level, so "after N misses, delay reads by T cycles" is expressible.
        """
        return 0

    # -- SPP prefetcher ------------------------------------------------------

    def spp_corrupt_signature(self, signature: int) -> int:
        """Possibly corrupt the SPP signature (bug 4 resets it to zero)."""
        return signature

    def spp_pick_least_confident(self) -> bool:
        """True to make lookahead follow the least-confident path (bug 5)."""
        return False

    def spp_drop_prefetch(self, prefetch_index: int) -> bool:
        """True to mark this prefetch as executed without issuing it (bug 6)."""
        return False


#: Shared bug-free instance.
MEM_BUG_FREE = MemoryBugModel()
