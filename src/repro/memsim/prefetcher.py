"""Prefetchers for the memory-hierarchy simulator.

Two prefetchers are provided: a trivial next-line prefetcher and a simplified
Signature Path Prefetcher (SPP, Kim et al., MICRO 2016) — the prefetcher the
paper's memory bugs 4-6 target.  The SPP model keeps the structure that those
bugs perturb: per-page signatures built from block-offset deltas, a pattern
table of per-signature delta confidences, and confidence-driven lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hooks import MemoryBugModel

#: Page size used for signature tracking (bytes).
PAGE_SIZE = 4096
#: Number of bits in an SPP signature.
SIGNATURE_BITS = 12
_SIGNATURE_MASK = (1 << SIGNATURE_BITS) - 1


@dataclass
class PrefetchRequest:
    """One prefetch candidate produced by a prefetcher."""

    address: int
    confidence: float


class Prefetcher:
    """Interface: observe a demand access, emit prefetch candidates."""

    name = "none"

    def observe(self, address: int) -> list[PrefetchRequest]:
        """Process a demand access and return prefetch requests."""
        raise NotImplementedError

    @property
    def issued(self) -> int:
        """Number of prefetch requests produced so far."""
        raise NotImplementedError


class NoPrefetcher(Prefetcher):
    """Placeholder used when prefetching is disabled."""

    name = "none"

    def observe(self, address: int) -> list[PrefetchRequest]:
        return []

    @property
    def issued(self) -> int:
        return 0


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next *degree* sequential lines after every access."""

    name = "next_line"

    def __init__(self, line_size: int = 64, degree: int = 1) -> None:
        self.line_size = line_size
        self.degree = max(1, degree)
        self._issued = 0

    def observe(self, address: int) -> list[PrefetchRequest]:
        requests = [
            PrefetchRequest(address + i * self.line_size, confidence=1.0)
            for i in range(1, self.degree + 1)
        ]
        self._issued += len(requests)
        return requests

    @property
    def issued(self) -> int:
        return self._issued


class SignaturePathPrefetcher(Prefetcher):
    """Simplified SPP with signature/pattern tables and lookahead.

    The bug hooks perturb exactly the mechanisms the paper lists: signature
    corruption (bug 4), least-confidence path selection during lookahead
    (bug 5) and prefetches incorrectly marked as executed (bug 6).
    """

    name = "spp"

    #: Minimum path confidence for issuing a prefetch.
    CONFIDENCE_THRESHOLD = 0.25
    #: Maximum lookahead depth.
    MAX_DEPTH = 4

    def __init__(
        self,
        line_size: int = 64,
        degree: int = 2,
        bug: MemoryBugModel | None = None,
    ) -> None:
        self.line_size = line_size
        self.degree = max(1, degree)
        self.bug = bug if bug is not None else MemoryBugModel()
        # page -> (signature, last block offset within page)
        self._signature_table: dict[int, tuple[int, int]] = {}
        # signature -> {delta: count}
        self._pattern_table: dict[int, dict[int, int]] = {}
        self._issued = 0
        self._marked_executed = 0

    @property
    def issued(self) -> int:
        return self._issued

    @property
    def dropped(self) -> int:
        """Prefetches marked as executed but never actually issued (bug 6)."""
        return self._marked_executed

    @staticmethod
    def _advance_signature(signature: int, delta: int) -> int:
        return ((signature << 3) ^ (delta & 0x3F)) & _SIGNATURE_MASK

    def _update_pattern(self, signature: int, delta: int) -> None:
        deltas = self._pattern_table.setdefault(signature, {})
        deltas[delta] = deltas.get(delta, 0) + 1

    def _best_delta(self, signature: int) -> tuple[int, float] | None:
        deltas = self._pattern_table.get(signature)
        if not deltas:
            return None
        total = sum(deltas.values())
        if self.bug.spp_pick_least_confident():
            delta = min(deltas, key=deltas.get)
        else:
            delta = max(deltas, key=deltas.get)
        return delta, deltas[delta] / total

    def observe(self, address: int) -> list[PrefetchRequest]:
        page = address // PAGE_SIZE
        block = (address % PAGE_SIZE) // self.line_size
        previous = self._signature_table.get(page)
        requests: list[PrefetchRequest] = []

        if previous is not None:
            signature, last_block = previous
            delta = block - last_block
            if delta != 0:
                self._update_pattern(signature, delta)
                signature = self._advance_signature(signature, delta)
        else:
            signature = 0

        signature = self.bug.spp_corrupt_signature(signature) & _SIGNATURE_MASK
        self._signature_table[page] = (signature, block)

        # Confidence-driven lookahead along the learned delta path.
        path_confidence = 1.0
        lookahead_signature = signature
        lookahead_block = block
        for _ in range(self.MAX_DEPTH):
            best = self._best_delta(lookahead_signature)
            if best is None:
                break
            delta, confidence = best
            path_confidence *= confidence
            if path_confidence < self.CONFIDENCE_THRESHOLD:
                break
            lookahead_block += delta
            if not 0 <= lookahead_block < PAGE_SIZE // self.line_size:
                break
            target = page * PAGE_SIZE + lookahead_block * self.line_size
            if self.bug.spp_drop_prefetch(self._issued + self._marked_executed):
                # The prefetcher believes it issued this request (it advances
                # its lookahead state) but nothing reaches the cache.
                self._marked_executed += 1
            else:
                requests.append(PrefetchRequest(target, confidence=path_confidence))
                self._issued += 1
            lookahead_signature = self._advance_signature(lookahead_signature, delta)
            if len(requests) >= self.degree:
                break
        return requests


def build_prefetcher(
    kind: str, line_size: int, degree: int, bug: MemoryBugModel
) -> Prefetcher:
    """Factory used by the memory simulator."""
    if kind == "none":
        return NoPrefetcher()
    if kind == "next_line":
        return NextLinePrefetcher(line_size=line_size, degree=degree)
    if kind == "spp":
        return SignaturePathPrefetcher(line_size=line_size, degree=degree, bug=bug)
    raise ValueError(f"unknown prefetcher kind {kind!r}")
