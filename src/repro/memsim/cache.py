"""Set-associative cache with pluggable (and buggable) LRU replacement.

Unlike the lightweight tag store in :mod:`repro.coresim.caches`, this cache
exposes the replacement-policy decision points the memory-system bugs target:
age updates on access and victim selection.  It also tracks prefetched lines
so that prefetch usefulness can be reported.
"""

from __future__ import annotations

from ..uarch.config import CacheConfig
from .hooks import MemoryBugModel


class ReplacementCache:
    """One cache level with true-LRU replacement and prefetch support."""

    def __init__(self, name: str, config: CacheConfig, bug: MemoryBugModel) -> None:
        self.name = name
        self.config = config
        self.bug = bug
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_shift = config.line_size.bit_length() - 1
        # tag -> age timestamp; parallel dict marks prefetched-but-unused lines.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._prefetched: list[set[int]] = [set() for _ in range(self.num_sets)]
        self._tick = 0

        self.accesses = 0
        self.misses = 0
        self.load_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0

    # -- internals -----------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self.line_shift
        return line % self.num_sets, line // self.num_sets

    def _insert(self, set_index: int, tag: int, prefetch: bool) -> None:
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set[tag] = self._tick
            return
        if len(cache_set) >= self.associativity:
            if self.bug.evict_most_recently_used(self.name):
                victim = max(cache_set, key=cache_set.get)
            else:
                victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
            self._prefetched[set_index].discard(victim)
            self.evictions += 1
        cache_set[tag] = self._tick
        if prefetch:
            self._prefetched[set_index].add(tag)
        else:
            self._prefetched[set_index].discard(tag)

    # -- public API ------------------------------------------------------------

    def access(self, address: int, is_load: bool = True) -> bool:
        """Demand access; returns True on hit and allocates the line on miss."""
        self._tick += 1
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        self.accesses += 1
        if tag in cache_set:
            if self.bug.update_replacement_on_access(self.name):
                cache_set[tag] = self._tick
            if tag in self._prefetched[set_index]:
                self.useful_prefetches += 1
                self._prefetched[set_index].discard(tag)
            return True
        self.misses += 1
        if is_load:
            self.load_misses += 1
        self._insert(set_index, tag, prefetch=False)
        return False

    def prefetch_fill(self, address: int) -> None:
        """Install a prefetched line (no demand-access statistics)."""
        self._tick += 1
        set_index, tag = self._locate(address)
        if tag in self._sets[set_index]:
            return
        self.prefetch_fills += 1
        self._insert(set_index, tag, prefetch=True)

    def contains(self, address: int) -> bool:
        """Tag-store probe with no side effects."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.load_misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0

    def stats(self) -> dict[str, float]:
        prefix = f"mem.{self.name}"
        return {
            f"{prefix}.accesses": float(self.accesses),
            f"{prefix}.misses": float(self.misses),
            f"{prefix}.load_misses": float(self.load_misses),
            f"{prefix}.evictions": float(self.evictions),
            f"{prefix}.prefetch_fills": float(self.prefetch_fills),
            f"{prefix}.useful_prefetches": float(self.useful_prefetches),
        }
