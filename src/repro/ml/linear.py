"""Lasso linear regression via cyclic coordinate descent.

The simplest stage-1 engine in the paper: ``y = x^T w`` with L1 regularisation
on ``w``.  Implemented from scratch because scikit-learn is unavailable in the
offline environment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import FitResult, Regressor, validate_training_inputs
from .metrics import mean_squared_error
from .preprocessing import StandardScaler, flatten_windows


def _soft_threshold(value: float, threshold: float) -> float:
    """Soft-thresholding operator used by the coordinate-descent update."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class LassoRegressor(Regressor):
    """L1-regularised linear regression (cyclic coordinate descent)."""

    def __init__(
        self,
        alpha: float = 0.001,
        max_iter: int = 500,
        tol: float = 1e-6,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.name = "Lasso"
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler = StandardScaler()

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        X = flatten_windows(X_train)
        y = np.asarray(y_train, dtype=float)
        validate_training_inputs(X, y)
        X = self._scaler.fit_transform(X)

        n_samples, n_features = X.shape
        weights = np.zeros(n_features)
        self.intercept_ = float(y.mean())
        residual = y - self.intercept_ - X @ weights
        column_norms = (X ** 2).sum(axis=0)
        threshold = self.alpha * n_samples

        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            max_update = 0.0
            for j in range(n_features):
                if column_norms[j] <= 1e-12:
                    continue
                old = weights[j]
                rho = X[:, j] @ residual + column_norms[j] * old
                new = _soft_threshold(rho, threshold) / column_norms[j]
                if new != old:
                    weights[j] = new
                    residual -= X[:, j] * (new - old)
                    max_update = max(max_update, abs(new - old))
            if max_update < self.tol:
                break

        self.coef_ = weights
        train_loss = mean_squared_error(y, self._predict_scaled(X))
        val_loss = None
        if X_val is not None and y_val is not None and len(y_val):
            val_loss = mean_squared_error(np.asarray(y_val, dtype=float),
                                          self.predict(X_val))
        return FitResult(train_loss=train_loss, val_loss=val_loss,
                         epochs_run=iterations)

    def _predict_scaled(self, X_scaled: np.ndarray) -> np.ndarray:
        assert self.coef_ is not None
        return X_scaled @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model has not been fitted")
        X = self._scaler.transform(flatten_windows(X))
        return self._predict_scaled(X)

    @property
    def selected_features(self) -> np.ndarray:
        """Indices of features with non-zero coefficients."""
        if self.coef_ is None:
            raise RuntimeError("model has not been fitted")
        return np.flatnonzero(np.abs(self.coef_) > 1e-12)
