"""CART regression tree used as the weak learner for gradient boosting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves have ``value`` set and no children."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Exact-split CART regression tree minimising squared error."""

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.min_samples_split = max(2, min_samples_split)
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty and the same length")
        self._root = self._build(X, y, depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        X = np.asarray(X, dtype=float)
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value if node is not None else 0.0

    # -- construction -----------------------------------------------------------

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node_value = float(y.mean())
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.ptp(y) < 1e-12
        ):
            return _Node(value=node_value)

        feature, threshold = self._best_split(X, y)
        if feature < 0:
            return _Node(value=node_value)

        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _Node(value=node_value, feature=feature, threshold=threshold,
                     left=left, right=right)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
        """Return the (feature, threshold) minimising weighted child variance."""
        n_samples, n_features = X.shape
        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        min_leaf = self.min_samples_leaf

        for feature in range(n_features):
            order = np.argsort(X[:, feature], kind="stable")
            x_sorted = X[order, feature]
            y_sorted = y[order]
            if x_sorted[0] == x_sorted[-1]:
                continue
            # Prefix sums for O(1) variance evaluation of every split point.
            cumsum = np.cumsum(y_sorted)
            cumsum_sq = np.cumsum(y_sorted ** 2)
            total_sum = cumsum[-1]
            total_sq = cumsum_sq[-1]
            counts = np.arange(1, n_samples + 1, dtype=float)

            left_sum = cumsum[:-1]
            left_sq = cumsum_sq[:-1]
            left_n = counts[:-1]
            right_n = n_samples - left_n
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq

            sse = (left_sq - left_sum ** 2 / left_n) + (
                right_sq - right_sum ** 2 / right_n
            )
            # Disallow splits between equal feature values and tiny leaves.
            valid = (x_sorted[:-1] != x_sorted[1:])
            valid &= (left_n >= min_leaf) & (right_n >= min_leaf)
            if not np.any(valid):
                continue
            sse = np.where(valid, sse, np.inf)
            index = int(np.argmin(sse))
            if sse[index] < best_score:
                best_score = float(sse[index])
                best_feature = feature
                best_threshold = float(
                    0.5 * (x_sorted[index] + x_sorted[index + 1])
                )
        return best_feature, best_threshold
