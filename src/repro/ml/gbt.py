"""Gradient-boosted regression trees (XGBoost stand-in).

Least-squares gradient boosting (Friedman 2001) over the CART trees of
:mod:`repro.ml.tree`, with shrinkage, optional row subsampling and early
stopping on a validation set.  ``GBT-150`` / ``GBT-250`` in the paper's tables
correspond to 150 / 250 boosting rounds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import FitResult, Regressor, validate_training_inputs
from .metrics import mean_squared_error
from .preprocessing import flatten_windows
from .tree import RegressionTree


class GradientBoostedTrees(Regressor):
    """Least-squares gradient boosting with CART weak learners."""

    def __init__(
        self,
        n_estimators: int = 250,
        learning_rate: float = 0.08,
        max_depth: int = 4,
        subsample: float = 0.8,
        min_samples_leaf: int = 2,
        early_stopping_rounds: int = 50,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.early_stopping_rounds = early_stopping_rounds
        self.seed = seed
        self.name = f"GBT-{n_estimators}"
        self._trees: list[RegressionTree] = []
        self._base_prediction = 0.0

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        X = flatten_windows(X_train)
        y = np.asarray(y_train, dtype=float)
        validate_training_inputs(X, y)
        rng = np.random.default_rng(self.seed)

        has_val = X_val is not None and y_val is not None and len(y_val) > 0
        X_validation = flatten_windows(X_val) if has_val else None
        y_validation = np.asarray(y_val, dtype=float) if has_val else None

        self._trees = []
        self._base_prediction = float(y.mean())
        predictions = np.full(len(y), self._base_prediction)
        val_predictions = (
            np.full(len(y_validation), self._base_prediction) if has_val else None
        )

        history: list[float] = []
        best_val = np.inf
        best_round = 0
        rounds_without_improvement = 0
        n_samples = len(y)
        sample_count = max(2, int(round(self.subsample * n_samples)))

        for round_index in range(self.n_estimators):
            residuals = y - predictions
            if self.subsample < 1.0 and n_samples > sample_count:
                chosen = rng.choice(n_samples, size=sample_count, replace=False)
            else:
                chosen = np.arange(n_samples)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[chosen], residuals[chosen])
            self._trees.append(tree)
            predictions += self.learning_rate * tree.predict(X)
            train_loss = mean_squared_error(y, predictions)
            history.append(train_loss)

            if has_val:
                val_predictions += self.learning_rate * tree.predict(X_validation)
                val_loss = mean_squared_error(y_validation, val_predictions)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_round = round_index + 1
                    rounds_without_improvement = 0
                else:
                    rounds_without_improvement += 1
                    if rounds_without_improvement >= self.early_stopping_rounds:
                        self._trees = self._trees[:best_round]
                        break

        final_pred = self.predict(X)
        train_loss = mean_squared_error(y, final_pred)
        val_loss = (
            mean_squared_error(y_validation, self.predict(X_validation))
            if has_val
            else None
        )
        return FitResult(
            train_loss=train_loss,
            val_loss=val_loss,
            epochs_run=len(self._trees),
            history=history,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model has not been fitted")
        X = flatten_windows(X)
        prediction = np.full(len(X), self._base_prediction)
        for tree in self._trees:
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    @property
    def n_trees_fitted(self) -> int:
        return len(self._trees)
