"""Regression metrics, including the paper's Equation (1) inference error.

Equation (1) sums, over consecutive time-step pairs, the average of the two
absolute errors — a trapezoidal "area between the inferred and simulated IPC
curves".  Unlike MSE it does not average large single-step errors away, which
is why the paper prefers it for feeding stage 2.
"""

from __future__ import annotations

import numpy as np


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain MSE."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_shapes(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain MAE."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_shapes(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def inference_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """The paper's Equation (1): area between the two time series.

    ``delta_i = 1/2 * sum_{j=2..T} (|y_j - yhat_j| + |y_{j-1} - yhat_{j-1}|)``

    For a single-step series the plain absolute error is returned, which keeps
    the metric well defined for degenerate probes.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_shapes(y_true, y_pred)
    errors = np.abs(y_true - y_pred)
    if errors.size == 1:
        return float(errors[0])
    return float(0.5 * np.sum(errors[1:] + errors[:-1]))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either input is constant."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    _check_shapes(x, y)
    if x.size < 2:
        return 0.0
    x_std = x.std()
    y_std = y.std()
    if x_std <= 1e-12 or y_std <= 1e-12:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    _check_shapes(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot <= 1e-12:
        return 0.0
    return 1.0 - ss_res / ss_tot


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("metric inputs must not be empty")
