"""LSTM regressor trained with Adam and truncated BPTT (Keras LSTM stand-in).

The input window (Section III-C) is treated as the recurrent sequence: the
network reads the feature vectors of time steps ``t_{i-w+1} ... t_i`` and
regresses the IPC at ``t_i`` from the final hidden state.  ``1-LSTM-500`` is
one LSTM layer with 500 units; ``4-LSTM-150`` stacks four layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import FitResult, Regressor, validate_training_inputs
from .metrics import mean_squared_error
from .optim import Adam, clip_gradients
from .preprocessing import StandardScaler, as_windows


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -50.0, 50.0)))


class _LSTMLayer:
    """One LSTM layer with packed gate weights (input, forget, cell, output)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(max(input_size + hidden_size, 1))
        self.W = rng.normal(0.0, scale, size=(input_size + hidden_size,
                                              4 * hidden_size))
        self.b = np.zeros(4 * hidden_size)
        # Standard trick: positive forget-gate bias stabilises early training.
        self.b[hidden_size : 2 * hidden_size] = 1.0

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[dict]]:
        """Run the layer over a (n, T, input_size) batch.

        Returns the full hidden-state sequence (n, T, hidden) and per-step
        caches for backpropagation through time.
        """
        n, steps, _ = x.shape
        h = np.zeros((n, self.hidden_size))
        c = np.zeros((n, self.hidden_size))
        outputs = np.zeros((n, steps, self.hidden_size))
        caches: list[dict] = []
        hs = self.hidden_size
        for t in range(steps):
            concat = np.concatenate([x[:, t, :], h], axis=1)
            gates = concat @ self.W + self.b
            i = _sigmoid(gates[:, :hs])
            f = _sigmoid(gates[:, hs : 2 * hs])
            g = np.tanh(gates[:, 2 * hs : 3 * hs])
            o = _sigmoid(gates[:, 3 * hs :])
            c = f * c + i * g
            h = o * np.tanh(c)
            outputs[:, t, :] = h
            caches.append({"concat": concat, "i": i, "f": f, "g": g, "o": o,
                           "c": c.copy(), "c_prev": caches[-1]["c"] if caches else
                           np.zeros_like(c)})
        return outputs, caches

    def backward(
        self, d_outputs: np.ndarray, caches: list[dict]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """BPTT given gradients w.r.t. every hidden output (n, T, hidden).

        Returns (dW, db, d_inputs).
        """
        n, steps, _ = d_outputs.shape
        hs = self.hidden_size
        dW = np.zeros_like(self.W)
        db = np.zeros_like(self.b)
        d_inputs = np.zeros((n, steps, self.input_size))
        dh_next = np.zeros((n, hs))
        dc_next = np.zeros((n, hs))
        for t in range(steps - 1, -1, -1):
            cache = caches[t]
            dh = d_outputs[:, t, :] + dh_next
            c = cache["c"]
            tanh_c = np.tanh(c)
            do = dh * tanh_c
            dc = dh * cache["o"] * (1.0 - tanh_c ** 2) + dc_next
            di = dc * cache["g"]
            dg = dc * cache["i"]
            df = dc * cache["c_prev"]
            dc_next = dc * cache["f"]

            d_gates = np.concatenate(
                [
                    di * cache["i"] * (1.0 - cache["i"]),
                    df * cache["f"] * (1.0 - cache["f"]),
                    dg * (1.0 - cache["g"] ** 2),
                    do * cache["o"] * (1.0 - cache["o"]),
                ],
                axis=1,
            )
            dW += cache["concat"].T @ d_gates
            db += d_gates.sum(axis=0)
            d_concat = d_gates @ self.W.T
            d_inputs[:, t, :] = d_concat[:, : self.input_size]
            dh_next = d_concat[:, self.input_size :]
        return dW, db, d_inputs


class LSTMRegressor(Regressor):
    """Stacked LSTM layers followed by a linear read-out of the last state."""

    def __init__(
        self,
        layers: int = 1,
        hidden_size: int = 150,
        learning_rate: float = 1e-3,
        max_epochs: int = 200,
        patience: int = 100,
        batch_size: int = 32,
        grad_clip: float = 1.0,
        seed: int = 0,
    ) -> None:
        if layers < 1 or hidden_size < 1:
            raise ValueError("layers and hidden_size must be positive")
        self.layers = layers
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.seed = seed
        self.name = f"{layers}-LSTM-{hidden_size}"
        self._lstm_layers: list[_LSTMLayer] = []
        self._dense_w: np.ndarray | None = None
        self._dense_b: np.ndarray | None = None
        self._scaler = StandardScaler()

    # -- forward / backward ---------------------------------------------------------

    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        self._lstm_layers = []
        input_size = n_features
        for _ in range(self.layers):
            self._lstm_layers.append(_LSTMLayer(input_size, self.hidden_size, rng))
            input_size = self.hidden_size
        self._dense_w = rng.normal(0.0, 1.0 / np.sqrt(self.hidden_size),
                                   size=(self.hidden_size, 1))
        self._dense_b = np.zeros(1)

    def _scale(self, X: np.ndarray, fit: bool = False) -> np.ndarray:
        windows = as_windows(X)
        n, steps, features = windows.shape
        flat = windows.reshape(n * steps, features)
        flat = self._scaler.fit_transform(flat) if fit else self._scaler.transform(flat)
        return flat.reshape(n, steps, features)

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list]:
        caches = []
        out = X
        for layer in self._lstm_layers:
            out, layer_cache = layer.forward(out)
            caches.append((layer_cache, out))
        last_hidden = out[:, -1, :]
        prediction = (last_hidden @ self._dense_w + self._dense_b)[:, 0]
        return prediction, [caches, last_hidden]

    def _backward(self, X: np.ndarray, cache, error: np.ndarray) -> list[np.ndarray]:
        caches, last_hidden = cache
        n = len(error)
        delta = error[:, None] / n
        grad_dense_w = last_hidden.T @ delta
        grad_dense_b = delta.sum(axis=0)

        d_last = delta @ self._dense_w.T
        steps = X.shape[1]
        d_out = np.zeros((n, steps, self.hidden_size))
        d_out[:, -1, :] = d_last

        layer_grads: list[tuple[np.ndarray, np.ndarray]] = []
        for index in range(len(self._lstm_layers) - 1, -1, -1):
            layer = self._lstm_layers[index]
            layer_cache, _ = caches[index]
            dW, db, d_inputs = layer.backward(d_out, layer_cache)
            layer_grads.insert(0, (dW, db))
            d_out = d_inputs

        grads: list[np.ndarray] = []
        for dW, db in layer_grads:
            grads.extend([dW, db])
        grads.extend([grad_dense_w, grad_dense_b])
        return grads

    # -- public API --------------------------------------------------------------------

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        X = self._scale(X_train, fit=True)
        y = np.asarray(y_train, dtype=float)
        validate_training_inputs(X, y)
        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[2], rng)

        has_val = X_val is not None and y_val is not None and len(y_val) > 0
        X_validation = self._scale(X_val) if has_val else None
        y_validation = np.asarray(y_val, dtype=float) if has_val else None

        params: list[np.ndarray] = []
        for layer in self._lstm_layers:
            params.extend(layer.params())
        params.extend([self._dense_w, self._dense_b])
        optimizer = Adam(params, learning_rate=self.learning_rate)

        best_val = np.inf
        best_params = [p.copy() for p in params]
        stale = 0
        history: list[float] = []
        n_samples = len(y)
        batch = min(self.batch_size, n_samples)
        epochs_run = 0

        for epoch in range(1, self.max_epochs + 1):
            epochs_run = epoch
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                pred, cache = self._forward(X[idx])
                grads = self._backward(X[idx], cache, pred - y[idx])
                grads = clip_gradients(grads, self.grad_clip)
                optimizer.step(grads)

            train_pred, _ = self._forward(X)
            train_loss = mean_squared_error(y, train_pred)
            history.append(train_loss)
            monitored = train_loss
            if has_val:
                val_pred, _ = self._forward(X_validation)
                monitored = mean_squared_error(y_validation, val_pred)
            if monitored < best_val - 1e-9:
                best_val = monitored
                best_params = [p.copy() for p in params]
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        for param, best in zip(params, best_params):
            param[...] = best

        train_pred, _ = self._forward(X)
        val_loss = None
        if has_val:
            val_pred, _ = self._forward(X_validation)
            val_loss = mean_squared_error(y_validation, val_pred)
        return FitResult(
            train_loss=mean_squared_error(y, train_pred),
            val_loss=val_loss,
            epochs_run=epochs_run,
            history=history,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._dense_w is None:
            raise RuntimeError("model has not been fitted")
        X = self._scale(X)
        prediction, _ = self._forward(X)
        return prediction
