"""From-scratch NumPy ML engines for stage-1 performance modelling."""

from .base import FitResult, Regressor
from .cnn import CNNRegressor
from .engines import TABLE_IV_ENGINES, build_model
from .gbt import GradientBoostedTrees
from .linear import LassoRegressor
from .lstm import LSTMRegressor
from .metrics import (
    inference_error,
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    r_squared,
)
from .mlp import MLPRegressor
from .optim import Adam, clip_gradients
from .preprocessing import (
    StandardScaler,
    as_windows,
    flatten_windows,
    make_window_dataset,
)
from .tree import RegressionTree

__all__ = [
    "Regressor",
    "FitResult",
    "LassoRegressor",
    "MLPRegressor",
    "CNNRegressor",
    "LSTMRegressor",
    "GradientBoostedTrees",
    "RegressionTree",
    "build_model",
    "TABLE_IV_ENGINES",
    "Adam",
    "clip_gradients",
    "StandardScaler",
    "flatten_windows",
    "as_windows",
    "make_window_dataset",
    "inference_error",
    "mean_squared_error",
    "mean_absolute_error",
    "pearson_correlation",
    "r_squared",
]
