"""Model factory: build stage-1 engines from the paper's naming convention.

Table IV names its engines ``Lasso``, ``GBT-150``, ``GBT-250``, ``1-MLP-500``,
``1-MLP-2500``, ``4-MLP-500``, ``1-CNN-150``, ``4-CNN-150``, ``1-LSTM-150``,
``1-LSTM-250``, ``1-LSTM-500``, ``4-LSTM-150`` and ``4-LSTM-500``: the prefix
is the number of hidden layers, the suffix the layer width (or tree count for
GBT).  :func:`build_model` parses those names so experiments can sweep engines
exactly as the paper does.
"""

from __future__ import annotations

from .base import Regressor
from .cnn import CNNRegressor
from .gbt import GradientBoostedTrees
from .linear import LassoRegressor
from .lstm import LSTMRegressor
from .mlp import MLPRegressor

#: Engine names evaluated in Table IV, in table order.
TABLE_IV_ENGINES: tuple[str, ...] = (
    "Lasso",
    "1-LSTM-150",
    "1-LSTM-250",
    "1-LSTM-500",
    "4-LSTM-150",
    "4-LSTM-500",
    "1-CNN-150",
    "4-CNN-150",
    "1-MLP-500",
    "1-MLP-2500",
    "4-MLP-500",
    "GBT-150",
    "GBT-250",
)


def build_model(
    name: str,
    seed: int = 0,
    max_epochs: int | None = None,
    patience: int | None = None,
) -> Regressor:
    """Instantiate the engine named *name*.

    Parameters
    ----------
    name:
        Paper-style engine name (see :data:`TABLE_IV_ENGINES`).
    seed:
        Random seed for initialisation/subsampling.
    max_epochs, patience:
        Optional overrides of the neural engines' training budget; scaled-down
        experiments use smaller budgets than the paper's (100-epoch-patience)
        recipe to bound runtime.
    """
    cleaned = name.strip()
    if cleaned.lower() == "lasso":
        return LassoRegressor()

    parts = cleaned.replace("_", "-").split("-")
    if len(parts) == 2 and parts[0].upper() == "GBT":
        return GradientBoostedTrees(n_estimators=_positive_int(parts[1], name),
                                    seed=seed)
    if len(parts) == 3:
        depth = _positive_int(parts[0], name)
        family = parts[1].upper()
        size = _positive_int(parts[2], name)
        kwargs: dict[str, object] = {"seed": seed}
        if max_epochs is not None:
            kwargs["max_epochs"] = max_epochs
        if patience is not None:
            kwargs["patience"] = patience
        if family == "MLP":
            return MLPRegressor(hidden_layers=depth, hidden_size=size, **kwargs)
        if family == "CNN":
            return CNNRegressor(conv_layers=depth, filters=size, **kwargs)
        if family == "LSTM":
            return LSTMRegressor(layers=depth, hidden_size=size, **kwargs)
    raise ValueError(
        f"unrecognised engine name {name!r}; expected e.g. 'GBT-250', "
        "'1-MLP-500', '1-LSTM-150', '4-CNN-150' or 'Lasso'"
    )


def _positive_int(text: str, name: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"cannot parse engine name {name!r}") from None
    if value <= 0:
        raise ValueError(f"engine name {name!r} must use positive sizes")
    return value
