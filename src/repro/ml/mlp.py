"""Multi-layer perceptron regressor trained with Adam (Keras MLP stand-in).

Names follow the paper's convention: ``1-MLP-500`` is one hidden layer of 500
neurons, ``4-MLP-500`` is four hidden layers, and so on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import FitResult, Regressor, validate_training_inputs
from .metrics import mean_squared_error
from .optim import Adam, clip_gradients
from .preprocessing import StandardScaler, flatten_windows


class MLPRegressor(Regressor):
    """Fully-connected ReLU network with a linear scalar output."""

    def __init__(
        self,
        hidden_layers: int = 1,
        hidden_size: int = 500,
        learning_rate: float = 1e-3,
        max_epochs: int = 300,
        patience: int = 100,
        batch_size: int = 32,
        grad_clip: float = 1.0,
        seed: int = 0,
    ) -> None:
        if hidden_layers < 1 or hidden_size < 1:
            raise ValueError("hidden_layers and hidden_size must be positive")
        self.hidden_layers = hidden_layers
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.seed = seed
        self.name = f"{hidden_layers}-MLP-{hidden_size}"
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._scaler = StandardScaler()

    # -- network helpers ---------------------------------------------------------

    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features] + [self.hidden_size] * self.hidden_layers + [1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        out = X
        last = len(self._weights) - 1
        for index, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if index < last:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return out[:, 0], activations

    def _backward(
        self, activations: list[np.ndarray], error: np.ndarray
    ) -> list[np.ndarray]:
        """Return gradients ordered [W0, b0, W1, b1, ...]."""
        grads: list[np.ndarray] = []
        delta = error[:, None]  # dLoss/d(output) for the linear output layer
        n = len(error)
        for index in range(len(self._weights) - 1, -1, -1):
            inputs = activations[index]
            grad_w = inputs.T @ delta / n
            grad_b = delta.mean(axis=0)
            grads.insert(0, grad_b)
            grads.insert(0, grad_w)
            if index > 0:
                delta = delta @ self._weights[index].T
                delta = delta * (activations[index] > 0.0)
        return grads

    # -- public API ----------------------------------------------------------------

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        X = flatten_windows(X_train)
        y = np.asarray(y_train, dtype=float)
        validate_training_inputs(X, y)
        X = self._scaler.fit_transform(X)
        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[1], rng)

        has_val = X_val is not None and y_val is not None and len(y_val) > 0
        X_validation = (
            self._scaler.transform(flatten_windows(X_val)) if has_val else None
        )
        y_validation = np.asarray(y_val, dtype=float) if has_val else None

        params = []
        for W, b in zip(self._weights, self._biases):
            params.extend([W, b])
        optimizer = Adam(params, learning_rate=self.learning_rate)

        best_val = np.inf
        best_params = [p.copy() for p in params]
        epochs_without_improvement = 0
        history: list[float] = []
        n_samples = len(y)
        batch = min(self.batch_size, n_samples)
        epochs_run = 0

        for epoch in range(1, self.max_epochs + 1):
            epochs_run = epoch
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                pred, activations = self._forward(X[idx])
                error = pred - y[idx]
                grads = self._backward(activations, error)
                grads = clip_gradients(grads, self.grad_clip)
                optimizer.step(grads)

            train_pred, _ = self._forward(X)
            train_loss = mean_squared_error(y, train_pred)
            history.append(train_loss)
            monitored = train_loss
            if has_val:
                val_pred, _ = self._forward(X_validation)
                monitored = mean_squared_error(y_validation, val_pred)
            if monitored < best_val - 1e-9:
                best_val = monitored
                best_params = [p.copy() for p in params]
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break

        # Restore the best snapshot (early-stopping semantics).
        for param, best in zip(params, best_params):
            param[...] = best

        train_pred, _ = self._forward(X)
        val_loss = None
        if has_val:
            val_pred, _ = self._forward(X_validation)
            val_loss = mean_squared_error(y_validation, val_pred)
        return FitResult(
            train_loss=mean_squared_error(y, train_pred),
            val_loss=val_loss,
            epochs_run=epochs_run,
            history=history,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("model has not been fitted")
        X = self._scaler.transform(flatten_windows(X))
        prediction, _ = self._forward(X)
        return prediction
