"""1-D convolutional network regressor (Keras CNN stand-in).

Following the paper (and its references Eren et al. / Lee et al.), the per-step
feature vector is treated as a 1-D signal: convolution layers slide along the
feature dimension, followed by global average pooling and a linear output.
``1-CNN-150`` means one convolution layer with 150 filters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import FitResult, Regressor, validate_training_inputs
from .metrics import mean_squared_error
from .optim import Adam, clip_gradients
from .preprocessing import StandardScaler, flatten_windows


def _im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    """(n, length, channels) -> (n, length - k + 1, k * channels) patches."""
    n, length, channels = x.shape
    out_length = length - kernel + 1
    patches = np.empty((n, out_length, kernel * channels))
    for offset in range(kernel):
        patches[:, :, offset * channels : (offset + 1) * channels] = x[
            :, offset : offset + out_length, :
        ]
    return patches


class CNNRegressor(Regressor):
    """Stacked 1-D convolutions + global average pooling + linear output."""

    def __init__(
        self,
        conv_layers: int = 1,
        filters: int = 150,
        kernel_size: int = 3,
        learning_rate: float = 1e-3,
        max_epochs: int = 200,
        patience: int = 100,
        batch_size: int = 32,
        grad_clip: float = 1.0,
        seed: int = 0,
    ) -> None:
        if conv_layers < 1 or filters < 1 or kernel_size < 1:
            raise ValueError("conv_layers, filters and kernel_size must be positive")
        self.conv_layers = conv_layers
        self.filters = filters
        self.kernel_size = kernel_size
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.patience = patience
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.seed = seed
        self.name = f"{conv_layers}-CNN-{filters}"
        self._conv_weights: list[np.ndarray] = []
        self._conv_biases: list[np.ndarray] = []
        self._dense_w: np.ndarray | None = None
        self._dense_b: np.ndarray | None = None
        self._scaler = StandardScaler()
        self._input_length = 0

    # -- construction / forward / backward ---------------------------------------

    def _init_params(self, length: int, rng: np.random.Generator) -> None:
        self._input_length = length
        self._conv_weights = []
        self._conv_biases = []
        in_channels = 1
        current_length = length
        for _ in range(self.conv_layers):
            kernel = min(self.kernel_size, current_length)
            fan_in = kernel * in_channels
            self._conv_weights.append(
                rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, self.filters))
            )
            self._conv_biases.append(np.zeros(self.filters))
            current_length = current_length - kernel + 1
            in_channels = self.filters
        self._dense_w = rng.normal(0.0, np.sqrt(2.0 / self.filters),
                                   size=(self.filters, 1))
        self._dense_b = np.zeros(1)

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, dict]:
        cache: dict = {"inputs": [], "patches": [], "pre_relu": []}
        out = X[:, :, None]  # (n, length, 1)
        for W, b in zip(self._conv_weights, self._conv_biases):
            kernel = W.shape[0] // out.shape[2]
            patches = _im2col(out, kernel)
            cache["inputs"].append(out)
            cache["patches"].append(patches)
            pre = patches @ W + b
            cache["pre_relu"].append(pre)
            out = np.maximum(pre, 0.0)
        pooled = out.mean(axis=1)  # (n, filters)
        cache["pooled_input"] = out
        cache["pooled"] = pooled
        prediction = (pooled @ self._dense_w + self._dense_b)[:, 0]
        return prediction, cache

    def _backward(self, cache: dict, error: np.ndarray) -> list[np.ndarray]:
        n = len(error)
        pooled = cache["pooled"]
        delta_out = error[:, None] / n
        grad_dense_w = pooled.T @ delta_out
        grad_dense_b = delta_out.sum(axis=0)
        delta_pooled = delta_out @ self._dense_w.T  # (n, filters)

        conv_out = cache["pooled_input"]
        positions = conv_out.shape[1]
        delta = np.repeat(delta_pooled[:, None, :], positions, axis=1) / positions

        conv_w_grads: list[np.ndarray] = []
        conv_b_grads: list[np.ndarray] = []
        for layer in range(self.conv_layers - 1, -1, -1):
            pre = cache["pre_relu"][layer]
            patches = cache["patches"][layer]
            delta = delta * (pre > 0.0)
            W = self._conv_weights[layer]
            flat_delta = delta.reshape(-1, delta.shape[2])
            flat_patches = patches.reshape(-1, patches.shape[2])
            conv_w_grads.insert(0, flat_patches.T @ flat_delta)
            conv_b_grads.insert(0, flat_delta.sum(axis=0))
            if layer > 0:
                # Propagate into the previous layer's output via col2im.
                d_patches = delta @ W.T  # (n, out_len, k*C_in)
                inputs = cache["inputs"][layer]
                kernel = W.shape[0] // inputs.shape[2]
                d_input = np.zeros_like(inputs)
                out_len = d_patches.shape[1]
                channels = inputs.shape[2]
                for offset in range(kernel):
                    d_input[:, offset : offset + out_len, :] += d_patches[
                        :, :, offset * channels : (offset + 1) * channels
                    ]
                delta = d_input

        grads: list[np.ndarray] = []
        for gw, gb in zip(conv_w_grads, conv_b_grads):
            grads.extend([gw, gb])
        grads.extend([grad_dense_w, grad_dense_b])
        return grads

    # -- public API -----------------------------------------------------------------

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        X = flatten_windows(X_train)
        y = np.asarray(y_train, dtype=float)
        validate_training_inputs(X, y)
        X = self._scaler.fit_transform(X)
        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[1], rng)

        has_val = X_val is not None and y_val is not None and len(y_val) > 0
        X_validation = (
            self._scaler.transform(flatten_windows(X_val)) if has_val else None
        )
        y_validation = np.asarray(y_val, dtype=float) if has_val else None

        params: list[np.ndarray] = []
        for W, b in zip(self._conv_weights, self._conv_biases):
            params.extend([W, b])
        params.extend([self._dense_w, self._dense_b])
        optimizer = Adam(params, learning_rate=self.learning_rate)

        best_val = np.inf
        best_params = [p.copy() for p in params]
        stale = 0
        history: list[float] = []
        n_samples = len(y)
        batch = min(self.batch_size, n_samples)
        epochs_run = 0

        for epoch in range(1, self.max_epochs + 1):
            epochs_run = epoch
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                pred, cache = self._forward(X[idx])
                grads = self._backward(cache, pred - y[idx])
                grads = clip_gradients(grads, self.grad_clip)
                optimizer.step(grads)

            train_pred, _ = self._forward(X)
            train_loss = mean_squared_error(y, train_pred)
            history.append(train_loss)
            monitored = train_loss
            if has_val:
                val_pred, _ = self._forward(X_validation)
                monitored = mean_squared_error(y_validation, val_pred)
            if monitored < best_val - 1e-9:
                best_val = monitored
                best_params = [p.copy() for p in params]
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        for param, best in zip(params, best_params):
            param[...] = best

        train_pred, _ = self._forward(X)
        val_loss = None
        if has_val:
            val_pred, _ = self._forward(X_validation)
            val_loss = mean_squared_error(y_validation, val_pred)
        return FitResult(
            train_loss=mean_squared_error(y, train_pred),
            val_loss=val_loss,
            epochs_run=epochs_run,
            history=history,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._dense_w is None:
            raise RuntimeError("model has not been fitted")
        X = self._scaler.transform(flatten_windows(X))
        prediction, _ = self._forward(X)
        return prediction
