"""Feature preprocessing shared by the ML engines."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean, unit-variance feature scaling with constant-column safety."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("StandardScaler expects a 2-D array")
        if len(X) == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler has not been fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def flatten_windows(X: np.ndarray) -> np.ndarray:
    """Flatten a (samples, window, features) tensor into (samples, w*f).

    2-D input passes through unchanged, so engines accept either layout.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 2:
        return X
    if X.ndim == 3:
        return X.reshape(X.shape[0], -1)
    raise ValueError(f"expected 2-D or 3-D features, got shape {X.shape}")


def as_windows(X: np.ndarray) -> np.ndarray:
    """Ensure the (samples, window, features) layout (window=1 for 2-D input)."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 3:
        return X
    if X.ndim == 2:
        return X[:, None, :]
    raise ValueError(f"expected 2-D or 3-D features, got shape {X.shape}")


def make_window_dataset(
    features: np.ndarray, targets: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build sliding-window samples from one probe's time series.

    Following Section III-C, the model input at time step ``t_i`` is the
    feature data of steps ``t_{i-w+1} ... t_i`` and the target is the IPC at
    ``t_i``.  The first ``w - 1`` steps cannot form a full window and are
    dropped.
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if features.ndim != 2:
        raise ValueError("features must be (steps, num_features)")
    if len(features) != len(targets):
        raise ValueError("features and targets must have the same length")
    if window <= 0:
        raise ValueError("window must be positive")
    steps = len(features)
    if steps < window:
        return np.empty((0, window, features.shape[1])), np.empty((0,))
    X = np.stack([features[i - window + 1 : i + 1] for i in range(window - 1, steps)])
    y = targets[window - 1 :].copy()
    return X, y
