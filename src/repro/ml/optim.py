"""Adam optimiser and gradient clipping used by the neural-network engines."""

from __future__ import annotations

import numpy as np


def clip_gradients(gradients: list[np.ndarray], max_norm: float) -> list[np.ndarray]:
    """Clip the global L2 norm of *gradients* to *max_norm*.

    The paper enforces gradient clipping to avoid the gradient-explosion issue
    when training its recurrent networks; the same safeguard is applied to all
    neural engines here.
    """
    if max_norm <= 0:
        return gradients
    total = np.sqrt(sum(float(np.sum(g ** 2)) for g in gradients))
    if total <= max_norm or total == 0.0:
        return gradients
    scale = max_norm / total
    return [g * scale for g in gradients]


class Adam:
    """Adam (Kingma & Ba, 2015) over a list of parameter arrays."""

    def __init__(
        self,
        params: list[np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.params = params
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``self.params``."""
        if len(gradients) != len(self.params):
            raise ValueError("gradient list does not match parameter list")
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, grad, m, v in zip(self.params, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad ** 2)
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
