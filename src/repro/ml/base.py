"""Common interface for the stage-1 regression engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class FitResult:
    """Training diagnostics returned by :meth:`Regressor.fit`."""

    train_loss: float
    val_loss: Optional[float] = None
    epochs_run: int = 0
    history: list[float] = field(default_factory=list)


class Regressor:
    """Base class for every IPC/AMAT inference engine.

    Inputs are ``(n_samples, window, n_features)`` tensors (a 2-D matrix is
    accepted and treated as window size 1).  Engines that ignore temporal
    structure flatten the window dimension.
    """

    #: Short name used in result tables (overridden per instance).
    name: str = "regressor"

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> FitResult:
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def validate_training_inputs(X: np.ndarray, y: np.ndarray) -> None:
    """Shared sanity checks for ``fit`` implementations."""
    if len(X) == 0:
        raise ValueError("training data must not be empty")
    if len(X) != len(y):
        raise ValueError(f"X has {len(X)} samples but y has {len(y)}")
    if not np.all(np.isfinite(np.asarray(y, dtype=float))):
        raise ValueError("training targets contain non-finite values")
