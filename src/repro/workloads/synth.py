"""Materialisation of :class:`~repro.workloads.program.WorkloadSpec` objects.

``build_program`` turns the declarative block/phase specs into a
:class:`SyntheticProgram`: a set of static basic blocks whose instructions
have concrete opcodes, register operands and program-counter values.  The
dynamic behaviour (branch outcomes, memory addresses, phase interleaving) is
produced later by :mod:`repro.workloads.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .isa import (
    DEFAULT_INSTR_BYTES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    Opcode,
    is_branch,
    is_floating_point,
    is_memory,
)
from .program import BlockSpec, PhaseSpec, WorkloadSpec

#: Virtual-address spacing between the code regions of consecutive blocks.
_CODE_REGION_STRIDE = 0x1000
#: Base virtual address of the code segment.
_CODE_BASE = 0x0040_0000
#: Base virtual address of the data segment.
_DATA_BASE = 0x1000_0000
#: Virtual-address spacing between the data regions of consecutive blocks.
_DATA_REGION_STRIDE = 0x40_0000


@dataclass(frozen=True)
class StaticInstr:
    """One static instruction inside a :class:`StaticBlock`."""

    opcode: Opcode
    srcs: tuple[int, ...]
    dest: Optional[int]
    pc: int
    size: int = DEFAULT_INSTR_BYTES

    @property
    def is_mem(self) -> bool:
        return is_memory(self.opcode)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.opcode)


@dataclass
class StaticBlock:
    """A materialised basic block: spec plus concrete static instructions."""

    block_id: int
    spec: BlockSpec
    instrs: list[StaticInstr]
    code_base: int
    data_base: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_instrs(self) -> int:
        return len(self.instrs)

    def opcode_counts(self) -> dict[Opcode, int]:
        """Histogram of opcodes over the static instructions of this block."""
        counts: dict[Opcode, int] = {}
        for instr in self.instrs:
            counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        return counts


@dataclass
class SyntheticProgram:
    """A fully materialised synthetic benchmark."""

    spec: WorkloadSpec
    phases: list[tuple[PhaseSpec, list[StaticBlock]]]
    seed: int
    blocks_by_id: dict[int, StaticBlock] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.blocks_by_id:
            self.blocks_by_id = {
                b.block_id: b for _, blocks in self.phases for b in blocks
            }

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_blocks(self) -> int:
        return len(self.blocks_by_id)

    def block(self, block_id: int) -> StaticBlock:
        return self.blocks_by_id[block_id]

    def all_blocks(self) -> list[StaticBlock]:
        return [b for _, blocks in self.phases for b in blocks]


def _pick_sources(
    rng: np.random.Generator,
    history: list[int],
    fallback_pool: tuple[int, int],
    dep_distance: float,
    count: int,
) -> tuple[int, ...]:
    """Pick *count* source registers, preferring recently written ones.

    The producer-consumer distance is drawn from a geometric distribution with
    mean ``dep_distance`` which controls how much instruction-level
    parallelism the block exposes.
    """
    srcs = []
    lo, hi = fallback_pool
    for _ in range(count):
        if history and rng.random() < 0.85:
            distance = int(rng.geometric(1.0 / max(dep_distance, 1.0)))
            idx = max(0, len(history) - distance)
            srcs.append(history[idx])
        else:
            srcs.append(int(rng.integers(lo, hi)))
    return tuple(srcs)


def _dest_register(rng: np.random.Generator, opcode: Opcode) -> Optional[int]:
    """Choose a destination register appropriate for *opcode*."""
    if opcode is Opcode.STORE or is_branch(opcode) or opcode is Opcode.NOP:
        return None
    if is_floating_point(opcode):
        return int(rng.integers(NUM_INT_REGS, NUM_INT_REGS + NUM_FP_REGS))
    return int(rng.integers(0, NUM_INT_REGS))


def _build_block(
    block_id: int, spec: BlockSpec, rng: np.random.Generator
) -> StaticBlock:
    """Materialise one basic block from its spec."""
    code_base = _CODE_BASE + block_id * _CODE_REGION_STRIDE
    data_base = _DATA_BASE + block_id * _DATA_REGION_STRIDE

    opcodes = list(spec.mix.keys())
    weights = np.array([spec.mix[op] for op in opcodes], dtype=float)
    weights /= weights.sum()

    int_history: list[int] = []
    fp_history: list[int] = []
    instrs: list[StaticInstr] = []
    pc = code_base

    body_ops = rng.choice(len(opcodes), size=spec.length, p=weights)
    for choice in body_ops:
        opcode = opcodes[int(choice)]
        if is_branch(opcode):
            # Control flow inside the body is folded into the terminating
            # branch; represent it as a compare feeding that branch instead.
            opcode = Opcode.CMP
        if is_floating_point(opcode):
            history, pool = fp_history, (NUM_INT_REGS, NUM_INT_REGS + NUM_FP_REGS)
        else:
            history, pool = int_history, (0, NUM_INT_REGS)
        n_src = 1 if opcode in (Opcode.MOV, Opcode.LOAD, Opcode.POPCNT) else 2
        srcs = _pick_sources(rng, history, pool, spec.dep_distance, n_src)
        dest = _dest_register(rng, opcode)
        if dest is not None:
            history.append(dest)
        instrs.append(StaticInstr(opcode=opcode, srcs=srcs, dest=dest, pc=pc))
        pc += DEFAULT_INSTR_BYTES

    if spec.has_branch:
        srcs = _pick_sources(rng, int_history, (0, NUM_INT_REGS), spec.dep_distance, 1)
        instrs.append(StaticInstr(opcode=Opcode.BRANCH, srcs=srcs, dest=None, pc=pc))

    return StaticBlock(
        block_id=block_id,
        spec=spec,
        instrs=instrs,
        code_base=code_base,
        data_base=data_base,
    )


def build_program(spec: WorkloadSpec, seed: int = 0) -> SyntheticProgram:
    """Materialise *spec* into a :class:`SyntheticProgram`.

    The same ``(spec, seed)`` pair always yields an identical program.
    """
    rng = np.random.default_rng(seed)
    phases: list[tuple[PhaseSpec, list[StaticBlock]]] = []
    block_id = 0
    for phase in spec.phases:
        blocks = []
        for block_spec in phase.blocks:
            blocks.append(_build_block(block_id, block_spec, rng))
            block_id += 1
        phases.append((phase, blocks))
    return SyntheticProgram(spec=spec, phases=phases, seed=seed)
