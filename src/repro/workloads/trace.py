"""Dynamic-trace generation for synthetic programs.

The :class:`TraceGenerator` walks a :class:`~repro.workloads.synth.SyntheticProgram`
phase by phase and emits a stream of :class:`~repro.workloads.isa.MicroOp`
objects with concrete memory addresses and branch outcomes.  Generation is
fully deterministic given the program and a seed, which is what lets SimPoint
probes be re-extracted reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .isa import MicroOp, Opcode
from .program import PhaseSpec
from .synth import StaticBlock, SyntheticProgram


@dataclass
class _BlockDynamicState:
    """Per-block mutable state used while generating dynamic instructions."""

    mem_cursor: int = 0
    branch_counter: int = 0


class _BranchModel:
    """Outcome model for a block's terminating branch.

    With probability ``predictability`` the outcome follows a fixed periodic
    pattern whose duty cycle matches ``taken_prob`` (a loop-like, predictable
    branch); otherwise it is an independent Bernoulli draw (a data-dependent,
    hard-to-predict branch).
    """

    def __init__(self, taken_prob: float, predictability: float) -> None:
        self.taken_prob = taken_prob
        self.predictability = predictability
        if taken_prob >= 0.5:
            self.period = max(2, round(1.0 / max(1.0 - taken_prob, 0.02)))
            self.pattern_taken_on_tick = False
        else:
            self.period = max(2, round(1.0 / max(taken_prob, 0.02)))
            self.pattern_taken_on_tick = True

    def outcome(self, counter: int, rng: np.random.Generator) -> bool:
        if rng.random() < self.predictability:
            on_tick = (counter % self.period) == self.period - 1
            return on_tick if self.pattern_taken_on_tick else not on_tick
        return bool(rng.random() < self.taken_prob)


class TraceGenerator:
    """Generates dynamic instruction traces from a synthetic program."""

    def __init__(self, program: SyntheticProgram, seed: int = 0) -> None:
        self.program = program
        self.seed = seed
        self._branch_models = {
            block.block_id: _BranchModel(
                block.spec.branch_taken_prob, block.spec.branch_predictability
            )
            for block in program.all_blocks()
        }

    def generate(self, num_instructions: int) -> list[MicroOp]:
        """Generate approximately *num_instructions* dynamic micro-ops.

        Phases receive a share of the budget proportional to their weights and
        are emitted in program order.  The returned trace may be slightly
        longer than requested because blocks are never truncated mid-way.
        """
        if num_instructions <= 0:
            raise ValueError("num_instructions must be positive")
        rng = np.random.default_rng(self.seed)
        weights = self.program.spec.phase_weights()
        trace: list[MicroOp] = []
        for (phase, blocks), weight in zip(self.program.phases, weights):
            budget = max(1, int(round(num_instructions * weight)))
            self._emit_phase(phase, blocks, budget, rng, trace)
        return trace

    def _emit_phase(
        self,
        phase: PhaseSpec,
        blocks: list[StaticBlock],
        budget: int,
        rng: np.random.Generator,
        out: list[MicroOp],
    ) -> None:
        """Emit one phase worth of dynamic instructions into *out*."""
        states = {b.block_id: _BlockDynamicState() for b in blocks}
        emitted = 0
        # Pre-compute possible indirect-branch targets for this phase: block
        # entry points, which is what an indirect jump table would contain.
        entry_points = [b.code_base for b in blocks]
        while emitted < budget:
            for index, block in enumerate(blocks):
                probability = phase.probability_of(index)
                if probability < 1.0 and rng.random() > probability:
                    continue
                emitted += self._emit_block(
                    block, states[block.block_id], rng, entry_points, out
                )
            if emitted == 0:
                # Degenerate phase where every block was skipped; force the
                # first block so the generator always terminates.
                emitted += self._emit_block(
                    blocks[0], states[blocks[0].block_id], rng, entry_points, out
                )

    def _emit_block(
        self,
        block: StaticBlock,
        state: _BlockDynamicState,
        rng: np.random.Generator,
        entry_points: list[int],
        out: list[MicroOp],
    ) -> int:
        """Emit one dynamic execution of *block*; returns instructions emitted."""
        spec = block.spec
        working_set = max(spec.working_set, spec.stride)
        for instr in block.instrs:
            address = None
            taken = None
            target = None
            indirect = False
            if instr.is_mem:
                draw = rng.random()
                if spec.hot_fraction and draw < spec.hot_fraction:
                    hot_span = max(8, min(spec.hot_region_bytes, working_set))
                    offset = int(rng.integers(0, hot_span // 8)) * 8
                elif draw < spec.hot_fraction + spec.random_access_fraction:
                    offset = int(rng.integers(0, working_set // 8)) * 8
                else:
                    offset = state.mem_cursor
                    state.mem_cursor = (state.mem_cursor + spec.stride) % working_set
                address = block.data_base + offset
            elif instr.is_branch:
                model = self._branch_models[block.block_id]
                taken = model.outcome(state.branch_counter, rng)
                state.branch_counter += 1
                indirect = bool(rng.random() < spec.indirect_branch_prob)
                if indirect:
                    target = entry_points[int(rng.integers(0, len(entry_points)))]
                else:
                    # Backward branch to the top of the block when taken,
                    # fall-through otherwise.
                    target = block.code_base if taken else instr.pc + instr.size
            out.append(
                MicroOp(
                    opcode=instr.opcode,
                    srcs=instr.srcs,
                    dest=instr.dest,
                    pc=instr.pc,
                    address=address,
                    taken=taken,
                    target=target,
                    indirect=indirect,
                    size=instr.size,
                    block_id=block.block_id,
                )
            )
        return len(block.instrs)


def split_into_intervals(
    trace: list[MicroOp], interval_size: int
) -> list[list[MicroOp]]:
    """Split *trace* into consecutive intervals of *interval_size* instructions.

    The final partial interval is dropped when it is shorter than half the
    interval size, mirroring how SimPoint discards incomplete intervals.
    """
    if interval_size <= 0:
        raise ValueError("interval_size must be positive")
    intervals = [
        trace[i : i + interval_size] for i in range(0, len(trace), interval_size)
    ]
    if intervals and len(intervals[-1]) < interval_size // 2:
        intervals.pop()
    return intervals
