"""Pre-decoded trace representation for the simulation hot path.

Every simulation of a probe re-derives the same per-micro-op scalars — the
functional-unit class (a dict lookup behind the ``MicroOp.op_class``
property), memory/branch/destination flags, source register tuples — once per
*(microarchitecture x bug)* combination, even though they are pure functions
of the trace.  A :class:`DecodedTrace` computes them exactly once per trace
and caches the result, so the :class:`~repro.coresim.pipeline.O3Pipeline`
inner loop touches only plain ints and tuples.

The second job of this module is worker shipping: pickling a list of
``MicroOp`` dataclass instances is slow and fat.  A ``DecodedTrace`` pickles
as a dict of flat ``numpy`` columns (one int64 array per field plus validity
masks), several times smaller and far cheaper to serialise; micro-op objects
are rebuilt lazily on first use in the receiving process.

``decode_trace`` memoises by object identity, mirroring
:class:`~repro.runtime.job.TraceRegistry`: repeated simulations of the same
trace list (the common case — every design and every bug re-runs the same
probes) decode once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .isa import OPCODE_CLASS, MicroOp, Opcode

#: Per-op scalar tuple consumed by the pipeline: (uop, op_class, srcs, dest,
#: address, taken).  ``op_class`` is a plain int (see
#: :class:`~repro.workloads.isa.OpClass`) so stage code compares integers
#: instead of calling the ``MicroOp.op_class`` property.
PipelineOp = tuple

#: int() of every OpClass, keyed by opcode value, computed once at import.
_OPCODE_TO_CLASS_INT: dict[Opcode, int] = {
    opcode: int(op_class) for opcode, op_class in OPCODE_CLASS.items()
}


class DecodedTrace:
    """A dynamic trace with per-op scalars precomputed and interned.

    Construct via :meth:`from_uops` (or the :func:`decode_trace` memo).  The
    instance behaves like a read-only sequence of :class:`MicroOp`; the
    simulators additionally read :attr:`pipeline_ops` (the precomputed scalar
    tuples) and :attr:`digest` (the content hash used as the
    :class:`~repro.runtime.job.SimulationJob` trace id).
    """

    __slots__ = ("_uops", "_pipeline_ops", "_columns", "_digest", "__weakref__")

    def __init__(self) -> None:
        self._uops: list[MicroOp] | None = None
        self._pipeline_ops: list[PipelineOp] | None = None
        self._columns: dict[str, np.ndarray] | None = None
        self._digest: str | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_uops(cls, uops: Iterable[MicroOp]) -> "DecodedTrace":
        """Decode *uops* (any iterable of micro-ops) into a trace."""
        decoded = cls()
        decoded._uops = list(uops)
        return decoded

    # -- sequence protocol -----------------------------------------------------

    @property
    def uops(self) -> list[MicroOp]:
        """The micro-op objects, rebuilt from columns after unpickling."""
        if self._uops is None:
            self._uops = _columns_to_uops(self._columns)
        return self._uops

    def __len__(self) -> int:
        if self._uops is not None:
            return len(self._uops)
        return int(self._columns["opcode"].shape[0])

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    def __getitem__(self, index):
        return self.uops[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DecodedTrace {len(self)} instrs>"

    # -- hot-path views --------------------------------------------------------

    @property
    def pipeline_ops(self) -> list[PipelineOp]:
        """Per-op ``(uop, op_class, srcs, dest, address, taken)`` tuples."""
        if self._pipeline_ops is None:
            class_of = _OPCODE_TO_CLASS_INT
            self._pipeline_ops = [
                (u, class_of[u.opcode], u.srcs, u.dest, u.address, u.taken)
                for u in self.uops
            ]
        return self._pipeline_ops

    @property
    def digest(self) -> str:
        """Content hash; identical to ``trace_digest`` of the micro-op list."""
        if self._digest is None:
            from ..runtime.job import trace_digest

            self._digest = trace_digest(self.uops)
        return self._digest

    # -- compact pickling ------------------------------------------------------

    @property
    def columns(self) -> dict[str, np.ndarray]:
        """Column-array encoding (built on demand; used for pickling)."""
        if self._columns is None:
            self._columns = _uops_to_columns(self.uops)
        return self._columns

    def nbytes(self) -> int:
        """Approximate serialised size of the column encoding."""
        return sum(int(a.nbytes) for a in self.columns.values())

    def __getstate__(self) -> dict:
        return {"columns": self.columns, "digest": self._digest}

    def __setstate__(self, state: dict) -> None:
        self._uops = None
        self._pipeline_ops = None
        self._columns = state["columns"]
        self._digest = state["digest"]


def _uops_to_columns(uops: Sequence[MicroOp]) -> dict[str, np.ndarray]:
    """Flatten micro-ops into int64 columns with validity masks.

    Optional fields (dest/address/taken/target) carry a parallel mask so any
    integer value — including 0 and negatives — round-trips exactly.
    """
    n = len(uops)
    opcode = np.zeros(n, dtype=np.int64)
    dest = np.zeros(n, dtype=np.int64)
    has_dest = np.zeros(n, dtype=np.uint8)
    pc = np.zeros(n, dtype=np.int64)
    address = np.zeros(n, dtype=np.int64)
    has_address = np.zeros(n, dtype=np.uint8)
    taken = np.zeros(n, dtype=np.int8)  # -1 none, 0 not-taken, 1 taken
    target = np.zeros(n, dtype=np.int64)
    has_target = np.zeros(n, dtype=np.uint8)
    indirect = np.zeros(n, dtype=np.uint8)
    size = np.zeros(n, dtype=np.int64)
    block_id = np.zeros(n, dtype=np.int64)
    srcs_flat: list[int] = []
    srcs_offset = np.zeros(n + 1, dtype=np.int64)

    for i, u in enumerate(uops):
        opcode[i] = int(u.opcode)
        if u.dest is not None:
            dest[i] = u.dest
            has_dest[i] = 1
        pc[i] = u.pc
        if u.address is not None:
            address[i] = u.address
            has_address[i] = 1
        taken[i] = -1 if u.taken is None else int(bool(u.taken))
        if u.target is not None:
            target[i] = u.target
            has_target[i] = 1
        indirect[i] = 1 if u.indirect else 0
        size[i] = u.size
        block_id[i] = u.block_id
        srcs_flat.extend(u.srcs)
        srcs_offset[i + 1] = len(srcs_flat)

    return {
        "opcode": _shrink(opcode),
        "dest": _shrink(dest),
        "has_dest": has_dest,
        "pc": _shrink(pc),
        "address": _shrink(address),
        "has_address": has_address,
        "taken": taken,
        "target": _shrink(target),
        "has_target": has_target,
        "indirect": indirect,
        "size": _shrink(size),
        "block_id": _shrink(block_id),
        "srcs_flat": _shrink(np.array(srcs_flat, dtype=np.int64)),
        "srcs_offset": _shrink(srcs_offset),
    }


def _shrink(array: np.ndarray) -> np.ndarray:
    """Losslessly downcast an int64 column to the narrowest dtype that fits."""
    for dtype in (np.int8, np.int16, np.int32):
        if array.size == 0 or (
            array.min() >= np.iinfo(dtype).min and array.max() <= np.iinfo(dtype).max
        ):
            return array.astype(dtype)
    return array


def _columns_to_uops(columns: dict[str, np.ndarray]) -> list[MicroOp]:
    """Rebuild the micro-op objects from a column encoding."""
    opcode = columns["opcode"].tolist()
    dest = columns["dest"].tolist()
    has_dest = columns["has_dest"].tolist()
    pc = columns["pc"].tolist()
    address = columns["address"].tolist()
    has_address = columns["has_address"].tolist()
    taken = columns["taken"].tolist()
    target = columns["target"].tolist()
    has_target = columns["has_target"].tolist()
    indirect = columns["indirect"].tolist()
    size = columns["size"].tolist()
    block_id = columns["block_id"].tolist()
    srcs_flat = columns["srcs_flat"].tolist()
    srcs_offset = columns["srcs_offset"].tolist()
    return [
        MicroOp(
            opcode=Opcode(opcode[i]),
            srcs=tuple(srcs_flat[srcs_offset[i]:srcs_offset[i + 1]]),
            dest=dest[i] if has_dest[i] else None,
            pc=pc[i],
            address=address[i] if has_address[i] else None,
            taken=None if taken[i] < 0 else bool(taken[i]),
            target=target[i] if has_target[i] else None,
            indirect=bool(indirect[i]),
            size=size[i],
            block_id=block_id[i],
        )
        for i in range(len(opcode))
    ]


# -- identity-memoised decoding -----------------------------------------------

#: Strong-reference identity memo (id -> (trace, decoded)); the strong
#: reference pins each memoised list's object id so a garbage-collected trace
#: can never alias a stale entry onto a recycled id.  Bounded FIFO so
#: pathological callers cannot leak unboundedly.
_DECODE_MEMO: dict[int, tuple[object, DecodedTrace]] = {}
_DECODE_MEMO_MAX = 512


def decode_trace(trace: "Sequence[MicroOp] | DecodedTrace") -> DecodedTrace:
    """Return *trace* as a :class:`DecodedTrace`, decoding at most once.

    ``DecodedTrace`` inputs pass straight through; lists are decoded and
    memoised by object identity, so every simulator call on the same probe
    trace shares one decode.
    """
    if isinstance(trace, DecodedTrace):
        return trace
    key = id(trace)
    hit = _DECODE_MEMO.get(key)
    if hit is not None and hit[0] is trace:
        return hit[1]
    decoded = DecodedTrace.from_uops(trace)
    if len(_DECODE_MEMO) >= _DECODE_MEMO_MAX:
        _DECODE_MEMO.pop(next(iter(_DECODE_MEMO)))
    _DECODE_MEMO[key] = (trace, decoded)
    return decoded


def as_uops(trace: "Sequence[MicroOp] | DecodedTrace") -> list[MicroOp]:
    """A plain micro-op list view of *trace* (no copy for lists)."""
    if isinstance(trace, DecodedTrace):
        return trace.uops
    if isinstance(trace, list):
        return trace
    return list(trace)
