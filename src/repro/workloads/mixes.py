"""MPKI-ordered multi-program workload mixes (mix1–mix7).

Multi-program *mixes* are the standard way memory-system studies widen their
scenario space: several programs share the memory hierarchy, and the mixes
are ordered by aggregate memory intensity so "mix1" is cache-friendly and
"mix7" thrashes.  This module builds such mixes deterministically from the
workload universe this reproduction already has — the synthetic SPEC-like
programs, the :mod:`repro.workloads.memsynth` memory-behavior archetypes and
on-disk ingested traces — and hands each mix to the rest of the system as an
ordinary micro-op stream (dense block ids, content-addressed digest), so the
unchanged SimPoint → engine → store → detection path applies.

Construction is a *chunked round-robin interleave*: each component
contributes ``chunk`` consecutive instructions per turn, emulating
fine-grained SMT-style sharing while preserving each program's spatial
locality within a chunk.  Components are relocated into disjoint address and
code regions (component *i* shifted by ``i * COMPONENT_ADDRESS_STRIDE`` /
``i * COMPONENT_PC_STRIDE``), as separate processes would be, and block ids
are renumbered densely over the merged stream.  Per-component provenance is
recorded both as summaries (:class:`MixComponent`) and as the exact
run-length interleave schedule (``MixedTrace.provenance``).

Everything is a pure function of ``(spec, instructions, chunk, seed)`` —
two builds of the same mix are bit-identical, digests included.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .decoded import DecodedTrace
from .ingest import densify_blocks, ingest_trace
from .isa import MicroOp
from .memsynth import MEMSYNTH_WORKLOADS, memsynth_trace
from .spec2006 import SPEC2006_BENCHMARKS, workload
from .synth import build_program
from .trace import TraceGenerator

#: Address-space slot carved out per mix component (addresses, then pcs):
#: large enough that no two components' data or code regions can overlap.
COMPONENT_ADDRESS_STRIDE = 0x4000_0000
COMPONENT_PC_STRIDE = 0x0400_0000

#: Default instructions each component contributes per interleave turn.
DEFAULT_CHUNK = 64


@dataclass(frozen=True)
class MixSpec:
    """Declarative recipe for one mix: a name and its component workloads.

    Components may be SPEC-like benchmark names, memsynth archetype names,
    trace file paths, or (with a ``trace_dir``) discovered trace names.
    """

    name: str
    components: tuple[str, ...]
    description: str = ""


#: The standard mixes, ordered by aggregate memory intensity as *measured*
#: on the reference memory design: mix1 is cache-resident, mix7 combines the
#: highest-MPKI components (LLC MPKI rises strictly from mix1 to mix7).
DEFAULT_MIXES: tuple[MixSpec, ...] = (
    MixSpec("mix1", ("high-reuse", "462.libquantum", "monotonic-leak", "web-server"),
            "cache-resident services and prefetch-friendly streams"),
    MixSpec("mix2", ("high-reuse", "436.cactusADM", "433.milc", "web-server"),
            "scientific compute sharing with reuse-heavy services"),
    MixSpec("mix3", ("462.libquantum", "444.namd", "433.milc", "458.sjeng"),
            "balanced scientific/integer compute blend"),
    MixSpec("mix4", ("436.cactusADM", "401.bzip2", "400.perlbench", "444.namd"),
            "integer/FP compute with moderate cache pressure"),
    MixSpec("mix5", ("458.sjeng", "403.gcc", "kv-store", "400.perlbench"),
            "branchy integer codes plus a hot-key store"),
    MixSpec("mix6", ("401.bzip2", "403.gcc", "kv-store", "450.soplex"),
            "large-footprint codes contending with the store"),
    MixSpec("mix7", ("403.gcc", "kv-store", "450.soplex", "426.mcf"),
            "cache-hostile: the most memory-intensive codes combined"),
)


@dataclass(frozen=True)
class MixComponent:
    """Provenance summary for one component of a built mix."""

    name: str
    kind: str  # "synthetic" | "memsynth" | "ingested"
    instructions: int


class MixedTrace:
    """One built multi-program mix, ready for SimPoint/engine consumption."""

    def __init__(
        self,
        spec: MixSpec,
        uops: list[MicroOp],
        num_blocks: int,
        components: list[MixComponent],
        provenance: list[tuple[int, int]],
        chunk: int,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.uops = uops
        self.num_blocks = num_blocks
        #: Per-component summaries, in spec order.
        self.components = components
        #: Exact interleave schedule as run-length pairs
        #: ``(component_index, instructions)`` covering the whole stream.
        self.provenance = provenance
        self.chunk = chunk
        self._decoded: DecodedTrace | None = None

    @property
    def decoded(self) -> DecodedTrace:
        """The mix as a pre-decoded trace (computed once)."""
        if self._decoded is None:
            self._decoded = DecodedTrace.from_uops(self.uops)
        return self._decoded

    @property
    def digest(self) -> str:
        """Content digest of the interleaved stream (the runtime trace id)."""
        return self.decoded.digest

    def __len__(self) -> int:
        return len(self.uops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = "+".join(c.name for c in self.components)
        return f"<MixedTrace {self.name} [{names}] {len(self.uops)} instrs>"


def _component_uops(
    name: str, instructions: int, seed: int, trace_dir: str | Path | None
) -> tuple[str, list[MicroOp]]:
    """Materialise one component's micro-op stream (kind, fresh uops)."""
    if name in MEMSYNTH_WORKLOADS:
        return "memsynth", memsynth_trace(name, instructions, seed=seed)
    if name in SPEC2006_BENCHMARKS:
        program = build_program(workload(name), seed=seed)
        return "synthetic", TraceGenerator(program, seed=seed).generate(instructions)
    path = Path(name)
    if not path.is_file() and trace_dir is not None:
        candidates = sorted(
            p for p in Path(trace_dir).iterdir()
            if p.is_file() and (p.name == name or p.name.startswith(name + "."))
        )
        if candidates:
            path = candidates[0]
    if not path.is_file():
        raise KeyError(
            f"unknown mix component {name!r}: not a SPEC-like workload, not "
            f"a memsynth archetype ({list(MEMSYNTH_WORKLOADS)}) and no trace "
            f"file of that name exists"
        )
    return "ingested", list(ingest_trace(path).decoded.uops[:instructions])


def _relocate(uop: MicroOp, index: int, block_base: int) -> MicroOp:
    """Fresh copy of *uop* shifted into component *index*'s address slot."""
    address_offset = index * COMPONENT_ADDRESS_STRIDE
    pc_offset = index * COMPONENT_PC_STRIDE
    return MicroOp(
        opcode=uop.opcode,
        srcs=uop.srcs,
        dest=uop.dest,
        pc=uop.pc + pc_offset,
        address=uop.address + address_offset if uop.address is not None else None,
        taken=uop.taken,
        target=uop.target + pc_offset if uop.target is not None else None,
        indirect=uop.indirect,
        size=uop.size,
        block_id=block_base + uop.block_id,
    )


def build_mix(
    spec: MixSpec,
    instructions: int,
    chunk: int = DEFAULT_CHUNK,
    seed: int = 0,
    trace_dir: str | Path | None = None,
) -> MixedTrace:
    """Build *spec* into a :class:`MixedTrace` of about *instructions* ops.

    Each component is generated (or read) at ``ceil(instructions / n)``
    length, relocated into its own address/code slot, and interleaved
    round-robin in *chunk*-instruction turns.  A component shorter than its
    share (a short ingested file) simply drops out of the rotation when
    exhausted, so the result can be shorter than *instructions* but its
    content never depends on anything except ``(spec, instructions, chunk,
    seed)`` and the referenced files.
    """
    if not spec.components:
        raise ValueError(f"mix {spec.name!r} has no components")
    if instructions <= 0:
        raise ValueError(f"instructions must be positive, got {instructions}")
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    per_component = -(-instructions // len(spec.components))  # ceil division
    streams: list[list[MicroOp]] = []
    kinds: list[str] = []
    block_base = 0
    for index, name in enumerate(spec.components):
        kind, raw = _component_uops(
            name, per_component, seed=seed + index, trace_dir=trace_dir
        )
        streams.append([_relocate(uop, index, block_base) for uop in raw])
        kinds.append(kind)
        block_base += max(uop.block_id for uop in raw) + 1 if raw else 0

    uops: list[MicroOp] = []
    provenance: list[tuple[int, int]] = []
    cursors = [0] * len(streams)
    contributed = [0] * len(streams)
    while len(uops) < instructions:
        progressed = False
        for index, stream in enumerate(streams):
            if len(uops) >= instructions:
                break
            cursor = cursors[index]
            if cursor >= len(stream):
                continue
            take = min(chunk, len(stream) - cursor, instructions - len(uops))
            uops.extend(stream[cursor:cursor + take])
            cursors[index] = cursor + take
            contributed[index] += take
            provenance.append((index, take))
            progressed = True
        if not progressed:
            break  # every stream exhausted before the target length

    num_blocks = densify_blocks(uops)
    components = [
        MixComponent(name=spec.components[i], kind=kinds[i],
                     instructions=contributed[i])
        for i in range(len(streams))
    ]
    return MixedTrace(spec, uops, num_blocks, components, provenance, chunk)


def build_mixes(
    specs: Sequence[MixSpec] = DEFAULT_MIXES,
    instructions: int = 12_000,
    chunk: int = DEFAULT_CHUNK,
    seed: int = 0,
    trace_dir: str | Path | None = None,
) -> list[MixedTrace]:
    """Build every mix in *specs* (see :func:`build_mix`)."""
    return [
        build_mix(spec, instructions=instructions, chunk=chunk, seed=seed,
                  trace_dir=trace_dir)
        for spec in specs
    ]
