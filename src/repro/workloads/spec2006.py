"""SPEC CPU2006-like synthetic workload presets.

The paper extracts its probes from ten SPEC CPU2006 applications (Table I).
Those binaries and their inputs are not redistributable, so this module
defines ten synthetic workloads whose phase structure, instruction mixes,
branch behaviour and memory footprints are modelled after the published
characterisations of those applications.  What the methodology needs from them
is (a) phase diversity inside each application, so SimPoint extracts multiple
distinct probes, and (b) mix diversity across applications, so the probe set
is performance-orthogonal — both properties are preserved here.

Notably, the ``403.gcc`` preset contains one xor-heavy phase, reproducing the
SimPoint-#12 behaviour the paper uses to motivate probe-level analysis
(Figure 3).
"""

from __future__ import annotations

from .isa import Opcode
from .program import BlockSpec, PhaseSpec, WorkloadSpec

# Reusable opcode-mix building blocks -------------------------------------

_INT_COMPUTE = {
    Opcode.ADD: 30,
    Opcode.SUB: 12,
    Opcode.AND: 6,
    Opcode.OR: 5,
    Opcode.XOR: 2,
    Opcode.SHIFT: 8,
    Opcode.CMP: 10,
    Opcode.MOV: 8,
    Opcode.LOAD: 22,
    Opcode.STORE: 9,
}

_INT_POINTER_CHASE = {
    Opcode.ADD: 18,
    Opcode.CMP: 12,
    Opcode.MOV: 10,
    Opcode.LOAD: 40,
    Opcode.STORE: 8,
    Opcode.SUB: 6,
    Opcode.AND: 3,
}

_FP_COMPUTE = {
    Opcode.FADD: 24,
    Opcode.FMUL: 22,
    Opcode.FSUB: 8,
    Opcode.FDIV: 2,
    Opcode.VADD: 6,
    Opcode.VMUL: 6,
    Opcode.ADD: 8,
    Opcode.LOAD: 18,
    Opcode.STORE: 8,
    Opcode.MOV: 4,
}

_XOR_HEAVY = {
    Opcode.XOR: 14,
    Opcode.AND: 10,
    Opcode.OR: 8,
    Opcode.SHIFT: 12,
    Opcode.ADD: 16,
    Opcode.CMP: 8,
    Opcode.LOAD: 22,
    Opcode.STORE: 8,
    Opcode.MOV: 4,
}

_BRANCHY_INT = {
    Opcode.ADD: 20,
    Opcode.SUB: 10,
    Opcode.CMP: 22,
    Opcode.AND: 6,
    Opcode.XOR: 3,
    Opcode.MOV: 8,
    Opcode.LOAD: 24,
    Opcode.STORE: 6,
    Opcode.POPCNT: 2,
}

_STREAMING = {
    Opcode.ADD: 16,
    Opcode.SHIFT: 6,
    Opcode.XOR: 5,
    Opcode.CMP: 6,
    Opcode.LOAD: 40,
    Opcode.STORE: 20,
    Opcode.MOV: 4,
}

_MUL_DIV_HEAVY = {
    Opcode.MUL: 10,
    Opcode.DIV: 2,
    Opcode.ADD: 24,
    Opcode.SUB: 8,
    Opcode.CMP: 8,
    Opcode.LOAD: 26,
    Opcode.STORE: 10,
    Opcode.MOV: 6,
}


def _block(
    name: str,
    mix: dict[Opcode, float],
    *,
    length: int = 24,
    dep: float = 4.0,
    ws: int = 32 * 1024,
    stride: int = 8,
    rand: float = 0.1,
    hot: float = 0.0,
    taken: float = 0.7,
    pred: float = 0.92,
    indirect: float = 0.0,
) -> BlockSpec:
    """Shorthand constructor for the preset tables below."""
    return BlockSpec(
        name=name,
        length=length,
        mix=mix,
        dep_distance=dep,
        working_set=ws,
        stride=stride,
        random_access_fraction=rand,
        hot_fraction=hot,
        branch_taken_prob=taken,
        branch_predictability=pred,
        indirect_branch_prob=indirect,
    )


def _perlbench() -> WorkloadSpec:
    return WorkloadSpec(
        name="400.perlbench",
        operand_type="Integer",
        description="PERL interpreter: branchy dispatch loops and hash tables",
        phases=(
            PhaseSpec(
                name="interp_dispatch",
                weight=3.0,
                blocks=(
                    _block("perl_dispatch", _BRANCHY_INT, length=18, pred=0.8,
                           taken=0.55, indirect=0.25, ws=32 * 1024, rand=0.2),
                    _block("perl_opcode_body", _INT_COMPUTE, length=28, dep=3.0,
                           ws=48 * 1024),
                ),
            ),
            PhaseSpec(
                name="hash_ops",
                weight=2.0,
                blocks=(
                    _block("perl_hash", _INT_POINTER_CHASE, length=22, ws=64 * 1024,
                           rand=0.35, hot=0.3, pred=0.85, taken=0.6),
                    _block("perl_string", _INT_COMPUTE, length=30, dep=5.0,
                           ws=16 * 1024, stride=1),
                ),
            ),
            PhaseSpec(
                name="regex",
                weight=1.5,
                blocks=(
                    _block("perl_regex", _BRANCHY_INT, length=20, pred=0.7,
                           taken=0.5, ws=8 * 1024),
                ),
            ),
        ),
    )


def _bzip2() -> WorkloadSpec:
    return WorkloadSpec(
        name="401.bzip2",
        operand_type="Integer",
        description="Burrows-Wheeler compression: sorting and bit manipulation",
        phases=(
            PhaseSpec(
                name="block_sort",
                weight=3.0,
                blocks=(
                    _block("bzip_sort_cmp", _BRANCHY_INT, length=26, pred=0.75,
                           taken=0.5, ws=64 * 1024, rand=0.25, hot=0.25, dep=3.0),
                    _block("bzip_sort_swap", _INT_COMPUTE, length=18, ws=64 * 1024,
                           rand=0.2),
                ),
            ),
            PhaseSpec(
                name="huffman",
                weight=2.0,
                blocks=(
                    _block("bzip_huffman", _XOR_HEAVY, length=26, dep=3.5,
                           ws=32 * 1024),
                    _block("bzip_bitstream", _INT_COMPUTE, length=22, dep=2.5,
                           ws=8 * 1024, stride=1),
                ),
            ),
            PhaseSpec(
                name="mtf",
                weight=1.5,
                blocks=(
                    _block("bzip_mtf", _STREAMING, length=20, ws=32 * 1024,
                           stride=1, pred=0.9),
                ),
            ),
        ),
    )


def _gcc() -> WorkloadSpec:
    """403.gcc: compiler passes; includes an xor-heavy bit-set phase.

    The xor-heavy ``gcc_bitset`` phase has a modest weight so that whole-
    application IPC barely moves under an xor-targeted bug, while the probe
    extracted from that phase degrades strongly (the paper's Figure 3 story).
    """
    return WorkloadSpec(
        name="403.gcc",
        operand_type="Integer",
        description="C compiler: tree walks, dataflow bit-sets and register allocation",
        phases=(
            PhaseSpec(
                name="parse",
                weight=2.5,
                blocks=(
                    _block("gcc_parse", _BRANCHY_INT, length=22, pred=0.78,
                           taken=0.55, indirect=0.15, ws=48 * 1024, rand=0.2),
                    _block("gcc_tree_walk", _INT_POINTER_CHASE, length=24,
                           ws=128 * 1024, rand=0.35, hot=0.3, dep=2.5),
                ),
            ),
            PhaseSpec(
                name="dataflow_bitset",
                weight=1.0,
                blocks=(
                    _block("gcc_bitset", _XOR_HEAVY, length=30, dep=5.0,
                           ws=64 * 1024, stride=8, pred=0.95, taken=0.85),
                ),
            ),
            PhaseSpec(
                name="regalloc",
                weight=2.0,
                blocks=(
                    _block("gcc_regalloc", _INT_COMPUTE, length=26, dep=3.0,
                           ws=64 * 1024, rand=0.15),
                    _block("gcc_spill", _STREAMING, length=18, ws=32 * 1024),
                ),
            ),
            PhaseSpec(
                name="emit",
                weight=1.5,
                blocks=(
                    _block("gcc_emit", _INT_COMPUTE, length=20, ws=32 * 1024,
                           stride=4, pred=0.9, taken=0.7),
                ),
            ),
        ),
    )


def _mcf() -> WorkloadSpec:
    return WorkloadSpec(
        name="426.mcf",
        operand_type="Integer",
        description="Network simplex: pointer chasing over a large graph",
        phases=(
            PhaseSpec(
                name="pricing",
                weight=3.0,
                blocks=(
                    _block("mcf_arc_scan", _INT_POINTER_CHASE, length=20,
                           ws=1024 * 1024, rand=0.5, hot=0.25, dep=2.0, pred=0.8,
                           taken=0.5),
                ),
            ),
            PhaseSpec(
                name="simplex_pivot",
                weight=2.0,
                blocks=(
                    _block("mcf_pivot", _INT_COMPUTE, length=24, ws=256 * 1024,
                           rand=0.4, dep=2.5),
                    _block("mcf_update", _INT_POINTER_CHASE, length=18,
                           ws=512 * 1024, rand=0.45, hot=0.2, pred=0.85),
                ),
            ),
        ),
    )


def _milc() -> WorkloadSpec:
    return WorkloadSpec(
        name="433.milc",
        operand_type="Floating Point",
        description="Lattice QCD: SU(3) matrix arithmetic over large arrays",
        phases=(
            PhaseSpec(
                name="su3_mult",
                weight=3.0,
                blocks=(
                    _block("milc_su3", _FP_COMPUTE, length=32, dep=4.5,
                           ws=128 * 1024, stride=64, pred=0.97, taken=0.9),
                ),
            ),
            PhaseSpec(
                name="gather",
                weight=1.5,
                blocks=(
                    _block("milc_gather", _STREAMING, length=20, ws=256 * 1024,
                           stride=64, rand=0.15, pred=0.95),
                ),
            ),
            PhaseSpec(
                name="cg_solver",
                weight=2.0,
                blocks=(
                    _block("milc_cg", _FP_COMPUTE, length=28, dep=3.0,
                           ws=128 * 1024, stride=32),
                    _block("milc_reduce", _FP_COMPUTE, length=16, dep=2.0,
                           ws=64 * 1024),
                ),
            ),
        ),
    )


def _cactus() -> WorkloadSpec:
    return WorkloadSpec(
        name="436.cactusADM",
        operand_type="Floating Point",
        description="Numerical relativity: long-dependency stencil kernels",
        phases=(
            PhaseSpec(
                name="stencil",
                weight=4.0,
                blocks=(
                    _block("cactus_stencil", _FP_COMPUTE, length=40, dep=2.0,
                           ws=256 * 1024, stride=128, pred=0.98, taken=0.92),
                ),
            ),
            PhaseSpec(
                name="boundary",
                weight=1.0,
                blocks=(
                    _block("cactus_boundary", _FP_COMPUTE, length=22, dep=3.0,
                           ws=64 * 1024, stride=64),
                    _block("cactus_copy", _STREAMING, length=16, ws=128 * 1024,
                           stride=64),
                ),
            ),
        ),
    )


def _namd() -> WorkloadSpec:
    return WorkloadSpec(
        name="444.namd",
        operand_type="Floating Point",
        description="Molecular dynamics: pairwise force computation",
        phases=(
            PhaseSpec(
                name="pairlist",
                weight=2.0,
                blocks=(
                    _block("namd_pairlist", _BRANCHY_INT, length=20, pred=0.82,
                           taken=0.6, ws=128 * 1024, rand=0.25, hot=0.25),
                ),
            ),
            PhaseSpec(
                name="force",
                weight=4.0,
                blocks=(
                    _block("namd_force", _FP_COMPUTE, length=36, dep=5.0,
                           ws=64 * 1024, stride=32, pred=0.96, taken=0.88),
                    _block("namd_accum", _FP_COMPUTE, length=18, dep=2.5,
                           ws=64 * 1024),
                ),
            ),
        ),
    )


def _soplex() -> WorkloadSpec:
    return WorkloadSpec(
        name="450.soplex",
        operand_type="Floating Point",
        description="Simplex LP solver: sparse linear algebra",
        phases=(
            PhaseSpec(
                name="factorize",
                weight=2.0,
                blocks=(
                    _block("soplex_factor", _MUL_DIV_HEAVY, length=26, dep=3.0,
                           ws=256 * 1024, rand=0.2),
                    _block("soplex_fp", _FP_COMPUTE, length=24, dep=3.5,
                           ws=128 * 1024, stride=16),
                ),
            ),
            PhaseSpec(
                name="pricing",
                weight=2.5,
                blocks=(
                    _block("soplex_price", _STREAMING, length=22, ws=512 * 1024,
                           stride=16, rand=0.2, hot=0.2, pred=0.9),
                ),
            ),
            PhaseSpec(
                name="ratio_test",
                weight=1.5,
                blocks=(
                    _block("soplex_ratio", _BRANCHY_INT, length=18, pred=0.75,
                           taken=0.5, ws=64 * 1024, rand=0.2),
                ),
            ),
        ),
    )


def _sjeng() -> WorkloadSpec:
    return WorkloadSpec(
        name="458.sjeng",
        operand_type="Integer",
        description="Chess engine: deep recursion with unpredictable branches",
        phases=(
            PhaseSpec(
                name="search",
                weight=3.5,
                blocks=(
                    _block("sjeng_search", _BRANCHY_INT, length=22, pred=0.65,
                           taken=0.5, ws=32 * 1024, rand=0.2, indirect=0.1),
                    _block("sjeng_movegen", _XOR_HEAVY, length=24, dep=4.0,
                           ws=64 * 1024, pred=0.85, taken=0.75),
                ),
            ),
            PhaseSpec(
                name="eval",
                weight=2.0,
                blocks=(
                    _block("sjeng_eval", _INT_COMPUTE, length=28, dep=3.5,
                           ws=32 * 1024),
                    _block("sjeng_hash_probe", _INT_POINTER_CHASE, length=14,
                           ws=512 * 1024, rand=0.6, hot=0.3, pred=0.8, taken=0.45),
                ),
            ),
        ),
    )


def _libquantum() -> WorkloadSpec:
    return WorkloadSpec(
        name="462.libquantum",
        operand_type="Integer",
        description="Quantum simulation: streaming sweeps with xor gate updates",
        phases=(
            PhaseSpec(
                name="toffoli",
                weight=3.0,
                blocks=(
                    _block("libq_gate", _XOR_HEAVY, length=24, dep=6.0,
                           ws=512 * 1024, stride=16, rand=0.05,
                           pred=0.98, taken=0.93),
                ),
            ),
            PhaseSpec(
                name="measure",
                weight=1.5,
                blocks=(
                    _block("libq_measure", _STREAMING, length=18,
                           ws=512 * 1024, stride=16, pred=0.97),
                    _block("libq_collapse", _INT_COMPUTE, length=20, dep=4.0,
                           ws=64 * 1024),
                ),
            ),
        ),
    )


#: Factory functions for the ten Table-I benchmarks, keyed by name.
_FACTORIES = {
    "400.perlbench": _perlbench,
    "401.bzip2": _bzip2,
    "403.gcc": _gcc,
    "426.mcf": _mcf,
    "433.milc": _milc,
    "436.cactusADM": _cactus,
    "444.namd": _namd,
    "450.soplex": _soplex,
    "458.sjeng": _sjeng,
    "462.libquantum": _libquantum,
}

#: Names of the ten benchmarks, in Table-I order.
SPEC2006_BENCHMARKS = tuple(_FACTORIES.keys())


def workload(name: str) -> WorkloadSpec:
    """Return the preset :class:`WorkloadSpec` for benchmark *name*."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def all_workloads() -> list[WorkloadSpec]:
    """Return all ten SPEC CPU2006-like workload presets."""
    return [factory() for factory in _FACTORIES.values()]
