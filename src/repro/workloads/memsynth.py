"""Synthetic memory-behavior generators for the memory-hierarchy study.

The SPEC-like synthetic programs exercise the out-of-order core broadly but
their memory behavior is comparatively tame.  This module generates micro-op
streams whose *memory* behavior follows four archetypes commonly profiled in
production services (modeled on the workload suites real memory profilers
ship with):

``monotonic-leak``
    An ever-growing heap: allocation writes march forward through fresh
    cache lines while a slowly growing set of "leaked" objects keeps being
    revisited, so the reuse set never stabilises.  Caches of any size end up
    thrashing — the high-MPKI stressor.

``high-reuse``
    A small resident working set cycled with high temporal locality; nearly
    everything hits in L1/L2.  The low-MPKI anchor.

``kv-store``
    A memcached-style hash-table service: hot-key skew (90% of operations
    touch the hottest 10% of keys), an 80/20 get/set mix, bucket probe plus
    value-line traffic, ALU filler standing in for key hashing.

``web-server``
    An nginx-style phase alternator: a branchy *parse* phase over a small
    request buffer, then a *serve* phase streaming one object sequentially
    out of a large content store — strong phase behavior for SimPoint and a
    friendly target for next-line/stride prefetchers.

Every generator is deterministic for a given ``(name, instructions, seed)``
— each instance owns a ``numpy`` :func:`~numpy.random.default_rng` — and
emits dynamic instances of a small static program: fixed per-block pc
layout, dense ``block_id`` values.  The streams therefore flow through
BBV/SimPoint profiling, the job engine and the content-addressed store
exactly like synthetic SPEC traces or ingested files, and are valid
components for :mod:`repro.workloads.mixes`.
"""

from __future__ import annotations

import numpy as np

from .isa import DEFAULT_INSTR_BYTES, MicroOp, Opcode

#: Names of the available memory-behavior archetypes.
MEMSYNTH_WORKLOADS: tuple[str, ...] = (
    "monotonic-leak",
    "high-reuse",
    "kv-store",
    "web-server",
)

#: Code/data layout of the emitted streams.
_CODE_BASE = 0x00A0_0000
_HEAP_BASE = 0x3000_0000
_LINE = 64

#: ALU filler opcodes cycled through inside each static block.
_FILLER = (Opcode.ADD, Opcode.XOR, Opcode.CMP, Opcode.SHIFT)


class _Emitter:
    """Emission scaffold shared by the archetype generators.

    Each archetype repeatedly emits dynamic instances of a handful of static
    basic blocks.  Blocks are keyed by label: the first use of a label
    allocates the next dense block id and a fixed pc range, so every dynamic
    instance of a block replays the same static pcs — exactly what BBV
    profiling keys on.
    """

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self.uops: list[MicroOp] = []
        self._blocks: dict[str, int] = {}

    def emit(self, label: str, accesses, alu: int = 2) -> None:
        """Emit one dynamic instance of the static block *label*.

        *accesses* is a sequence of ``(address, is_load)`` pairs; *alu*
        filler ops and a mostly-taken backward loop branch complete the
        block.
        """
        block_id = self._blocks.setdefault(label, len(self._blocks))
        base = _CODE_BASE + block_id * 0x100
        pc = base
        for address, is_load in accesses:
            if is_load:
                self.uops.append(
                    MicroOp(Opcode.LOAD, srcs=(1,), dest=2, pc=pc,
                            address=int(address), block_id=block_id)
                )
            else:
                self.uops.append(
                    MicroOp(Opcode.STORE, srcs=(1, 2), dest=None, pc=pc,
                            address=int(address), block_id=block_id)
                )
            pc += DEFAULT_INSTR_BYTES
        for index in range(alu):
            self.uops.append(
                MicroOp(_FILLER[index % len(_FILLER)], srcs=(2, 3), dest=3,
                        pc=pc, block_id=block_id)
            )
            pc += DEFAULT_INSTR_BYTES
        taken = len(self.uops) % 64 != 0
        self.uops.append(
            MicroOp(Opcode.BRANCH, srcs=(), dest=None, pc=pc, taken=taken,
                    target=base if taken else pc + DEFAULT_INSTR_BYTES,
                    block_id=block_id)
        )


def _monotonic_leak(gen: _Emitter, instructions: int) -> None:
    heap_top = _HEAP_BASE
    leaked: list[int] = [heap_top]
    while len(gen.uops) < instructions:
        size = int(gen.rng.integers(1, 9)) * _LINE  # 64 B .. 512 B objects
        accesses = [(heap_top + off, False) for off in range(0, size, _LINE)]
        if gen.rng.random() < 0.05:
            leaked.append(heap_top)  # ~5% of allocations are never freed
        heap_top += size
        for _ in range(2):
            victim = leaked[int(gen.rng.integers(0, len(leaked)))]
            accesses.append((victim, True))
        gen.emit("alloc", accesses, alu=3)


def _high_reuse(gen: _Emitter, instructions: int) -> None:
    lines = (16 * 1024) // _LINE  # 16 KiB resident working set
    cursor = 0
    while len(gen.uops) < instructions:
        accesses = []
        for _ in range(4):
            cursor = (cursor + 1) % lines
            accesses.append((_HEAP_BASE + cursor * _LINE, True))
        slot = int(gen.rng.integers(0, lines))
        accesses.append((_HEAP_BASE + slot * _LINE, False))
        gen.emit("loop", accesses, alu=4)


def _kv_store(gen: _Emitter, instructions: int) -> None:
    buckets = 4096
    hot = buckets // 10
    table = _HEAP_BASE
    values = _HEAP_BASE + buckets * _LINE
    value_lines = 4
    while len(gen.uops) < instructions:
        if gen.rng.random() < 0.9:
            key = int(gen.rng.integers(0, hot))
        else:
            key = int(gen.rng.integers(0, buckets))
        is_get = gen.rng.random() < 0.8
        accesses = [(table + key * _LINE, True)]  # bucket probe
        value = values + key * value_lines * _LINE
        for line in range(2 if is_get else value_lines):
            accesses.append((value + line * _LINE, is_get))
        gen.emit("get" if is_get else "set", accesses, alu=5)


def _web_server(gen: _Emitter, instructions: int) -> None:
    request_lines = 4096 // _LINE  # 4 KiB request buffer
    content = _HEAP_BASE + (1 << 24)
    content_lines = (8 << 20) // _LINE  # 8 MiB content store
    while len(gen.uops) < instructions:
        for _ in range(6):  # parse phase: header churn over the buffer
            slot = int(gen.rng.integers(0, request_lines))
            gen.emit("parse", [(_HEAP_BASE + slot * _LINE, True)], alu=4)
            if len(gen.uops) >= instructions:
                return
        start = int(gen.rng.integers(0, content_lines - 64))
        for line in range(48):  # serve phase: stream one object sequentially
            gen.emit("serve", [(content + (start + line) * _LINE, True)], alu=1)
            if len(gen.uops) >= instructions:
                return


_GENERATORS = {
    "monotonic-leak": _monotonic_leak,
    "high-reuse": _high_reuse,
    "kv-store": _kv_store,
    "web-server": _web_server,
}


def memsynth_trace(name: str, instructions: int, seed: int = 0) -> list[MicroOp]:
    """Generate *instructions* micro-ops of the memory archetype *name*.

    Deterministic for a given ``(name, instructions, seed)``; the result
    carries dense block ids and is directly consumable by SimPoint
    extraction, :mod:`repro.memsim` and the mix builder.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown memsynth workload {name!r}; "
            f"available: {list(MEMSYNTH_WORKLOADS)}"
        ) from None
    if instructions <= 0:
        raise ValueError(f"instructions must be positive, got {instructions}")
    emitter = _Emitter(seed)
    generator(emitter, instructions)
    return emitter.uops[:instructions]


def memsynth_num_blocks(uops) -> int:
    """BBV dimension of a memsynth stream (ids are dense, so ``max+1``)."""
    return max(uop.block_id for uop in uops) + 1 if uops else 0
