"""Synthetic workload generation (SPEC CPU2006 stand-in).

This package provides the instruction-set model, the declarative synthetic
program specs, ten SPEC CPU2006-like benchmark presets and a deterministic
dynamic-trace generator.  Together they replace the SPEC binaries + gem5
trace capture used in the paper.
"""

from .decoded import DecodedTrace, as_uops, decode_trace
from .ingest import (
    TRACE_FORMATS,
    IngestedTrace,
    TraceFormat,
    TraceIngestError,
    discover_traces,
    ingest_trace,
    read_champsim,
    read_gem5,
    trace_format,
    write_champsim,
    write_gem5,
)
from .isa import (
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    MicroOp,
    OpClass,
    Opcode,
    opcode_class,
)
from .program import BlockSpec, PhaseSpec, WorkloadSpec
from .spec2006 import SPEC2006_BENCHMARKS, all_workloads, workload
from .synth import StaticBlock, StaticInstr, SyntheticProgram, build_program
from .trace import TraceGenerator, split_into_intervals

__all__ = [
    "DecodedTrace",
    "decode_trace",
    "as_uops",
    "TRACE_FORMATS",
    "IngestedTrace",
    "TraceFormat",
    "TraceIngestError",
    "discover_traces",
    "ingest_trace",
    "trace_format",
    "read_champsim",
    "read_gem5",
    "write_champsim",
    "write_gem5",
    "MicroOp",
    "OpClass",
    "Opcode",
    "opcode_class",
    "NUM_ARCH_REGS",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "BlockSpec",
    "PhaseSpec",
    "WorkloadSpec",
    "SPEC2006_BENCHMARKS",
    "workload",
    "all_workloads",
    "SyntheticProgram",
    "StaticBlock",
    "StaticInstr",
    "build_program",
    "TraceGenerator",
    "split_into_intervals",
]
