"""Synthetic workload generation (SPEC CPU2006 stand-in).

This package provides the instruction-set model, the declarative synthetic
program specs, ten SPEC CPU2006-like benchmark presets and a deterministic
dynamic-trace generator.  Together they replace the SPEC binaries + gem5
trace capture used in the paper.  On top of those it layers on-disk trace
ingestion (ChampSim/gem5/k6 formats, :mod:`repro.workloads.ingest`),
synthetic memory-behavior generators (:mod:`repro.workloads.memsynth`) and
MPKI-ordered multi-program mixes (:mod:`repro.workloads.mixes`).
"""

from .decoded import DecodedTrace, as_uops, decode_trace
from .ingest import (
    TRACE_FORMATS,
    IngestedTrace,
    TraceFormat,
    TraceIngestError,
    densify_blocks,
    discover_traces,
    ingest_trace,
    read_champsim,
    read_gem5,
    read_k6,
    trace_format,
    write_champsim,
    write_gem5,
    write_k6,
)
from .isa import (
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    MicroOp,
    OpClass,
    Opcode,
    opcode_class,
)
from .program import BlockSpec, PhaseSpec, WorkloadSpec
from .memsynth import MEMSYNTH_WORKLOADS, memsynth_num_blocks, memsynth_trace
from .mixes import (
    DEFAULT_MIXES,
    MixComponent,
    MixedTrace,
    MixSpec,
    build_mix,
    build_mixes,
)
from .spec2006 import SPEC2006_BENCHMARKS, all_workloads, workload
from .synth import StaticBlock, StaticInstr, SyntheticProgram, build_program
from .trace import TraceGenerator, split_into_intervals

__all__ = [
    "DecodedTrace",
    "decode_trace",
    "as_uops",
    "TRACE_FORMATS",
    "IngestedTrace",
    "TraceFormat",
    "TraceIngestError",
    "discover_traces",
    "ingest_trace",
    "trace_format",
    "densify_blocks",
    "read_champsim",
    "read_gem5",
    "read_k6",
    "write_champsim",
    "write_gem5",
    "write_k6",
    "MEMSYNTH_WORKLOADS",
    "memsynth_trace",
    "memsynth_num_blocks",
    "DEFAULT_MIXES",
    "MixSpec",
    "MixComponent",
    "MixedTrace",
    "build_mix",
    "build_mixes",
    "MicroOp",
    "OpClass",
    "Opcode",
    "opcode_class",
    "NUM_ARCH_REGS",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "BlockSpec",
    "PhaseSpec",
    "WorkloadSpec",
    "SPEC2006_BENCHMARKS",
    "workload",
    "all_workloads",
    "SyntheticProgram",
    "StaticBlock",
    "StaticInstr",
    "build_program",
    "TraceGenerator",
    "split_into_intervals",
]
