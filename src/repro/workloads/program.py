"""Parametric descriptions of synthetic programs.

A synthetic benchmark is described hierarchically:

* a :class:`WorkloadSpec` names the benchmark and lists its *phases*;
* a :class:`PhaseSpec` describes one program phase (a loop over a set of basic
  blocks with a given weight in the overall dynamic instruction count);
* a :class:`BlockSpec` describes one basic block: its length, instruction
  mix, data-dependency distance, memory-access pattern and terminating branch.

These specs are purely declarative; :mod:`repro.workloads.synth` materialises
them into static programs and :mod:`repro.workloads.trace` turns those into
dynamic instruction streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import Opcode


@dataclass(frozen=True)
class BlockSpec:
    """Static description of a basic block.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within the workload.
    length:
        Number of non-branch instructions in the block.  A terminating branch
        is appended automatically when ``has_branch`` is true.
    mix:
        Relative weights of opcodes for the block body.  Loads and stores may
        appear here; their addresses follow the block's memory pattern.
    dep_distance:
        Mean distance (in instructions) between a value's producer and its
        consumer.  Small values serialise the block; large values expose ILP.
    working_set:
        Size in bytes of the memory region touched by this block.
    stride:
        Byte stride between successive memory accesses of the block.
    random_access_fraction:
        Fraction of memory accesses that jump to a random location inside the
        working set instead of following the stride.
    hot_fraction:
        Fraction of memory accesses directed at a small, frequently reused
        "hot" subset of the working set.  Non-zero values create the
        frequency skew that makes replacement-policy behaviour observable.
    hot_region_bytes:
        Size of that hot subset in bytes.
    has_branch:
        Whether the block ends with a conditional branch.
    branch_taken_prob:
        Probability that the terminating branch is taken on a given execution.
    branch_predictability:
        In [0, 1]; 1 means the branch outcome follows a fixed repeating
        pattern (easy to predict), 0 means outcomes are i.i.d. Bernoulli
        draws with ``branch_taken_prob``.
    indirect_branch_prob:
        Probability that the terminating branch is indirect.
    """

    name: str
    length: int
    mix: dict[Opcode, float]
    dep_distance: float = 4.0
    working_set: int = 16 * 1024
    stride: int = 8
    random_access_fraction: float = 0.1
    hot_fraction: float = 0.0
    hot_region_bytes: int = 2048
    has_branch: bool = True
    branch_taken_prob: float = 0.6
    branch_predictability: float = 0.9
    indirect_branch_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"block {self.name!r} must have positive length")
        if not self.mix:
            raise ValueError(f"block {self.name!r} needs a non-empty opcode mix")
        if any(w < 0 for w in self.mix.values()):
            raise ValueError(f"block {self.name!r} has negative mix weights")
        if sum(self.mix.values()) <= 0:
            raise ValueError(f"block {self.name!r} mix weights must sum to > 0")
        if not 0.0 <= self.branch_taken_prob <= 1.0:
            raise ValueError("branch_taken_prob must be in [0, 1]")
        if not 0.0 <= self.branch_predictability <= 1.0:
            raise ValueError("branch_predictability must be in [0, 1]")
        if not 0.0 <= self.random_access_fraction <= 1.0:
            raise ValueError("random_access_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.working_set <= 0 or self.stride <= 0 or self.hot_region_bytes <= 0:
            raise ValueError("working_set, stride and hot_region_bytes must be positive")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a synthetic program.

    A phase repeatedly executes its blocks in order; blocks whose
    ``probability`` is below 1.0 are guarded by a conditional branch and only
    execute on a matching fraction of iterations.  The ``weight`` of a phase
    is its share of the program's dynamic instruction count.
    """

    name: str
    blocks: tuple[BlockSpec, ...]
    weight: float = 1.0
    block_probabilities: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"phase {self.name!r} has no blocks")
        if self.weight <= 0:
            raise ValueError(f"phase {self.name!r} must have positive weight")
        if self.block_probabilities and len(self.block_probabilities) != len(self.blocks):
            raise ValueError(
                f"phase {self.name!r}: block_probabilities length must match blocks"
            )

    def probability_of(self, index: int) -> float:
        """Execution probability of block *index* within an iteration."""
        if not self.block_probabilities:
            return 1.0
        return self.block_probabilities[index]


@dataclass(frozen=True)
class WorkloadSpec:
    """Top-level description of a synthetic benchmark.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"403.gcc"``).
    operand_type:
        ``"Integer"`` or ``"Floating Point"``, mirroring Table I.
    phases:
        The program phases, executed in order.
    description:
        Short human-readable description of the modelled application.
    """

    name: str
    operand_type: str
    phases: tuple[PhaseSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"workload {self.name!r} has no phases")
        names = [b.name for p in self.phases for b in p.blocks]
        if len(names) != len(set(names)):
            raise ValueError(f"workload {self.name!r} has duplicate block names")

    @property
    def num_blocks(self) -> int:
        """Total number of distinct static basic blocks."""
        return sum(len(p.blocks) for p in self.phases)

    def phase_weights(self) -> list[float]:
        """Normalised dynamic-instruction share of each phase."""
        total = sum(p.weight for p in self.phases)
        return [p.weight / total for p in self.phases]
