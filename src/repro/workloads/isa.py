"""Instruction-set model used by the synthetic workloads and the simulators.

The reproduction does not execute real x86 binaries.  Instead, workloads are
streams of :class:`MicroOp` objects that carry exactly the information the
out-of-order core model needs: an opcode, source/destination registers, a
memory address for loads/stores and a branch outcome for control instructions.

The opcode vocabulary intentionally mirrors the categories the paper's bugs
are written against (``xor``, ``sub``, ``add``, ``popcnt`` ... as well as the
functional-unit classes of Table III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class OpClass(enum.IntEnum):
    """Functional-unit class of an instruction (maps onto Table III ports)."""

    INT_ALU = 0
    INT_MULT = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MULT = 4
    FP_DIV = 5
    VECTOR = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9


class Opcode(enum.IntEnum):
    """Specific opcodes.

    Bugs in the paper are parameterised by opcode (e.g. "issue ``xor`` only if
    oldest"), so the vocabulary must be finer grained than :class:`OpClass`.
    """

    ADD = 0
    SUB = 1
    XOR = 2
    AND = 3
    OR = 4
    SHIFT = 5
    CMP = 6
    MOV = 7
    POPCNT = 8
    MUL = 9
    DIV = 10
    FADD = 11
    FSUB = 12
    FMUL = 13
    FDIV = 14
    VADD = 15
    VMUL = 16
    LOAD = 17
    STORE = 18
    BRANCH = 19
    CALL = 20
    RET = 21
    NOP = 22


#: Mapping from opcode to the functional-unit class that executes it.
OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.SHIFT: OpClass.INT_ALU,
    Opcode.CMP: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.POPCNT: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MULT,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FSUB: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MULT,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.VADD: OpClass.VECTOR,
    Opcode.VMUL: OpClass.VECTOR,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.BRANCH: OpClass.BRANCH,
    Opcode.CALL: OpClass.BRANCH,
    Opcode.RET: OpClass.BRANCH,
    Opcode.NOP: OpClass.INT_ALU,
}

#: Number of architectural integer registers in the synthetic ISA.
NUM_INT_REGS = 16
#: Number of architectural floating-point registers in the synthetic ISA.
NUM_FP_REGS = 16
#: Total architectural register count (integer registers come first).
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Default instruction size in bytes (used for branch-distance bugs).
DEFAULT_INSTR_BYTES = 4


def opcode_class(opcode: Opcode) -> OpClass:
    """Return the functional-unit class for *opcode*."""
    return OPCODE_CLASS[opcode]


def is_memory(opcode: Opcode) -> bool:
    """True if *opcode* accesses memory."""
    return opcode in (Opcode.LOAD, Opcode.STORE)


def is_branch(opcode: Opcode) -> bool:
    """True if *opcode* is a control-flow instruction."""
    return opcode in (Opcode.BRANCH, Opcode.CALL, Opcode.RET)


def is_floating_point(opcode: Opcode) -> bool:
    """True if *opcode* executes on a floating-point or vector unit."""
    return OPCODE_CLASS[opcode] in (
        OpClass.FP_ALU,
        OpClass.FP_MULT,
        OpClass.FP_DIV,
        OpClass.VECTOR,
    )


@dataclass(slots=True)
class MicroOp:
    """One dynamic instruction as consumed by the core simulator.

    Attributes
    ----------
    opcode:
        The specific operation.
    srcs:
        Architectural source register indices (possibly empty).
    dest:
        Architectural destination register index, or ``None`` for stores,
        branches and nops.
    pc:
        Program counter of the static instruction (byte address).
    address:
        Effective memory address for loads/stores, else ``None``.
    taken:
        Branch outcome for branches, else ``None``.
    target:
        Branch target address for branches, else ``None``.
    indirect:
        True for indirect branches (target not encoded in the instruction).
    size:
        Instruction size in bytes.
    block_id:
        Identifier of the static basic block this instruction belongs to
        (used for basic-block-vector profiling).
    """

    opcode: Opcode
    srcs: tuple[int, ...]
    dest: Optional[int]
    pc: int
    address: Optional[int] = None
    taken: Optional[bool] = None
    target: Optional[int] = None
    indirect: bool = False
    size: int = DEFAULT_INSTR_BYTES
    block_id: int = -1

    @property
    def op_class(self) -> OpClass:
        """Functional-unit class of this micro-op."""
        return OPCODE_CLASS[self.opcode]

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_mem(self) -> bool:
        return is_memory(self.opcode)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.opcode)
