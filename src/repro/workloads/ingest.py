"""On-disk trace ingestion: ChampSim-style binary and gem5-ish textual traces.

The paper's methodology runs SimPoint-selected probes of SPEC CPU2006 traces
captured with gem5/ChampSim.  This module is the "real workload" entry point
of the reproduction: it reads compressed on-disk instruction traces, maps the
external records onto the internal :class:`~repro.workloads.isa.MicroOp`
vocabulary and hands the result to the rest of the system as an ordinary
:class:`~repro.workloads.decoded.DecodedTrace` — same content digests, same
compact numpy-column worker shipping, same result-store keys as synthetic
traces.  Nothing downstream (SimPoint extraction, the job engine, the
detection pipeline) knows or cares that a trace came from disk.

Three formats are supported (full byte-level / grammar documentation lives in
``docs/TRACES.md``):

``champsim``
    Fixed 64-byte little-endian records mirroring ChampSim's ``input_instr``
    struct: instruction pointer, branch flag + outcome, two destination and
    four source register bytes, two destination and four source memory
    addresses.  ChampSim records carry no opcode, so the mapping is lossy by
    design: branch records become ``BRANCH``, records with a source (resp.
    destination) memory address become ``LOAD`` (resp. ``STORE``), and every
    other record gets a *static* ALU/FP opcode chosen deterministically from
    its instruction pointer — the same ``ip`` always decodes to the same
    opcode, like a real static instruction.  Branch targets are reconstructed
    from the following record's instruction pointer.

``gem5``
    A line-oriented textual format in the spirit of gem5's exec trace:
    ``<seq> <pc-hex> <mnemonic> [KEY=value ...]`` with mnemonics naming
    :class:`~repro.workloads.isa.Opcode` members.  This format is
    full-fidelity: every ``MicroOp`` field round-trips exactly.

``k6``
    A DRAMSim-style memory trace: one ``<address> <command> <cycle>`` line
    per memory access, with ``P_MEM_RD`` mapping to ``LOAD`` and ``P_MEM_WR``
    to ``STORE``.  Memory traces carry no control flow, so program counters
    are synthesized at a fixed stride and basic blocks are derived from
    *data* locality instead: each 4 KiB page gets one block id, assigned
    densely in first-appearance order, so BBV/SimPoint profiling clusters
    intervals by the memory regions they touch.  This is the natural input
    format for the memory-hierarchy study (:mod:`repro.memsim`).

All formats may be stored raw, gzip-framed or xz-framed; compression is
detected from the file's magic bytes, never from its name.  Basic blocks
(needed for BBV/SimPoint profiling) are re-derived from the dynamic stream —
a new block starts at the first instruction and after every control-flow
instruction, keyed by its leader's address — unless the file itself carries
block ids (gem5 ``B=``).  File-supplied ids must be non-negative; sparse id
sets are densely renumbered in first-appearance order so the BBV dimension
always equals the distinct-block count (content digests are unaffected —
they never include block ids).
"""

from __future__ import annotations

import argparse
import gzip
import lzma
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .decoded import DecodedTrace
from .isa import (
    DEFAULT_INSTR_BYTES,
    NUM_ARCH_REGS,
    MicroOp,
    Opcode,
    is_branch,
    is_memory,
)


class TraceIngestError(ValueError):
    """A trace file could not be ingested (truncated, corrupt or malformed)."""


# -- compression framing -------------------------------------------------------

_GZIP_MAGIC = b"\x1f\x8b"
_XZ_MAGIC = b"\xfd7zXZ\x00"


def _read_payload(path: Path) -> bytes:
    """Read *path* fully, transparently unframing gzip/xz by magic bytes."""
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise TraceIngestError(f"{path}: cannot read trace file: {exc}") from exc
    try:
        if raw.startswith(_GZIP_MAGIC):
            return gzip.decompress(raw)
        if raw.startswith(_XZ_MAGIC):
            return lzma.decompress(raw)
    except (OSError, EOFError, lzma.LZMAError, gzip.BadGzipFile, zlib.error) as exc:
        raise TraceIngestError(f"{path}: corrupt compressed trace: {exc}") from exc
    return raw


def _write_payload(path: Path, payload: bytes) -> None:
    """Write *payload* to *path*, compressing according to the file suffix."""
    suffix = path.suffix
    if suffix == ".gz":
        payload = gzip.compress(payload, mtime=0)
    elif suffix == ".xz":
        payload = lzma.compress(payload)
    path.write_bytes(payload)


# -- basic-block derivation ----------------------------------------------------


def assign_blocks(uops: Sequence[MicroOp]) -> int:
    """Assign dense ``block_id`` values to *uops* in place; returns the count.

    A basic block starts at the first instruction of the stream and after
    every control-flow instruction; blocks are keyed by their leader's
    address, so re-executions of the same code map onto the same id — which
    is exactly the property basic-block-vector profiling needs.
    """
    leaders: dict[int, int] = {}
    block_id = -1
    at_leader = True
    for uop in uops:
        if at_leader:
            block_id = leaders.setdefault(uop.pc, len(leaders))
            at_leader = False
        uop.block_id = block_id
        if uop.is_branch:
            at_leader = True
    return len(leaders)


def densify_blocks(uops: Sequence[MicroOp]) -> int:
    """Renumber existing ``block_id`` values densely, in place; returns count.

    Ids are remapped in first-appearance order, so the result is a pure
    function of the instruction stream — a sparse user-supplied id set (say
    ``{0, 900}``) and its dense equivalent produce identical BBVs.  Content
    digests never include block ids, so renumbering cannot change a trace's
    result-store identity.
    """
    remap: dict[int, int] = {}
    for uop in uops:
        uop.block_id = remap.setdefault(uop.block_id, len(remap))
    return len(remap)


# -- ChampSim-style binary format ----------------------------------------------

#: ChampSim ``input_instr``: ip u64; is_branch, branch_taken u8;
#: destination_registers u8[2]; source_registers u8[4];
#: destination_memory u64[2]; source_memory u64[4].  Little-endian, 64 bytes.
CHAMPSIM_RECORD = struct.Struct("<Q8B6Q")

#: Static opcodes assigned to non-memory, non-branch ChampSim records,
#: selected by ``(ip >> 2) % len`` so each static instruction keeps a stable
#: opcode while the stream still exercises every functional-unit class.
CHAMPSIM_ALU_OPCODES = (
    Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR,
    Opcode.SHIFT, Opcode.CMP, Opcode.MOV, Opcode.POPCNT, Opcode.MUL,
    Opcode.DIV, Opcode.FADD, Opcode.FMUL,
)


def _map_register(reg: int) -> int:
    """Map a ChampSim register byte (1-255; 0 = none) onto the synthetic ISA."""
    return (reg - 1) % NUM_ARCH_REGS


def read_champsim(path: str | Path) -> list[MicroOp]:
    """Ingest a ChampSim-style binary trace into a micro-op list."""
    path = Path(path)
    payload = _read_payload(path)
    if not payload:
        raise TraceIngestError(f"{path}: empty trace")
    record_size = CHAMPSIM_RECORD.size
    if len(payload) % record_size:
        raise TraceIngestError(
            f"{path}: truncated ChampSim trace: {len(payload)} bytes is not a "
            f"multiple of the {record_size}-byte record size"
        )
    num_alu = len(CHAMPSIM_ALU_OPCODES)
    uops: list[MicroOp] = []
    records = list(CHAMPSIM_RECORD.iter_unpack(payload))
    for index, record in enumerate(records):
        ip, branch_flag, branch_taken = record[0], record[1], record[2]
        dest_regs = record[3:5]
        src_regs = record[5:9]
        dest_mem = record[9:11]
        src_mem = record[11:15]
        srcs = tuple(_map_register(r) for r in src_regs if r)
        dest = _map_register(dest_regs[0]) if dest_regs[0] else None
        address = None
        taken = None
        target = None
        if branch_flag:
            opcode = Opcode.BRANCH
            taken = bool(branch_taken)
            dest = None
            if index + 1 < len(records):
                next_ip = records[index + 1][0]
            else:
                next_ip = ip + DEFAULT_INSTR_BYTES
            target = next_ip if taken else ip + DEFAULT_INSTR_BYTES
        elif src_mem[0]:
            opcode = Opcode.LOAD
            address = src_mem[0]
            srcs = srcs[:1] or (0,)
        elif dest_mem[0]:
            opcode = Opcode.STORE
            address = dest_mem[0]
            dest = None
        else:
            opcode = CHAMPSIM_ALU_OPCODES[(ip >> 2) % num_alu]
            if dest is None:
                dest = (ip >> 2) % NUM_ARCH_REGS
        uops.append(
            MicroOp(
                opcode=opcode,
                srcs=srcs,
                dest=dest,
                pc=ip,
                address=address,
                taken=taken,
                target=target,
            )
        )
    assign_blocks(uops)
    return uops


def write_champsim(path: str | Path, uops: Iterable[MicroOp]) -> int:
    """Write *uops* as a ChampSim-style binary trace; returns records written.

    The encoding is lossy in exactly the ways ingestion is: opcodes collapse
    to branch / load / store / "other" (re-ingestion re-derives a static ALU
    opcode from the instruction pointer), and registers are stored offset by
    one because register 0 means "none" in ChampSim records.
    """
    path = Path(path)
    chunks: list[bytes] = []
    for uop in uops:
        dest_regs = [0, 0]
        src_regs = [0, 0, 0, 0]
        dest_mem = [0, 0]
        src_mem = [0, 0, 0, 0]
        if uop.dest is not None and not uop.is_store:
            dest_regs[0] = (uop.dest % NUM_ARCH_REGS) + 1
        for slot, src in enumerate(uop.srcs[:4]):
            src_regs[slot] = (src % NUM_ARCH_REGS) + 1
        if uop.is_load and uop.address is not None:
            src_mem[0] = uop.address
        elif uop.is_store and uop.address is not None:
            dest_mem[0] = uop.address
        chunks.append(
            CHAMPSIM_RECORD.pack(
                uop.pc,
                1 if uop.is_branch else 0,
                1 if (uop.is_branch and uop.taken) else 0,
                *dest_regs,
                *src_regs,
                *dest_mem,
                *src_mem,
            )
        )
    _write_payload(path, b"".join(chunks))
    return len(chunks)


# -- gem5-ish textual format ---------------------------------------------------

_GEM5_MNEMONICS = {opcode.name.lower(): opcode for opcode in Opcode}


def read_gem5(path: str | Path) -> list[MicroOp]:
    """Ingest a gem5-ish textual trace into a micro-op list."""
    path = Path(path)
    payload = _read_payload(path)
    if not payload.strip():
        raise TraceIngestError(f"{path}: empty trace")
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceIngestError(f"{path}: not a textual trace: {exc}") from exc
    uops: list[MicroOp] = []
    saw_block = False
    missing_block_line: int | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise TraceIngestError(
                f"{path}:{lineno}: expected '<seq> <pc> <mnemonic> [KEY=value ...]', "
                f"got {line!r}"
            )
        _, pc_text, mnemonic = parts[0], parts[1], parts[2]
        opcode = _GEM5_MNEMONICS.get(mnemonic)
        if opcode is None:
            raise TraceIngestError(
                f"{path}:{lineno}: unknown mnemonic {mnemonic!r}"
            )
        fields = {}
        for token in parts[3:]:
            key, sep, value = token.partition("=")
            if not sep or key not in ("D", "S", "A", "TK", "T", "I", "SZ", "B"):
                raise TraceIngestError(
                    f"{path}:{lineno}: malformed field {token!r}"
                )
            fields[key] = value
        try:
            pc = int(pc_text, 16)
            srcs = tuple(
                int(s) for s in fields["S"].split(",") if s
            ) if "S" in fields else ()
            dest = int(fields["D"]) if "D" in fields else None
            address = int(fields["A"], 16) if "A" in fields else None
            taken = bool(int(fields["TK"])) if "TK" in fields else None
            target = int(fields["T"], 16) if "T" in fields else None
            indirect = bool(int(fields["I"])) if "I" in fields else False
            size = int(fields["SZ"]) if "SZ" in fields else DEFAULT_INSTR_BYTES
            block_id = int(fields["B"]) if "B" in fields else -1
        except ValueError as exc:
            raise TraceIngestError(f"{path}:{lineno}: {exc}") from exc
        if "B" in fields and block_id < 0:
            # A negative id would corrupt num_blocks (max+1) and every BBV
            # dimension downstream; the -1 sentinel is internal-only.
            raise TraceIngestError(
                f"{path}:{lineno}: negative basic-block id B={block_id}"
            )
        if is_memory(opcode) and address is None:
            raise TraceIngestError(
                f"{path}:{lineno}: memory op {mnemonic!r} lacks an A= address"
            )
        if is_branch(opcode) and taken is None:
            raise TraceIngestError(
                f"{path}:{lineno}: branch {mnemonic!r} lacks a TK= outcome"
            )
        if "B" in fields:
            saw_block = True
        elif missing_block_line is None:
            missing_block_line = lineno
        uops.append(
            MicroOp(
                opcode=opcode,
                srcs=srcs,
                dest=dest,
                pc=pc,
                address=address,
                taken=taken,
                target=target,
                indirect=indirect,
                size=size,
                block_id=block_id,
            )
        )
    if saw_block and missing_block_line is not None:
        # Mixed B= usage would leave the B-less lines at block_id=-1 and
        # silently drop them from every basic-block vector; refuse instead.
        raise TraceIngestError(
            f"{path}:{missing_block_line}: line lacks B= but other lines "
            "carry it; supply B= on every line or on none"
        )
    if not saw_block:
        assign_blocks(uops)
    else:
        distinct = {uop.block_id for uop in uops}
        if max(distinct) + 1 != len(distinct):
            # Sparse user-supplied ids (e.g. only B=0 and B=900) would blow
            # the BBV dimension up to max+1; renumber densely instead.  Dense
            # id sets pass through untouched, preserving full-fidelity
            # round-trips.
            densify_blocks(uops)
    return uops


def write_gem5(path: str | Path, uops: Iterable[MicroOp]) -> int:
    """Write *uops* as a gem5-ish textual trace (full fidelity)."""
    path = Path(path)
    lines = ["# gem5-ish trace: <seq> <pc-hex> <mnemonic> [KEY=value ...]"]
    count = 0
    for seq, uop in enumerate(uops):
        parts = [str(seq), f"0x{uop.pc:x}", uop.opcode.name.lower()]
        if uop.dest is not None:
            parts.append(f"D={uop.dest}")
        if uop.srcs:
            parts.append("S=" + ",".join(str(s) for s in uop.srcs))
        if uop.address is not None:
            parts.append(f"A=0x{uop.address:x}")
        if uop.taken is not None:
            parts.append(f"TK={int(uop.taken)}")
        if uop.target is not None:
            parts.append(f"T=0x{uop.target:x}")
        if uop.indirect:
            parts.append("I=1")
        if uop.size != DEFAULT_INSTR_BYTES:
            parts.append(f"SZ={uop.size}")
        if uop.block_id >= 0:
            parts.append(f"B={uop.block_id}")
        lines.append(" ".join(parts))
        count += 1
    _write_payload(path, ("\n".join(lines) + "\n").encode("utf-8"))
    return count


# -- DRAMSim-style k6 memory-trace format --------------------------------------

#: k6 commands and the micro-ops they map onto.
K6_COMMANDS: dict[str, Opcode] = {
    "P_MEM_RD": Opcode.LOAD,
    "P_MEM_WR": Opcode.STORE,
}
_K6_COMMAND_NAMES = {Opcode.LOAD: "P_MEM_RD", Opcode.STORE: "P_MEM_WR"}

#: Synthetic code region for k6 records: memory traces carry no program
#: counters, so each record gets a fresh pc at a fixed stride.
K6_CODE_BASE = 0x00C0_0000

#: Block-derivation granularity: one basic block per 4 KiB page touched.
K6_PAGE_SHIFT = 12

#: Cycle stride the writer synthesizes (k6 cycles are advisory timestamps;
#: ingestion only checks that they are non-negative and non-decreasing).
K6_CYCLE_STRIDE = 10


def read_k6(path: str | Path) -> list[MicroOp]:
    """Ingest a DRAMSim-style k6 memory trace into a micro-op list.

    Each non-comment line is ``<address> <command> <cycle>`` with the address
    hex (``0x...``) or base-prefixed, the command one of ``P_MEM_RD`` /
    ``P_MEM_WR`` and the cycle a non-negative, non-decreasing integer.  Reads
    become ``LOAD`` micro-ops (with a destination register derived
    deterministically from the address), writes become ``STORE``.  Program
    counters are synthesized at a fixed stride from :data:`K6_CODE_BASE`, and
    block ids are the trace's 4 KiB pages in first-appearance order — the
    BBV analogue for a pure data stream.
    """
    path = Path(path)
    payload = _read_payload(path)
    if not payload.strip():
        raise TraceIngestError(f"{path}: empty trace")
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceIngestError(f"{path}: not a textual trace: {exc}") from exc
    uops: list[MicroOp] = []
    pages: dict[int, int] = {}
    last_cycle = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise TraceIngestError(
                f"{path}:{lineno}: expected '<address> <command> <cycle>', "
                f"got {line!r}"
            )
        address_text, command, cycle_text = parts
        opcode = K6_COMMANDS.get(command)
        if opcode is None:
            raise TraceIngestError(
                f"{path}:{lineno}: unknown k6 command {command!r} "
                f"(expected {'/'.join(sorted(K6_COMMANDS))})"
            )
        try:
            address = int(address_text, 0)
            cycle = int(cycle_text)
        except ValueError as exc:
            raise TraceIngestError(f"{path}:{lineno}: {exc}") from exc
        if address < 0:
            raise TraceIngestError(
                f"{path}:{lineno}: negative address {address_text}"
            )
        if cycle < 0:
            raise TraceIngestError(f"{path}:{lineno}: negative cycle {cycle}")
        if cycle < last_cycle:
            raise TraceIngestError(
                f"{path}:{lineno}: cycle {cycle} goes backwards "
                f"(previous record at {last_cycle})"
            )
        last_cycle = cycle
        block_id = pages.setdefault(address >> K6_PAGE_SHIFT, len(pages))
        if opcode is Opcode.LOAD:
            dest = (address >> 6) % NUM_ARCH_REGS
        else:
            dest = None
        uops.append(
            MicroOp(
                opcode=opcode,
                srcs=(0,),
                dest=dest,
                pc=K6_CODE_BASE + DEFAULT_INSTR_BYTES * len(uops),
                address=address,
                block_id=block_id,
            )
        )
    if not uops:
        raise TraceIngestError(f"{path}: empty trace (no k6 records)")
    return uops


def write_k6(path: str | Path, uops: Iterable[MicroOp]) -> int:
    """Write the memory accesses of *uops* as a k6 trace; returns records.

    The encoding is lossy by design: k6 records carry only memory traffic,
    so non-memory micro-ops are dropped and cycle timestamps are synthesized
    at :data:`K6_CYCLE_STRIDE`.  Re-ingesting the output reproduces exactly
    the micro-ops :func:`read_k6` yields for the same access stream, so
    k6-sourced traces round-trip bit-identically (same content digest).
    """
    path = Path(path)
    lines = ["# k6 memory trace: <address> <command> <cycle>"]
    cycle = 0
    for uop in uops:
        if not uop.is_mem or uop.address is None:
            continue
        cycle += K6_CYCLE_STRIDE
        lines.append(f"0x{uop.address:x} {_K6_COMMAND_NAMES[uop.opcode]} {cycle}")
    _write_payload(path, ("\n".join(lines) + "\n").encode("utf-8"))
    return len(lines) - 1


# -- format registry and discovery ---------------------------------------------


@dataclass(frozen=True)
class TraceFormat:
    """One supported on-disk trace format."""

    name: str
    suffixes: tuple[str, ...]
    reader: Callable[[Path], list[MicroOp]]
    writer: Callable[[Path, Iterable[MicroOp]], int]


TRACE_FORMATS: dict[str, TraceFormat] = {
    fmt.name: fmt
    for fmt in (
        TraceFormat(
            name="champsim",
            suffixes=(".champsim", ".champsim.gz", ".champsim.xz"),
            reader=read_champsim,
            writer=write_champsim,
        ),
        TraceFormat(
            name="gem5",
            suffixes=(".gem5", ".gem5.gz", ".gem5.xz"),
            reader=read_gem5,
            writer=write_gem5,
        ),
        TraceFormat(
            name="k6",
            suffixes=(".k6", ".k6.gz", ".k6.xz"),
            reader=read_k6,
            writer=write_k6,
        ),
    )
}


def trace_format(name: str) -> TraceFormat:
    """Resolve a format name, with a clear error for unknown ones."""
    try:
        return TRACE_FORMATS[name]
    except KeyError:
        raise TraceIngestError(
            f"unknown trace format {name!r}; available: {sorted(TRACE_FORMATS)}"
        ) from None


def _match_format(path: Path) -> TraceFormat | None:
    for fmt in TRACE_FORMATS.values():
        if any(path.name.endswith(suffix) for suffix in fmt.suffixes):
            return fmt
    return None


def _trace_name(path: Path, fmt: TraceFormat) -> str:
    for suffix in fmt.suffixes:
        if path.name.endswith(suffix):
            return path.name[: -len(suffix)]
    return path.stem  # pragma: no cover - discovery always matches a suffix


class IngestedTrace:
    """One on-disk trace, parsed and decoded lazily on first use.

    The instruction stream is read and mapped exactly once, on first access
    to :attr:`decoded`; until then the object is just a (name, path, format)
    handle, so directories can be discovered and listed cheaply.  The decoded
    form is a plain :class:`~repro.workloads.decoded.DecodedTrace`, which is
    what :meth:`register` hands to a
    :class:`~repro.runtime.job.TraceRegistry` — workers therefore receive
    ingested traces as the same compact numpy columns as synthetic ones, and
    the content digest (and thus every result-store key) depends only on the
    mapped instruction stream, not on the file name, location or framing.
    """

    def __init__(self, path: str | Path, fmt: TraceFormat) -> None:
        self.path = Path(path)
        self.format = fmt
        self.name = _trace_name(self.path, fmt)
        self._decoded: DecodedTrace | None = None
        self._num_blocks: int | None = None

    @property
    def decoded(self) -> DecodedTrace:
        """The mapped instruction stream (file parsed on first access)."""
        if self._decoded is None:
            uops = self.format.reader(self.path)
            self._num_blocks = max(u.block_id for u in uops) + 1 if uops else 0
            self._decoded = DecodedTrace.from_uops(uops)
        return self._decoded

    @property
    def num_blocks(self) -> int:
        """Number of derived basic blocks (dimension of the trace's BBVs)."""
        self.decoded
        return self._num_blocks  # type: ignore[return-value]

    @property
    def digest(self) -> str:
        """Content digest of the mapped stream (the runtime trace id)."""
        return self.decoded.digest

    def register(self, registry) -> str:
        """Register the decoded trace with *registry*; returns the trace id."""
        return registry.register(self.decoded)

    def __len__(self) -> int:
        return len(self.decoded)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<IngestedTrace {self.name} [{self.format.name}] at {self.path}>"


def ingest_trace(path: str | Path, fmt: str | None = None) -> IngestedTrace:
    """Wrap one trace file; *fmt* overrides suffix-based format detection."""
    path = Path(path)
    if fmt is not None:
        resolved = trace_format(fmt)
    else:
        resolved = _match_format(path)
        if resolved is None:
            raise TraceIngestError(
                f"{path}: cannot detect trace format from the file name; "
                f"known suffixes: "
                f"{sorted(s for f in TRACE_FORMATS.values() for s in f.suffixes)}"
            )
    return IngestedTrace(path, resolved)


def discover_traces(
    trace_dir: str | Path, fmt: str | None = None
) -> list[IngestedTrace]:
    """Find every ingestible trace under *trace_dir*, sorted by name.

    *fmt* restricts discovery to one format (``"champsim"`` / ``"gem5"`` /
    ``"k6"``); ``None`` accepts every known suffix.  Raises
    :class:`TraceIngestError` when the directory does not exist, holds no
    matching traces, or holds two files resolving to the same trace name
    (e.g. ``foo.gem5.gz`` next to ``foo.gem5.xz``) — downstream probe names
    are derived from trace names, so a silent collision would let one trace
    shadow the other in every report.
    """
    root = Path(trace_dir)
    if not root.is_dir():
        raise TraceIngestError(f"trace directory {root} does not exist")
    formats = [trace_format(fmt)] if fmt is not None else list(TRACE_FORMATS.values())
    found: list[IngestedTrace] = []
    for path in sorted(root.iterdir()):
        if not path.is_file():
            continue
        for candidate in formats:
            if any(path.name.endswith(suffix) for suffix in candidate.suffixes):
                found.append(IngestedTrace(path, candidate))
                break
    if not found:
        wanted = sorted(s for f in formats for s in f.suffixes)
        raise TraceIngestError(
            f"no {'/'.join(f.name for f in formats)} traces under {root} "
            f"(looked for {wanted})"
        )
    by_name: dict[str, list[Path]] = {}
    for trace in found:
        by_name.setdefault(trace.name, []).append(trace.path)
    collisions = [
        f"{name}: {', '.join(str(p) for p in paths)}"
        for name, paths in sorted(by_name.items())
        if len(paths) > 1
    ]
    if collisions:
        raise TraceIngestError(
            f"duplicate trace names under {root} (probe names derive from "
            f"trace names, so one file would shadow the other): "
            + "; ".join(collisions)
        )
    return found


# -- inspection CLI (`repro-ingest`) -------------------------------------------


def _class_mix(uops: Sequence[MicroOp]) -> str:
    """Short ``class:percent`` summary of the functional-unit mix."""
    from .isa import OPCODE_CLASS

    counts: dict[str, int] = {}
    for uop in uops:
        name = OPCODE_CLASS[uop.opcode].name
        counts[name] = counts.get(name, 0) + 1
    total = max(1, len(uops))
    top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
    return " ".join(f"{name}:{100 * count / total:.0f}%" for name, count in top)


def main(argv: list[str] | None = None) -> int:
    """Inspect on-disk traces: formats, sizes, digests and probe extraction."""
    parser = argparse.ArgumentParser(
        prog="repro-ingest",
        description="Inspect ChampSim/gem5/k6-style on-disk traces and "
        "preview the SimPoint probes they would contribute.",
    )
    parser.add_argument("trace_dir", help="directory holding trace files")
    parser.add_argument("--format", default=None, choices=sorted(TRACE_FORMATS),
                        help="restrict to one trace format (default: all)")
    parser.add_argument("--probes", action="store_true",
                        help="additionally run SimPoint extraction per trace")
    parser.add_argument("--interval-size", type=int, default=3_000,
                        help="instructions per SimPoint interval (default 3000)")
    parser.add_argument("--max-simpoints", type=int, default=8,
                        help="probe cap per trace (default 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="SimPoint clustering seed (default 0)")
    args = parser.parse_args(argv)

    traces = discover_traces(args.trace_dir, args.format)
    probes = []
    if args.probes:
        # One extraction pass over the directory, with the same discovery
        # scope (and therefore the same per-trace seed offsets) as an
        # experiment run using the same --format restriction.
        from ..detect.probe import build_ingested_probes

        probes = build_ingested_probes(
            args.trace_dir,
            trace_format=args.format,
            interval_size=args.interval_size,
            max_simpoints_per_trace=args.max_simpoints,
            seed=args.seed,
        )
    for trace in traces:
        size = trace.path.stat().st_size
        uops = trace.decoded.uops
        print(
            f"{trace.name}  format={trace.format.name}  file={size}B  "
            f"instructions={len(uops)}  blocks={trace.num_blocks}  "
            f"digest={trace.digest}"
        )
        print(f"  mix: {_class_mix(uops)}")
        for probe in probes:
            if probe.benchmark != trace.name:
                continue
            print(
                f"  probe {probe.name}: {len(probe.trace)} instrs, "
                f"weight {probe.weight:.3f} "
                f"(interval {probe.simpoint.interval_index})"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
