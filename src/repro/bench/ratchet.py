"""Perf trajectory ratchet: fail CI on single-thread speedup regression.

``repro-bench`` writes ``BENCH_simulation.json`` with a
``single.aggregate_speedup`` headline (optimized vs frozen seed pipeline,
counter-equivalence asserted).  This module turns that number from a static
floor into a **trajectory**: each CI run compares itself against the
previous run's uploaded artifact and fails on regression beyond a noise
tolerance.

The schema-v5 ``native.aggregate_speedup`` column (compiled C kernel vs
scalar) is gated the same way with its own static floor
(:data:`NATIVE_FLOOR`) whenever the reports carry it — reports from
compiler-less hosts record ``available: false`` and the native gate simply
does not apply.  The ``batch``, ``serve`` and (schema-v6) ``cluster``
columns stay tracked-not-gated.

CI runners (especially 1-vCPU ones) are noisy, so the gate is deliberately
forgiving: the *current* measurement is the **median** of N ``repro-bench``
runs (CI uses 3), and the regression threshold is
``previous * (1 - tolerance)`` with a generous default tolerance.  When no
previous artifact exists (first run, expired artifact, fork PR), the check
falls back to the static seed floor.  Usage::

    python -m repro.bench.ratchet bench-1.json bench-2.json bench-3.json \\
        --previous prev/BENCH_simulation.json --floor 2.0 --emit BENCH_simulation.json

``--emit PATH`` writes out the report whose speedup is the median, so the
artifact uploaded for the *next* run's comparison represents the median
measurement, not an arbitrary run.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
from dataclasses import dataclass
from pathlib import Path

#: Default fraction the median may fall below the previous run before the
#: ratchet fails.  1-vCPU CI runners fluctuate ±15%; 25% keeps false
#: positives rare while still catching real (order-of-tens-of-percent)
#: hot-path regressions.
DEFAULT_TOLERANCE = 0.25

#: Default static floor, matching the CI ``--quick`` floor (the non-quick
#: workload targets ≥3x; ``--quick`` keeps headroom for runner noise).
DEFAULT_FLOOR = 2.0

#: Static floor for the native-kernel speedup (``native.aggregate_speedup``,
#: compiled C vs scalar).  The kernel benches far above this on every host
#: tried; the floor is the order-of-magnitude claim's backstop, kept at 2x
#: for the same runner-noise headroom as the single-thread floor.
NATIVE_FLOOR = 2.0


def read_speedup(path: "str | Path") -> float:
    """The ``single.aggregate_speedup`` headline of one report file."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return float(report["single"]["aggregate_speedup"])


def read_batch_speedup(path: "str | Path") -> "float | None":
    """The ``batch.aggregate_speedup`` column (None for pre-v3 reports).

    The vector-kernel batch column is *recorded and tracked*, not gated:
    its ratio is far more sensitive to host cache/core topology than the
    single-thread headline, so the ratchet reports its trajectory while
    regressing only on the stable single-thread number.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    batch = report.get("batch")
    if not batch:
        return None
    return float(batch["aggregate_speedup"])


def read_native_speedup(path: "str | Path") -> "float | None":
    """The ``native.aggregate_speedup`` column, or None when absent.

    Absent means a pre-v5 report *or* a host with no C compiler
    (``native.available == false``) — in both cases the native gate simply
    does not apply.  When the column is present it is **gated** (floor
    :data:`NATIVE_FLOOR`, ratcheted against the previous artifact like the
    single-thread headline): the compiled kernel is a headline perf claim,
    and it is a pure single-thread CPU ratio, as stable as ``single``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    native = report.get("native")
    if not native or not native.get("available"):
        return None
    return float(native["aggregate_speedup"])


def read_cluster_requeues(path: "str | Path") -> "tuple[int, int] | None":
    """The ``cluster`` (chunks_requeued, workers_respawned) totals (None pre-v6).

    Tracked, not gated: on a healthy runner both totals are zero across
    every policy, and a nonzero value in the trajectory flags flaky worker
    infrastructure — but gating on it would make the ratchet fail on the
    very runner flakiness the elastic backend exists to absorb.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    policies = report.get("cluster", {}).get("policies")
    if not policies:
        return None
    return (
        sum(int(row.get("chunks_requeued", 0)) for row in policies.values()),
        sum(int(row.get("workers_respawned", 0)) for row in policies.values()),
    )


def read_serve_latency(path: "str | Path") -> "tuple[float, float] | None":
    """The ``serve`` warm (p50_ms, verdicts_per_sec) pair (None pre-v4).

    Like the batch column, the serving-latency trajectory is *recorded and
    tracked*, not gated: socket round-trip times on shared CI runners swing
    far more than the single-thread headline.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    warm = report.get("serve", {}).get("warm")
    if not warm:
        return None
    return float(warm["p50_ms"]), float(warm["verdicts_per_sec"])


@dataclass
class RatchetResult:
    """Outcome of one ratchet evaluation."""

    ok: bool
    median: float
    previous: float | None
    threshold: float
    message: str


def evaluate(
    speedups: "list[float]",
    previous: "float | None",
    floor: float = DEFAULT_FLOOR,
    tolerance: float = DEFAULT_TOLERANCE,
) -> RatchetResult:
    """Gate the median of *speedups* against the previous run (or the floor).

    The static *floor* always applies as a backstop; on top of it, a known
    *previous* speedup ratchets the threshold up to
    ``previous * (1 - tolerance)``.
    """
    if not speedups:
        raise ValueError("need at least one speedup measurement")
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    median = statistics.median(speedups)
    threshold = floor
    basis = f"static floor {floor:g}x"
    if previous is not None:
        ratchet = previous * (1 - tolerance)
        if ratchet > threshold:
            threshold = ratchet
            basis = f"previous {previous:g}x - {tolerance:.0%} tolerance"
    ok = median >= threshold
    verdict = "ok" if ok else "REGRESSION"
    message = (
        f"perf ratchet {verdict}: median speedup {median:g}x over "
        f"{len(speedups)} run(s) vs threshold {threshold:g}x ({basis})"
    )
    return RatchetResult(
        ok=ok, median=median, previous=previous, threshold=threshold, message=message
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.ratchet", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "reports", nargs="+", metavar="BENCH_JSON",
        help="current-run repro-bench reports; the median gates",
    )
    parser.add_argument(
        "--previous", default=None, metavar="PATH",
        help="previous run's BENCH_simulation.json artifact; missing or "
             "unreadable falls back to the static floor",
    )
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR,
        help=f"static speedup floor when no previous artifact exists "
             f"(default {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed fractional regression vs the previous run "
             f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--emit", default=None, metavar="PATH",
        help="copy the median report here (the artifact the next run "
             "compares against)",
    )
    args = parser.parse_args(argv)

    speedups = []
    natives = []
    batches = []
    serve_p50s = []
    serve_rates = []
    cluster_requeues = []
    for path in args.reports:
        speedup = read_speedup(path)
        speedups.append(speedup)
        native = read_native_speedup(path)
        if native is not None:
            natives.append(native)
        native_note = f", native {native:g}x" if native is not None else ""
        batch = read_batch_speedup(path)
        if batch is not None:
            batches.append(batch)
        batch_note = f", batch(vector) {batch:g}x" if batch is not None else ""
        serve = read_serve_latency(path)
        serve_note = ""
        if serve is not None:
            serve_p50s.append(serve[0])
            serve_rates.append(serve[1])
            serve_note = f", serve {serve[0]:g}ms p50"
        cluster = read_cluster_requeues(path)
        cluster_note = ""
        if cluster is not None:
            cluster_requeues.append(cluster[0])
            cluster_note = f", cluster requeues {cluster[0]}"
        print(
            f"  {path}: {speedup:g}x{native_note}{batch_note}{serve_note}"
            f"{cluster_note}"
        )
    if batches:
        print(
            f"  batch(vector) median {statistics.median(batches):g}x "
            "(tracked, not gated)"
        )
    if serve_p50s:
        print(
            f"  serve warm median {statistics.median(serve_p50s):g}ms p50, "
            f"{statistics.median(serve_rates):g} verdicts/s "
            "(tracked, not gated)"
        )
    if cluster_requeues:
        print(
            f"  cluster requeues total {sum(cluster_requeues)} across "
            f"{len(cluster_requeues)} run(s) (tracked, not gated)"
        )

    previous = None
    prev_native = None
    if args.previous is not None:
        try:
            previous = read_speedup(args.previous)
            print(f"  previous artifact {args.previous}: {previous:g}x")
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"  previous artifact unusable ({exc}); using the static floor")
        else:
            try:
                prev_native = read_native_speedup(args.previous)
            except (ValueError, KeyError):
                prev_native = None

    result = evaluate(
        speedups, previous, floor=args.floor, tolerance=args.tolerance
    )
    print(result.message)

    native_result = None
    if natives:
        native_result = evaluate(
            natives, prev_native, floor=NATIVE_FLOOR, tolerance=args.tolerance
        )
        print(f"  native kernel {native_result.message}")
    ok = result.ok and (native_result is None or native_result.ok)

    if args.emit:
        # The report whose speedup lies closest to the gated median becomes
        # the artifact (== the median report for odd N).  Distance ties
        # (possible for even N) prefer the *lower* speedup: the next run's
        # threshold then errs toward leniency, never toward a false failure.
        median_path = min(
            zip(speedups, args.reports),
            key=lambda pair: (abs(pair[0] - result.median), pair[0], pair[1]),
        )[1]
        if Path(median_path).resolve() != Path(args.emit).resolve():
            shutil.copyfile(median_path, args.emit)
        print(f"  emitted median report {median_path} -> {args.emit}")

    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
