"""``repro-bench``: the tracked perf-benchmark harness.

Times the hot path of the reproduction at three layers and writes the
results to ``BENCH_simulation.json`` (schema below), establishing a perf
trajectory that successive PRs — and the CI perf-smoke job — can compare
against:

* ``single``   — single-thread simulation throughput on the *standard probe
  workload* (smoke-scale SimPoint probes across a representative preset
  mix), for both the optimized :func:`repro.coresim.simulate_trace` and the
  frozen pre-PR seed pipeline
  (:func:`repro.coresim._reference.reference_simulate_trace`).  The headline
  number is ``aggregate_speedup`` = total seed time / total optimized time.
  Counter equivalence is asserted on every timed pair, so the harness cannot
  report a speedup obtained by computing something different.
* ``engine``   — parallel batch throughput through a persistent
  :class:`~repro.runtime.JobEngine`, run as two consecutive batches to
  exercise pool reuse, under both the cost-aware ``ljf`` scheduler and the
  seed-style ``uniform`` scheduler.  ``--backend SPEC`` points this section
  at any execution backend (``local:N`` by default; e.g. ``subprocess:N``
  to time the worker wire protocol) and the chosen spec is recorded in a
  ``backend`` column of every scheduler row.
* ``cluster``  — policy A/B through the elastic ``cluster:N`` backend
  (:mod:`repro.cluster`): the same batch under every dispatch policy
  (``fifo``/``ljf``/``edd``/``suspend``) with per-policy makespan, requeue
  and worker-lifecycle metrics, plus *asserted* dispatch-order invariants
  (ljf dispatches costs non-increasing, edd follows deadlines, suspend
  never dispatches a lower priority while a higher one is queued or in
  flight).  Makespans and deltas are recorded-not-gated.
* ``store``    — cold simulate-and-fill versus warm replay against a
  :class:`~repro.runtime.ResultStore`.
* ``serve``    — end-to-end verdict latency through the ``repro-serve``
  detection daemon (:mod:`repro.serve`): a model is trained once, a daemon
  is started in-process, and probe-batch requests are timed over the real
  socket protocol — one cold pass (simulating) and several warm passes
  (served from the resident overlay, ``executed == 0`` asserted).  The
  headline numbers are warm p50/p99 per-verdict latency and verdicts/sec,
  recorded (not gated) by the perf ratchet.
* ``batch``    — batched same-config sweeps: N probes of one design run
  through the numpy lockstep **vector kernel**
  (:func:`repro.coresim.simulate_trace_batch`) versus the same N probes
  looped through the scalar kernel.  Counter equivalence is asserted on
  every pair, the ``kernel`` column names what was measured, and the
  aggregate scalar/vector ratio is the headline the perf ratchet tracks.
* ``native``   — single-thread throughput of the compiled C **native
  kernel** (:mod:`repro.coresim.native`) versus the scalar kernel on the
  standard probe workload, with the active compiler name/version recorded.
  Counter equivalence is asserted on every timed pair and the aggregate
  scalar/native ratio is gated (floor 2.0x) by the perf ratchet.  When no
  compiler is available the section records ``available: false`` instead
  of failing — the fallback path is the product behaviour being measured.

``--quick`` shrinks every dimension for CI smoke runs (roughly 15 s);
the default sizing is calibrated for a laptop minute or two.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Sequence

import numpy as np

from ..bugs.core_bugs import SerializeOpcode
from ..coresim import simulate_trace, simulate_trace_batch
from ..coresim._reference import reference_simulate_trace
from ..detect.probe import Probe, build_probes
from ..runtime import JobEngine, ResultStore, SimulationJob, TraceRegistry
from ..uarch import core_microarch
from ..workloads import TraceGenerator, build_program, decode_trace, workload
from ..workloads.isa import Opcode

#: Output schema version; bump when the JSON layout changes.
#: v2: engine section gained a ``backend`` spec column per scheduler row.
#: v3: new ``batch`` section (vector-kernel batched sweeps) and a
#:     ``kernel`` column on the single/batch rows.
#: v4: new ``serve`` section (repro-serve daemon verdict latency: warm
#:     p50/p99 ms and verdicts/sec over the socket protocol).
#: v5: new ``native`` section (compiled C kernel vs scalar on the standard
#:     probe workload, compiler name/version recorded; ``available: false``
#:     when no compiler is found).
#: v6: new ``cluster`` section (elastic ``cluster:N`` backend policy A/B:
#:     per-policy makespan/requeue metrics, deltas vs fifo, and asserted
#:     dispatch-order invariants for ljf/edd/suspend).
#: v7: new ``mixes`` section (multi-program mix build + memory-design sweep
#:     throughput, per-mix LLC MPKI on the reference design, digest-stability
#:     asserted on every build).
SCHEMA_VERSION = 7

#: Default output file, kept at the repo root by CI so the perf trajectory
#: of the project lives beside the code that produced it.
DEFAULT_OUTPUT = "BENCH_simulation.json"

#: Presets making up the standard probe workload: two wide real cores, one
#: narrow in-order-ish core and one older design — the spread the detection
#: experiments sweep.
STANDARD_PRESETS = ("Skylake", "Broadwell", "Cedarview", "K8")
QUICK_PRESETS = ("Skylake", "Cedarview")

#: Step size used for every timed simulation (the smoke-scale default).
STEP_CYCLES = 512


def _standard_probes(quick: bool) -> list[Probe]:
    """The standard probe workload (deterministic smoke-scale probes)."""
    benchmarks = ["403.gcc"] if quick else ["403.gcc", "458.sjeng"]
    return build_probes(
        benchmarks,
        instructions_per_benchmark=9_000 if quick else 15_000,
        interval_size=3_000,
        max_simpoints_per_benchmark=2 if quick else 3,
        seed=7,
    )


def _assert_equivalent(reference, optimized, context: str) -> None:
    """Fail loudly if the optimized simulator drifted from the seed."""
    if reference.cycles != optimized.cycles:
        raise AssertionError(
            f"{context}: cycle count diverged "
            f"(seed {reference.cycles}, optimized {optimized.cycles})"
        )
    ref_counters = reference.series.counters
    opt_counters = optimized.series.counters
    if set(ref_counters) != set(opt_counters):
        raise AssertionError(f"{context}: counter name sets diverged")
    for name, ref_values in ref_counters.items():
        if not np.array_equal(ref_values, opt_counters[name]):
            raise AssertionError(f"{context}: counter {name!r} diverged")


def bench_single(probes: Sequence[Probe], quick: bool) -> dict:
    """Single-thread throughput: optimized pipeline vs frozen seed pipeline."""
    presets = QUICK_PRESETS if quick else STANDARD_PRESETS
    repeats = 1 if quick else 3
    per_preset = {}
    total_ref = 0.0
    total_opt = 0.0
    instructions = sum(len(p.trace) for p in probes)
    for preset in presets:
        config = core_microarch(preset)
        ref_best = opt_best = float("inf")
        for _ in range(repeats):
            ref_elapsed = opt_elapsed = 0.0
            for probe in probes:
                start = time.perf_counter()
                reference = reference_simulate_trace(
                    config, probe.trace, step_cycles=STEP_CYCLES
                )
                ref_elapsed += time.perf_counter() - start
                decoded = probe.decoded
                start = time.perf_counter()
                optimized = simulate_trace(config, decoded, step_cycles=STEP_CYCLES)
                opt_elapsed += time.perf_counter() - start
                _assert_equivalent(
                    reference, optimized, f"{preset}/{probe.name}"
                )
            ref_best = min(ref_best, ref_elapsed)
            opt_best = min(opt_best, opt_elapsed)
        total_ref += ref_best
        total_opt += opt_best
        per_preset[preset] = {
            "seed_seconds": round(ref_best, 4),
            "optimized_seconds": round(opt_best, 4),
            "speedup": round(ref_best / opt_best, 3),
            "optimized_instr_per_sec": round(instructions / opt_best),
        }
    return {
        "kernel": "scalar",
        "probes": len(probes),
        "instructions_per_pass": instructions,
        "presets": per_preset,
        "aggregate_speedup": round(total_ref / total_opt, 3),
        "seed_instr_per_sec": round(len(presets) * instructions / total_ref),
        "optimized_instr_per_sec": round(len(presets) * instructions / total_opt),
        "counter_equivalence_checked": True,
    }


#: Batched-sweep sizing: probes per same-config sweep.
BATCH_SWEEP_PROBES = 192
BATCH_SWEEP_PROBES_QUICK = 48

#: Instructions per sweep probe (the smoke-scale probe length).
BATCH_PROBE_LENGTH = 3_000


def _sweep_traces(quick: bool):
    """Deterministic same-length probe set for the batched sweeps."""
    count = BATCH_SWEEP_PROBES_QUICK if quick else BATCH_SWEEP_PROBES
    program = build_program(workload("403.gcc"), seed=11)
    return [
        decode_trace(
            TraceGenerator(program, seed=1000 + i).generate(BATCH_PROBE_LENGTH)
        )
        for i in range(count)
    ]


def bench_batch(quick: bool) -> dict:
    """Batched same-config sweeps: vector lockstep kernel vs scalar loop.

    Every (probe, preset) pair is asserted counter-bit-identical between
    the kernels, so the reported ratio cannot come from computing something
    different.  Static per-trace decode is primed once outside the timed
    regions (both kernels reuse it identically across presets).
    """
    presets = QUICK_PRESETS if quick else STANDARD_PRESETS
    traces = _sweep_traces(quick)
    instructions = sum(len(t) for t in traces)
    # prime digests/static decode shared across every sweep below
    from ..coresim.vector import _static_for

    for trace in traces:
        trace.digest
        _static_for(trace)
    per_preset = {}
    total_scalar = 0.0
    total_vector = 0.0
    for preset in presets:
        config = core_microarch(preset)
        start = time.perf_counter()
        scalar = [
            simulate_trace(config, t, step_cycles=STEP_CYCLES, kernel="scalar")
            for t in traces
        ]
        scalar_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        vector = simulate_trace_batch(
            config, traces, step_cycles=STEP_CYCLES, kernel="vector"
        )
        vector_elapsed = time.perf_counter() - start
        for index, (a, b) in enumerate(zip(scalar, vector)):
            _assert_equivalent(a, b, f"batch:{preset}/probe{index}")
        total_scalar += scalar_elapsed
        total_vector += vector_elapsed
        per_preset[preset] = {
            "scalar_seconds": round(scalar_elapsed, 4),
            "vector_seconds": round(vector_elapsed, 4),
            "speedup": round(scalar_elapsed / vector_elapsed, 3),
            "vector_instr_per_sec": round(instructions / vector_elapsed),
        }
    return {
        "kernel": "vector",
        "probes": len(traces),
        "lanes": len(traces),
        "instructions_per_sweep": instructions,
        "presets": per_preset,
        "aggregate_speedup": round(total_scalar / total_vector, 3),
        "scalar_instr_per_sec": round(len(presets) * instructions / total_scalar),
        "vector_instr_per_sec": round(len(presets) * instructions / total_vector),
        "counter_equivalence_checked": True,
    }


def bench_native(probes: Sequence[Probe], quick: bool) -> dict:
    """Single-thread throughput: compiled native kernel vs scalar kernel.

    Both sides run through :func:`repro.coresim.simulate_trace` with an
    explicit ``kernel=`` so exactly the kernel dispatch users hit is what
    gets timed.  The library build and the per-trace column marshalling are
    primed outside the timed region (both are once-per-process/per-trace
    costs every real workload amortises the same way).  Every timed pair is
    asserted counter-bit-identical, so the reported speedup cannot come
    from computing something different.
    """
    from ..coresim.native import compiler_info, native_available
    from ..coresim.native.kernel import _native_trace_for

    if not native_available():
        return {
            "kernel": "native",
            "available": False,
            "reason": "no usable C compiler or build failed "
            "(see REPRO_NATIVE_CC in docs/PERFORMANCE.md)",
        }
    presets = QUICK_PRESETS if quick else STANDARD_PRESETS
    repeats = 1 if quick else 3
    instructions = sum(len(p.trace) for p in probes)
    # prime the per-trace native column marshalling (memoised by digest)
    for probe in probes:
        _native_trace_for(probe.decoded)
    per_preset = {}
    total_scalar = 0.0
    total_native = 0.0
    for preset in presets:
        config = core_microarch(preset)
        scalar_best = native_best = float("inf")
        for _ in range(repeats):
            scalar_elapsed = native_elapsed = 0.0
            for probe in probes:
                decoded = probe.decoded
                start = time.perf_counter()
                scalar = simulate_trace(
                    config, decoded, step_cycles=STEP_CYCLES, kernel="scalar"
                )
                scalar_elapsed += time.perf_counter() - start
                start = time.perf_counter()
                native = simulate_trace(
                    config, decoded, step_cycles=STEP_CYCLES, kernel="native"
                )
                native_elapsed += time.perf_counter() - start
                _assert_equivalent(scalar, native, f"native:{preset}/{probe.name}")
            scalar_best = min(scalar_best, scalar_elapsed)
            native_best = min(native_best, native_elapsed)
        total_scalar += scalar_best
        total_native += native_best
        per_preset[preset] = {
            "scalar_seconds": round(scalar_best, 4),
            "native_seconds": round(native_best, 4),
            "speedup": round(scalar_best / native_best, 3),
            "native_instr_per_sec": round(instructions / native_best),
        }
    info = compiler_info() or {}
    return {
        "kernel": "native",
        "available": True,
        "compiler": {
            "path": info.get("path"),
            "version": info.get("version"),
        },
        "probes": len(probes),
        "instructions_per_pass": instructions,
        "presets": per_preset,
        "aggregate_speedup": round(total_scalar / total_native, 3),
        "scalar_instr_per_sec": round(len(presets) * instructions / total_scalar),
        "native_instr_per_sec": round(len(presets) * instructions / total_native),
        "counter_equivalence_checked": True,
    }


def _engine_jobs(
    probes: Sequence[Probe], registry: TraceRegistry, quick: bool
) -> list[SimulationJob]:
    presets = QUICK_PRESETS if quick else STANDARD_PRESETS
    bugs = [None, SerializeOpcode(Opcode.XOR)]
    return [
        SimulationJob(
            study="core",
            config=core_microarch(preset),
            bug=bug,
            trace_id=registry.register(probe.decoded),
            step=STEP_CYCLES,
        )
        for preset in presets
        for bug in bugs
        for probe in probes
    ]


def bench_engine(
    probes: Sequence[Probe], jobs: int, quick: bool, backend: str | None = None
) -> dict:
    """Batch throughput through a persistent worker set, per scheduler."""
    registry = TraceRegistry()
    batch = _engine_jobs(probes, registry, quick)
    half = len(batch) // 2
    requested = backend or ("serial" if jobs <= 1 else f"local:{jobs}")
    spec = requested
    workers = jobs
    schedulers = {}
    for scheduler in ("ljf", "uniform"):
        with JobEngine(backend=requested, scheduler=scheduler) as engine:
            # Resolved slot count and canonical spec of the actual backend
            # (e.g. bare "subprocess" canonicalizes to "subprocess:2").
            workers = engine.jobs
            spec = engine.backend.spec
            start = time.perf_counter()
            engine.run(batch[:half], registry.traces)
            first_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            engine.run(batch[half:], registry.traces)
            second_elapsed = time.perf_counter() - start
            stats = engine.stats
            schedulers[scheduler] = {
                "backend": engine.backend.spec,
                "first_batch_seconds": round(first_elapsed, 4),
                "reused_pool_batch_seconds": round(second_elapsed, 4),
                "jobs_per_sec": round(len(batch) / (first_elapsed + second_elapsed), 2),
                "chunks": stats.chunks,
                "pool_creates": stats.pool_creates,
                "pool_reuses": stats.pool_reuses,
                "traces_shipped": stats.traces_shipped,
                "trace_deltas": stats.trace_deltas,
                "straggler_jobs": stats.straggler_jobs,
            }
    return {
        "jobs": len(batch),
        "workers": workers,
        "backend": spec,
        "schedulers": schedulers,
    }


#: Worker budget of the cluster policy A/B benchmark.
CLUSTER_WORKERS = 2

#: Liveness tuning for the benchmark's short-lived clusters: a fast
#: heartbeat keeps spawn/teardown cheap without touching the canonical
#: defaults the real backend ships with.
CLUSTER_HEARTBEAT = 0.2


def _drive_cluster_policy(
    policy: str, chunks: "list[list]", traces, contexts: "list[dict] | None" = None
) -> "list[dict]":
    """Run *chunks* through a one-worker cluster and return its dispatch log.

    One worker serializes dispatch, and the engine-free direct drive queues
    every ticket before draining — so the log is the pure policy order,
    deterministic and assertable.
    """
    from ..cluster.backend import ClusterBackend

    backend = ClusterBackend(1, policy, heartbeat=CLUSTER_HEARTBEAT)
    try:
        backend.start(traces)
        for tag, chunk in enumerate(chunks):
            if contexts is not None:
                backend.submit_context(**contexts[tag])
            backend.submit(tag, chunk, {})
        for tag, (results, failure) in backend.drain():
            if failure is not None:
                raise AssertionError(
                    f"cluster bench chunk {tag} failed under {policy}: "
                    f"{failure.message}"
                )
        return list(backend.dispatch_log)
    finally:
        backend.close()


def _cluster_policy_checks(probes: Sequence[Probe]) -> dict:
    """Assert the dispatch-order invariant of every non-fifo policy.

    Returns the verified invariants (all true — a violated invariant
    raises, failing the bench run outright like the serve section's
    ``executed == 0`` assert).
    """
    registry = TraceRegistry()
    job = SimulationJob(
        study="core",
        config=core_microarch(QUICK_PRESETS[0]),
        bug=None,
        trace_id=registry.register(probes[0].decoded),
        step=STEP_CYCLES,
    )
    traces = registry.traces
    # Four single-job chunks; scheduling metadata (not cost) differentiates
    # them for the edd/suspend checks.
    single = [[(i, job)] for i in range(4)]

    # fifo: submission order.
    order = [entry["tag"] for entry in _drive_cluster_policy("fifo", single, traces)]
    if order != [0, 1, 2, 3]:
        raise AssertionError(f"fifo dispatched {order}, expected submission order")

    # ljf: non-increasing cost (chunk sizes 1/3/2 make the costs distinct).
    sized = [[(0, job)], [(1, job), (2, job), (3, job)], [(4, job), (5, job)]]
    log = _drive_cluster_policy("ljf", sized, traces)
    costs = [entry["cost"] for entry in log]
    if costs != sorted(costs, reverse=True):
        raise AssertionError(f"ljf dispatched costs {costs}, expected non-increasing")

    # edd: earliest deadline first.
    deadlines = [4.0, 1.0, 3.0, 2.0]
    log = _drive_cluster_policy(
        "edd", single, traces, contexts=[{"deadline": d} for d in deadlines]
    )
    order = [entry["tag"] for entry in log]
    if order != [1, 3, 2, 0]:
        raise AssertionError(f"edd dispatched {order}, expected deadline order [1, 3, 2, 0]")

    # suspend: no lower-priority dispatch while higher priority is queued
    # or in flight.
    priorities = [0, 1, 0, 1]
    log = _drive_cluster_policy(
        "suspend", single, traces, contexts=[{"priority": p} for p in priorities]
    )
    order = [entry["tag"] for entry in log]
    if order != [1, 3, 0, 2]:
        raise AssertionError(
            f"suspend dispatched {order}, expected priority fence [1, 3, 0, 2]"
        )
    return {
        "fifo_submission_order": True,
        "ljf_nonincreasing_cost": True,
        "edd_deadline_order": True,
        "suspend_priority_fence": True,
    }


def bench_cluster(probes: Sequence[Probe], quick: bool) -> dict:
    """Policy A/B through the elastic ``cluster:N`` backend.

    Two halves: deterministic dispatch-order invariants (asserted, one
    worker — see :func:`_cluster_policy_checks`) and a makespan A/B of the
    same batch under every policy at :data:`CLUSTER_WORKERS` workers, with
    the liveness counters recorded so a requeue-happy run is visible in the
    report.  Makespans are recorded-not-gated: policy deltas on a healthy
    two-worker run are scheduling noise, not a perf claim — the interesting
    columns are the requeue/respawn counts (zero on a healthy run) and the
    asserted invariants.
    """
    from ..cluster.backend import ClusterBackend
    from ..cluster.policies import POLICIES

    checks = _cluster_policy_checks(probes)

    registry = TraceRegistry()
    batch = _engine_jobs(probes, registry, quick)
    policies = {}
    for name in POLICIES:
        backend = ClusterBackend(
            CLUSTER_WORKERS, name, heartbeat=CLUSTER_HEARTBEAT
        )
        with JobEngine(backend=backend) as engine:
            start = time.perf_counter()
            results = engine.run(batch, registry.traces)
            makespan = time.perf_counter() - start
            stats = engine.stats
            if len(results) != len(batch):
                raise AssertionError(
                    f"cluster[{name}] returned {len(results)}/{len(batch)} results"
                )
            policies[name] = {
                "makespan_seconds": round(makespan, 4),
                "jobs_per_sec": round(len(batch) / makespan, 2) if makespan else None,
                "chunks": stats.chunks,
                "chunks_requeued": stats.chunks_requeued,
                "workers_spawned": stats.workers_spawned,
                "workers_lost": stats.workers_lost,
                "workers_respawned": stats.workers_respawned,
            }
    fifo_makespan = policies["fifo"]["makespan_seconds"]
    for name, row in policies.items():
        row["speedup_vs_fifo"] = (
            round(fifo_makespan / row["makespan_seconds"], 3)
            if row["makespan_seconds"]
            else None
        )
    return {
        "jobs": len(batch),
        "workers": CLUSTER_WORKERS,
        "policy_checks": checks,
        "policies": policies,
    }


def bench_store(probes: Sequence[Probe], quick: bool) -> dict:
    """Cold simulate-and-fill vs warm replay against a persistent store."""
    registry = TraceRegistry()
    batch = _engine_jobs(probes, registry, quick)
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ResultStore(os.path.join(tmp, "store"))
        with JobEngine(jobs=1, store=store) as cold:
            start = time.perf_counter()
            cold.run(batch, registry.traces)
            cold_elapsed = time.perf_counter() - start
            cold_executed = cold.stats.executed
        with JobEngine(jobs=1, store=store) as warm:
            start = time.perf_counter()
            warm.run(batch, registry.traces)
            warm_elapsed = time.perf_counter() - start
            warm_hits = warm.stats.store_hits
    return {
        "jobs": len(batch),
        "cold_seconds": round(cold_elapsed, 4),
        "warm_seconds": round(warm_elapsed, 4),
        "replay_speedup": round(cold_elapsed / warm_elapsed, 1)
        if warm_elapsed
        else None,
        "cold_executed": cold_executed,
        "warm_store_hits": warm_hits,
    }


#: Warm probe-batch passes timed by the serve benchmark.
SERVE_WARM_ROUNDS = 5
SERVE_WARM_ROUNDS_QUICK = 3


def _latency_stats(latencies_ms: "list[float]", seconds: float) -> dict:
    values = np.asarray(latencies_ms, dtype=float)
    return {
        "verdicts": int(values.size),
        "seconds": round(seconds, 4),
        "p50_ms": round(float(np.percentile(values, 50)), 3),
        "p99_ms": round(float(np.percentile(values, 99)), 3),
        "verdicts_per_sec": round(values.size / seconds, 2) if seconds else None,
    }


def bench_serve(quick: bool) -> dict:
    """End-to-end verdict latency through a resident ``repro-serve`` daemon.

    Trains a model once (the train-once cost is reported, not part of the
    serving numbers), starts the daemon in-process, and times probe-batch
    requests over the real socket protocol.  The cold pass simulates; the
    warm passes must be served entirely from the resident overlay
    (``executed == 0`` is asserted, mirroring the store benchmark's warm
    replay) — so the warm latencies measure framing + dedup + scoring only.
    """
    from ..bugs.registry import core_bug_suite
    from ..experiments.common import ExperimentContext
    from ..serve import DetectionServer, ServeClient, train_model

    train_start = time.perf_counter()
    with ExperimentContext(scale="smoke") as context:
        probes = context.probes[:2] if quick else None
        setup = context.detection_setup(probes=probes)
        model = train_model(setup, name="bench")
    train_seconds = time.perf_counter() - train_start

    presets = QUICK_PRESETS if quick else STANDARD_PRESETS
    suite = core_bug_suite()
    bugs = [None] + [variants[0] for _, variants in sorted(suite.items())]
    items = [(core_microarch(preset), bug) for preset in presets for bug in bugs]
    rounds = SERVE_WARM_ROUNDS_QUICK if quick else SERVE_WARM_ROUNDS

    def timed_pass(client: ServeClient) -> "tuple[list[float], float, int]":
        # One single-item request per design-under-test: each latency sample
        # is a full request→verdict round trip over the socket (streamed
        # frames inside one big batch would arrive buffered back-to-back and
        # undercount).  The simulation work is identical either way — every
        # item is its own lockstep batch.
        latencies = []
        executed = 0
        start = time.perf_counter()
        for item in items:
            item_start = time.perf_counter()
            for _ in client.probe_batch([item]):
                pass
            latencies.append((time.perf_counter() - item_start) * 1000.0)
            executed += client.last_batch["executed"]
        return latencies, time.perf_counter() - start, executed

    with DetectionServer(model).start() as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            cold_latencies, cold_seconds, cold_executed = timed_pass(client)
            warm_latencies: list[float] = []
            warm_executed = 0
            warm_start = time.perf_counter()
            for _ in range(rounds):
                latencies, _, executed = timed_pass(client)
                warm_latencies.extend(latencies)
                warm_executed += executed
            warm_seconds = time.perf_counter() - warm_start
    if warm_executed:
        raise AssertionError(
            f"serve bench warm passes executed {warm_executed} simulations "
            "(expected 0: every job must be served from the resident overlay)"
        )
    cold = _latency_stats(cold_latencies, cold_seconds)
    cold["executed"] = cold_executed
    warm = _latency_stats(warm_latencies, warm_seconds)
    warm["executed"] = warm_executed
    warm["rounds"] = rounds
    return {
        "model_probes": len(model.probes),
        "training_seconds": round(train_seconds, 2),
        "items_per_batch": len(items),
        "cold": cold,
        "warm": warm,
    }


#: Mix benchmark sizing: which mixes, how long, which memory designs.
MIX_BENCH_INSTRUCTIONS = 24_000
MIX_BENCH_INSTRUCTIONS_QUICK = 6_000
MIX_BENCH_PRESETS = ("Skylake-mem", "Nehalem-mem")


def bench_mixes(quick: bool) -> dict:
    """Multi-program mix build and memory-design sweep throughput.

    Builds each mix twice (digest stability is asserted — the contract the
    content-addressed store depends on), then sweeps the full interleaved
    stream over the memory design presets with the memory-hierarchy
    simulator, reporting build and sweep throughput plus per-mix LLC MPKI on
    the reference design.
    """
    from ..memsim import llc_mpki, simulate_memory_trace
    from ..uarch.memory_presets import memory_microarch
    from ..workloads.mixes import DEFAULT_MIXES, build_mix

    specs = (
        (DEFAULT_MIXES[0], DEFAULT_MIXES[3], DEFAULT_MIXES[6])
        if quick else DEFAULT_MIXES
    )
    instructions = MIX_BENCH_INSTRUCTIONS_QUICK if quick else MIX_BENCH_INSTRUCTIONS
    configs = [memory_microarch(name) for name in MIX_BENCH_PRESETS]

    build_seconds = 0.0
    sweep_seconds = 0.0
    built_instructions = 0
    swept_instructions = 0
    per_mix = {}
    for spec in specs:
        start = time.perf_counter()
        mix = build_mix(spec, instructions=instructions, seed=7)
        build_seconds += time.perf_counter() - start
        rebuilt = build_mix(spec, instructions=instructions, seed=7)
        if mix.digest != rebuilt.digest:
            raise AssertionError(
                f"mix {spec.name!r} digest unstable across builds "
                f"({mix.digest} != {rebuilt.digest})"
            )
        built_instructions += len(mix)
        mpki = None
        start = time.perf_counter()
        for config in configs:
            result = simulate_memory_trace(config, mix.decoded)
            if config.name == MIX_BENCH_PRESETS[0]:
                mpki = llc_mpki(result)
        sweep_seconds += time.perf_counter() - start
        swept_instructions += len(mix) * len(configs)
        per_mix[mix.name] = {
            "components": [c.name for c in mix.components],
            "instructions": len(mix),
            "llc_mpki": round(mpki, 3),
            "digest": mix.digest,
        }
    return {
        "mixes": len(specs),
        "presets": list(MIX_BENCH_PRESETS),
        "instructions_per_mix": instructions,
        "build_seconds": round(build_seconds, 4),
        "build_instr_per_sec": round(built_instructions / build_seconds),
        "sweep_seconds": round(sweep_seconds, 4),
        "sweep_instr_per_sec": round(swept_instructions / sweep_seconds),
        "digest_stability_checked": True,
        "per_mix": per_mix,
    }


def run_benchmarks(
    quick: bool = False, jobs: int = 2, backend: str | None = None
) -> dict:
    """Run every benchmark section and return the report dict."""
    started = time.time()
    probes = _standard_probes(quick)
    report = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "simulation",
        "quick": quick,
        "single": bench_single(probes, quick),
        "native": bench_native(probes, quick),
        "batch": bench_batch(quick),
        "engine": bench_engine(probes, jobs, quick, backend=backend),
        "cluster": bench_cluster(probes, quick),
        "store": bench_store(probes, quick),
        "serve": bench_serve(quick),
        "mixes": bench_mixes(quick),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "total_seconds": None,  # filled below
    }
    report["total_seconds"] = round(time.time() - started, 1)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer probes, presets and repeats",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the engine benchmark (default 2); "
             "mutually exclusive with --backend",
    )
    parser.add_argument(
        "--backend", default=None,
        help="execution backend spec for the engine benchmark "
             "(default: local:JOBS; e.g. subprocess:2 times the worker "
             "wire protocol — see docs/RUNTIME.md)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    if args.backend is not None and args.jobs is not None:
        parser.error("--jobs and --backend are mutually exclusive "
                     "(--jobs N is sugar for --backend local:N)")

    report = run_benchmarks(
        quick=args.quick, jobs=max(1, args.jobs or 2), backend=args.backend
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    single = report["single"]
    batch = report["batch"]
    engine = report["engine"]["schedulers"]
    store = report["store"]
    print(f"repro-bench ({'quick' if args.quick else 'full'}) -> {args.output}")
    print(
        f"  single-thread: {single['aggregate_speedup']}x vs seed pipeline "
        f"({single['optimized_instr_per_sec']:,} instr/s, counter-equivalent)"
    )
    native = report["native"]
    if native.get("available"):
        version = (native.get("compiler") or {}).get("version") or "unknown"
        print(
            f"  native: {native['aggregate_speedup']}x vs scalar kernel "
            f"({native['native_instr_per_sec']:,} instr/s, counter-equivalent, "
            f"{version})"
        )
    else:
        print("  native: unavailable (no C compiler; scalar fallback measured "
              "nothing)")
    print(
        f"  batch[vector@{batch['lanes']} lanes]: {batch['aggregate_speedup']}x "
        f"vs scalar sweeps ({batch['vector_instr_per_sec']:,} instr/s, "
        f"counter-equivalent)"
    )
    for name, row in engine.items():
        print(
            f"  engine[{name}@{row['backend']}]: {row['jobs_per_sec']} jobs/s, "
            f"{row['chunks']} chunks, straggler={row['straggler_jobs']} jobs, "
            f"pool reuse {row['pool_reuses']}/{row['pool_creates'] + row['pool_reuses']}"
        )
    cluster = report["cluster"]
    for name, row in cluster["policies"].items():
        print(
            f"  cluster[{name}@{cluster['workers']} workers]: "
            f"{row['makespan_seconds']}s makespan "
            f"({row['speedup_vs_fifo']}x vs fifo), "
            f"requeued={row['chunks_requeued']} "
            f"respawned={row['workers_respawned']}"
        )
    print(
        f"  store replay: {store['replay_speedup']}x "
        f"({store['warm_store_hits']} hits in {store['warm_seconds']}s)"
    )
    serve = report["serve"]
    print(
        f"  serve[warm]: {serve['warm']['p50_ms']} ms p50 / "
        f"{serve['warm']['p99_ms']} ms p99 per verdict, "
        f"{serve['warm']['verdicts_per_sec']} verdicts/s "
        f"(executed={serve['warm']['executed']}, "
        f"{serve['model_probes']} probes resident)"
    )
    mixes = report["mixes"]
    print(
        f"  mixes[{mixes['mixes']}x{mixes['instructions_per_mix']} instrs]: "
        f"build {mixes['build_instr_per_sec']:,} instr/s, sweep "
        f"{mixes['sweep_instr_per_sec']:,} instr/s over "
        f"{len(mixes['presets'])} designs (digest-stable)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
