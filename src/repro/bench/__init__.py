"""Tracked performance benchmarks for the simulation hot path.

``repro-bench`` (:mod:`repro.bench.perf`) times the three layers every
experiment sits on — single-simulation throughput, job-engine batch
throughput and warm-store replay — and emits ``BENCH_simulation.json`` so
successive PRs leave a comparable perf trajectory.
"""

from .perf import main, run_benchmarks

__all__ = ["main", "run_benchmarks"]
