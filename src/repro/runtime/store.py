"""Persistent, content-addressed store of simulation results.

The :class:`ResultStore` maps a :meth:`SimulationJob.key` content hash to a
:class:`StoredResult` — the study-agnostic flattening of a core
:class:`~repro.coresim.simulator.SimulationResult` or memory
:class:`~repro.memsim.simulator.MemSimResult`.  Entries are one ``.npz``
file per key, written atomically (temp file + ``os.replace``) so a killed
run never leaves a half-written entry that later readers trust.

Corrupt or truncated entries are treated as misses: the bad file is removed
and the job is recomputed, never crashing an experiment run.

Two on-disk layouts coexist:

``flat``
    Every ``<key>.npz`` directly in the store directory — the seed layout,
    fine for thousands of entries.
``sharded``
    Entries grouped into ``shard=<key[:2]>/`` subdirectories keyed by the
    first two hex digits of the content hash (256 shards).  Directory
    listings stay short at cluster scale, shards rsync independently, and
    concurrent writers from many processes contend on a shard directory
    instead of one giant one.  Temp files live inside the shard directory
    so the ``os.replace`` rename never crosses a filesystem boundary.

The layout is auto-detected on open (explicit ``layout=`` argument, then
the ``.repro-store-layout`` marker file, then the presence of ``shard=``
subdirectories, then flat); :meth:`ResultStore.reshard` migrates in place
and ``repro-store reshard`` exposes it.  All operations — including
:meth:`ResultStore.merge_from` between stores of different layouts — are
layout-agnostic.

:meth:`ResultStore.gc` prunes entries not named by a *keep roster* (see
:mod:`repro.cluster.roster` and ``repro-store gc``): content addressing
means reachability cannot be derived from the store itself, so the roster
of every key the current experiment configuration can produce is computed
from the experiment inputs and everything else is garbage.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..coresim.counters import CounterTimeSeries
from ..coresim.simulator import SimulationResult
from ..memsim.simulator import MemSimResult
from .job import CORE_STUDY, MEMORY_STUDY

#: Prefix namespacing counter arrays inside the ``.npz`` payload.
_COUNTER_PREFIX = "counter::"

#: Shape of the temp files ``put`` writes: ``<key>.tmp<pid>``.
_TMP_PATTERN = re.compile(r"\.tmp\d+$")

#: Minimum age before an orphaned temp file is considered stale.  Writes
#: take well under a second, so anything this old belongs to a crashed
#: writer; younger temp files may belong to a live writer in another
#: process sharing the store and must not be touched.
_STALE_TMP_SECONDS = 3600.0

#: Shard directory prefix of the sharded layout (``shard=3f/``).
_SHARD_PREFIX = "shard="

#: Hex digits of the key that pick the shard (2 -> 256 shards).
SHARD_WIDTH = 2

#: Marker file recording the store's layout, so empty sharded stores are
#: still detected as sharded on reopen.
_LAYOUT_MARKER = ".repro-store-layout"

#: The two recognised on-disk layouts.
LAYOUTS = ("flat", "sharded")


@dataclass
class StoredResult:
    """Study-agnostic flattening of one simulation outcome."""

    study: str
    config_name: str
    bug_name: str
    instructions: int
    cycles: float
    amat: float
    step: int
    counters: dict[str, np.ndarray]
    ipc: np.ndarray

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_core(cls, result: SimulationResult) -> "StoredResult":
        return cls(
            study=CORE_STUDY,
            config_name=result.config_name,
            bug_name=result.bug_name,
            instructions=result.instructions,
            cycles=float(result.cycles),
            amat=0.0,
            step=result.series.step_cycles,
            counters=dict(result.series.counters),
            ipc=result.series.ipc,
        )

    @classmethod
    def from_memory(cls, result: MemSimResult) -> "StoredResult":
        return cls(
            study=MEMORY_STUDY,
            config_name=result.config_name,
            bug_name=result.bug_name,
            instructions=result.instructions,
            cycles=result.cycles,
            amat=result.amat,
            step=result.series.step_cycles,
            counters=dict(result.series.counters),
            ipc=result.series.ipc,
        )

    def _series(self) -> CounterTimeSeries:
        return CounterTimeSeries(
            step_cycles=self.step,
            counters={name: np.asarray(arr) for name, arr in self.counters.items()},
            ipc=np.asarray(self.ipc),
        )

    def to_core(self) -> SimulationResult:
        if self.study != CORE_STUDY:
            raise ValueError(f"not a core-study result: {self.study!r}")
        return SimulationResult(
            config_name=self.config_name,
            bug_name=self.bug_name,
            instructions=self.instructions,
            cycles=int(self.cycles),
            series=self._series(),
        )

    def to_memory(self) -> MemSimResult:
        if self.study != MEMORY_STUDY:
            raise ValueError(f"not a memory-study result: {self.study!r}")
        return MemSimResult(
            config_name=self.config_name,
            bug_name=self.bug_name,
            instructions=self.instructions,
            cycles=self.cycles,
            series=self._series(),
            amat=self.amat,
        )


@dataclass
class StoreStats:
    """Observable effectiveness counters of one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    evicted: int = 0
    tmp_swept: int = 0
    gc_removed: int = 0


class ResultStore:
    """Disk-backed ``{job key: StoredResult}`` map with corruption recovery.

    Parameters
    ----------
    path:
        Directory holding one ``<key>.npz`` file per result; created on
        first use.
    max_entries:
        Optional soft capacity; when exceeded after a write, the
        least-recently-modified entries are evicted.
    layout:
        ``"flat"``, ``"sharded"``, or ``None`` to auto-detect (marker file,
        then ``shard=`` subdirectories, then flat).  An explicit layout on
        an empty directory also records the marker, so the choice sticks.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_entries: int | None = None,
        layout: str | None = None,
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if layout is not None and layout not in LAYOUTS:
            raise ValueError(f"unknown store layout {layout!r}; expected {LAYOUTS}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats = StoreStats()
        self.layout = layout if layout is not None else self._detect_layout()
        if layout is not None:
            self._write_marker()
        #: Directory scans performed (observable for the O(N²)-put regression
        #: test: a warm store must not re-glob the directory on every write).
        self.scans = 0
        # One initial pass does double duty: count the existing entries (the
        # incremental counter that replaces per-put globbing) and sweep stale
        # ``<key>.tmp<pid>`` files left behind by crashed writers — nothing
        # else ever looks at non-``.npz`` names, so without this sweep they
        # would leak forever.  Only files older than _STALE_TMP_SECONDS are
        # removed: a young temp file may belong to a live writer in another
        # process sharing this store directory.
        self._count = 0
        self.scans += 1
        stale_before = time.time() - _STALE_TMP_SECONDS
        for child in self._iter_store_files():
            name = child.name
            if name.endswith(".npz"):
                self._count += 1
            elif _TMP_PATTERN.search(name):
                try:
                    if child.stat().st_mtime < stale_before:
                        child.unlink()
                        self.stats.tmp_swept += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    # -- layout ----------------------------------------------------------------

    def _detect_layout(self) -> str:
        marker = self.path / _LAYOUT_MARKER
        try:
            text = marker.read_text(encoding="utf-8").strip()
        except OSError:
            text = ""
        if text in LAYOUTS:
            return text
        for child in self.path.iterdir():
            if child.is_dir() and child.name.startswith(_SHARD_PREFIX):
                return "sharded"
        return "flat"

    def _write_marker(self) -> None:
        try:
            (self.path / _LAYOUT_MARKER).write_text(
                f"{self.layout}\n", encoding="utf-8"
            )
        except OSError:  # pragma: no cover - read-only store directory
            pass

    def _shard_dirs(self) -> list[Path]:
        return sorted(
            child
            for child in self.path.iterdir()
            if child.is_dir() and child.name.startswith(_SHARD_PREFIX)
        )

    def _iter_store_files(self):
        """Every file either layout could own (entries *and* temp files)."""
        for child in self.path.iterdir():
            if child.is_dir():
                if child.name.startswith(_SHARD_PREFIX):
                    yield from child.iterdir()
            else:
                yield child

    def shard_counts(self) -> dict[str, int]:
        """Entry count per shard (``{}`` for a flat store)."""
        return {
            child.name[len(_SHARD_PREFIX):]: sum(
                1 for entry in child.iterdir() if entry.name.endswith(".npz")
            )
            for child in self._shard_dirs()
        }

    # -- helpers ---------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        if self.layout == "sharded":
            return self.path / f"{_SHARD_PREFIX}{key[:SHARD_WIDTH]}" / f"{key}.npz"
        return self.path / f"{key}.npz"

    def _rescan(self) -> list[Path]:
        """Authoritative entry listing; resyncs the incremental count.

        Scans *both* layouts, so entries are never silently orphaned when a
        store is opened with the wrong layout or mid-migration.
        """
        self.scans += 1
        entries = [
            child for child in self._iter_store_files() if child.name.endswith(".npz")
        ]
        self._count = len(entries)
        return entries

    def __len__(self) -> int:
        """Entry count, tracked incrementally (no directory scan).

        The count is resynced from disk whenever a corrupt entry is removed
        or an eviction pass lists the directory, so it self-corrects after
        external modification of the store directory.
        """
        return self._count

    def _locate(self, key: str) -> Path | None:
        """The on-disk entry for *key*, tolerating a mid-migration store.

        The current layout's path is authoritative; the other layout's path
        is consulted as a fallback so a store interrupted half-way through
        :meth:`reshard` (or populated by writers disagreeing on layout)
        still serves every entry it holds.
        """
        entry = self._entry_path(key)
        if entry.exists():
            return entry
        if self.layout == "sharded":
            alternate = self.path / f"{key}.npz"
        else:
            alternate = self.path / f"{_SHARD_PREFIX}{key[:SHARD_WIDTH]}" / f"{key}.npz"
        return alternate if alternate.exists() else None

    def __contains__(self, key: str) -> bool:
        return self._locate(key) is not None

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self._rescan())

    # -- read ------------------------------------------------------------------

    def get(self, key: str) -> StoredResult | None:
        """Load the entry for *key*, or ``None`` on miss or corruption."""
        entry = self._locate(key)
        if entry is None:
            self.stats.misses += 1
            return None
        try:
            with np.load(entry, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                counters = {
                    name[len(_COUNTER_PREFIX):]: data[name].copy()
                    for name in data.files
                    if name.startswith(_COUNTER_PREFIX)
                }
                result = StoredResult(
                    study=meta["study"],
                    config_name=meta["config_name"],
                    bug_name=meta["bug_name"],
                    instructions=int(meta["instructions"]),
                    cycles=float(meta["cycles"]),
                    amat=float(meta["amat"]),
                    step=int(meta["step"]),
                    counters=counters,
                    ipc=data["ipc"].copy(),
                )
        except Exception:
            # Truncated download, killed writer, disk hiccup: recompute
            # rather than crash, and drop the unreadable file.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                entry.unlink()
            except OSError:
                pass
            # A corrupt entry means something outside this object touched the
            # directory (killed writer, external copy); resync the count from
            # disk rather than guessing.
            self._rescan()
            return None
        self.stats.hits += 1
        return result

    # -- write -----------------------------------------------------------------

    def put(self, key: str, result: StoredResult) -> None:
        """Persist *result* under *key* atomically."""
        entry = self._entry_path(key)
        # Concurrent-writer safe: mkdir is idempotent, and the temp file
        # shares the shard directory so os.replace stays a same-directory
        # rename.
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = entry.with_suffix(f".tmp{os.getpid()}")
        meta = json.dumps(
            {
                "study": result.study,
                "config_name": result.config_name,
                "bug_name": result.bug_name,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "amat": result.amat,
                "step": result.step,
            }
        )
        arrays = {f"{_COUNTER_PREFIX}{n}": np.asarray(a) for n, a in result.counters.items()}
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, meta=np.array(meta), ipc=np.asarray(result.ipc), **arrays)
            existed = entry.exists()
            os.replace(tmp, entry)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                try:
                    tmp.unlink()
                except OSError:
                    pass
        if not existed:
            self._count += 1
        self.stats.puts += 1
        if self.max_entries is not None:
            self._evict(fresh=entry)

    # -- merge -----------------------------------------------------------------

    def merge_from(self, other: "ResultStore") -> int:
        """Copy every entry absent here from *other*; returns the count.

        Entries are content-addressed by job key, so merging stores produced
        by different runs (or machines) is always safe: equal keys hold
        equal payloads.  Keys already present locally are kept as-is.
        Corrupt source entries are skipped (and dropped from *other*, per
        the standard read path).  Each copy goes through the normal
        :meth:`put`, so this store's ``max_entries`` eviction policy is
        honoured and every merged entry is re-validated on the way in.
        The layouts of the two stores are independent: a flat store merges
        into a sharded one (and vice versa) without conversion, because
        reads resolve keys and writes land in this store's own layout.
        """
        if other.path.resolve() == self.path.resolve():
            raise ValueError("cannot merge a store into itself")
        merged = 0
        for key in other.keys():
            if key in self:
                continue
            result = other.get(key)
            if result is None:  # corrupt or concurrently removed: skip
                continue
            self.put(key, result)
            merged += 1
        return merged

    # -- maintenance -----------------------------------------------------------

    def gc(self, keep: "set[str]", dry_run: bool = False) -> list[str]:
        """Remove every entry whose key is not in the *keep* roster.

        Returns the sorted keys that were removed (or would be, under
        *dry_run*).  The roster is the set of keys the current experiment
        configuration can produce (:mod:`repro.cluster.roster`); anything
        else is unreachable garbage — results of retired configs, old
        scales or dropped traces.  GC never invalidates a surviving entry:
        content addressing means the keep-set's payloads are untouched, so
        replaying the surviving roster still yields ``executed=0``.
        Empty shard directories left behind are pruned.
        """
        removed: list[str] = []
        for entry in self._rescan():
            if entry.stem in keep:
                continue
            if not dry_run:
                try:
                    entry.unlink()
                    self._count -= 1
                except OSError:  # pragma: no cover - concurrent removal
                    continue
                self.stats.gc_removed += 1
            removed.append(entry.stem)
        if not dry_run:
            for shard in self._shard_dirs():
                try:
                    shard.rmdir()  # only succeeds once empty
                except OSError:
                    pass
        return sorted(removed)

    def reshard(self, layout: str = "sharded") -> int:
        """Migrate the store in place to *layout*; returns entries moved.

        Each entry is moved with a same-filesystem ``os.replace``, so
        readers racing the migration see every entry at one path or the
        other — never absent, never half-written (and :meth:`_locate`
        checks both).  The layout marker is rewritten at the end.
        """
        if layout not in LAYOUTS:
            raise ValueError(f"unknown store layout {layout!r}; expected {LAYOUTS}")
        self.layout = layout
        moved = 0
        for entry in self._rescan():
            target = self._entry_path(entry.stem)
            if target == entry:
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(entry, target)
            moved += 1
        if layout == "flat":
            for shard in self._shard_dirs():
                try:
                    shard.rmdir()
                except OSError:  # pragma: no cover - concurrent writer
                    pass
        self._write_marker()
        return moved

    def _evict(self, fresh: Path | None = None) -> None:
        """Drop the oldest entries once the soft capacity is exceeded.

        *fresh* is the entry the current ``put`` just wrote.  It is excluded
        from the victim set: on filesystems with coarse mtime resolution the
        fresh file can tie with much older entries, and its hex name would
        then decide the order — evicting the very entry the caller is about
        to rely on.

        The capacity check runs against the incrementally tracked count, so
        a store below capacity never scans the directory on ``put``.
        """
        if self._count <= self.max_entries:
            return
        entries = self._rescan()
        excess = self._count - self.max_entries
        if excess <= 0:
            return
        victims = sorted(
            (p for p in entries if p != fresh),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        for victim in victims[:excess]:
            try:
                victim.unlink()
                self.stats.evicted += 1
                self._count -= 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass
