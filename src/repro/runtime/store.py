"""Persistent, content-addressed store of simulation results.

The :class:`ResultStore` maps a :meth:`SimulationJob.key` content hash to a
:class:`StoredResult` — the study-agnostic flattening of a core
:class:`~repro.coresim.simulator.SimulationResult` or memory
:class:`~repro.memsim.simulator.MemSimResult`.  Entries are one ``.npz``
file per key, written atomically (temp file + ``os.replace``) so a killed
run never leaves a half-written entry that later readers trust.

Corrupt or truncated entries are treated as misses: the bad file is removed
and the job is recomputed, never crashing an experiment run.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..coresim.counters import CounterTimeSeries
from ..coresim.simulator import SimulationResult
from ..memsim.simulator import MemSimResult
from .job import CORE_STUDY, MEMORY_STUDY

#: Prefix namespacing counter arrays inside the ``.npz`` payload.
_COUNTER_PREFIX = "counter::"

#: Shape of the temp files ``put`` writes: ``<key>.tmp<pid>``.
_TMP_PATTERN = re.compile(r"\.tmp\d+$")

#: Minimum age before an orphaned temp file is considered stale.  Writes
#: take well under a second, so anything this old belongs to a crashed
#: writer; younger temp files may belong to a live writer in another
#: process sharing the store and must not be touched.
_STALE_TMP_SECONDS = 3600.0


@dataclass
class StoredResult:
    """Study-agnostic flattening of one simulation outcome."""

    study: str
    config_name: str
    bug_name: str
    instructions: int
    cycles: float
    amat: float
    step: int
    counters: dict[str, np.ndarray]
    ipc: np.ndarray

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_core(cls, result: SimulationResult) -> "StoredResult":
        return cls(
            study=CORE_STUDY,
            config_name=result.config_name,
            bug_name=result.bug_name,
            instructions=result.instructions,
            cycles=float(result.cycles),
            amat=0.0,
            step=result.series.step_cycles,
            counters=dict(result.series.counters),
            ipc=result.series.ipc,
        )

    @classmethod
    def from_memory(cls, result: MemSimResult) -> "StoredResult":
        return cls(
            study=MEMORY_STUDY,
            config_name=result.config_name,
            bug_name=result.bug_name,
            instructions=result.instructions,
            cycles=result.cycles,
            amat=result.amat,
            step=result.series.step_cycles,
            counters=dict(result.series.counters),
            ipc=result.series.ipc,
        )

    def _series(self) -> CounterTimeSeries:
        return CounterTimeSeries(
            step_cycles=self.step,
            counters={name: np.asarray(arr) for name, arr in self.counters.items()},
            ipc=np.asarray(self.ipc),
        )

    def to_core(self) -> SimulationResult:
        if self.study != CORE_STUDY:
            raise ValueError(f"not a core-study result: {self.study!r}")
        return SimulationResult(
            config_name=self.config_name,
            bug_name=self.bug_name,
            instructions=self.instructions,
            cycles=int(self.cycles),
            series=self._series(),
        )

    def to_memory(self) -> MemSimResult:
        if self.study != MEMORY_STUDY:
            raise ValueError(f"not a memory-study result: {self.study!r}")
        return MemSimResult(
            config_name=self.config_name,
            bug_name=self.bug_name,
            instructions=self.instructions,
            cycles=self.cycles,
            series=self._series(),
            amat=self.amat,
        )


@dataclass
class StoreStats:
    """Observable effectiveness counters of one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    evicted: int = 0
    tmp_swept: int = 0


class ResultStore:
    """Disk-backed ``{job key: StoredResult}`` map with corruption recovery.

    Parameters
    ----------
    path:
        Directory holding one ``<key>.npz`` file per result; created on
        first use.
    max_entries:
        Optional soft capacity; when exceeded after a write, the
        least-recently-modified entries are evicted.
    """

    def __init__(self, path: str | os.PathLike, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats = StoreStats()
        #: Directory scans performed (observable for the O(N²)-put regression
        #: test: a warm store must not re-glob the directory on every write).
        self.scans = 0
        # One initial pass does double duty: count the existing entries (the
        # incremental counter that replaces per-put globbing) and sweep stale
        # ``<key>.tmp<pid>`` files left behind by crashed writers — nothing
        # else ever looks at non-``.npz`` names, so without this sweep they
        # would leak forever.  Only files older than _STALE_TMP_SECONDS are
        # removed: a young temp file may belong to a live writer in another
        # process sharing this store directory.
        self._count = 0
        self.scans += 1
        stale_before = time.time() - _STALE_TMP_SECONDS
        for child in self.path.iterdir():
            name = child.name
            if name.endswith(".npz"):
                self._count += 1
            elif _TMP_PATTERN.search(name):
                try:
                    if child.stat().st_mtime < stale_before:
                        child.unlink()
                        self.stats.tmp_swept += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    # -- helpers ---------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.path / f"{key}.npz"

    def _rescan(self) -> list[Path]:
        """Authoritative entry listing; resyncs the incremental count."""
        self.scans += 1
        entries = list(self.path.glob("*.npz"))
        self._count = len(entries)
        return entries

    def __len__(self) -> int:
        """Entry count, tracked incrementally (no directory scan).

        The count is resynced from disk whenever a corrupt entry is removed
        or an eviction pass lists the directory, so it self-corrects after
        external modification of the store directory.
        """
        return self._count

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self._rescan())

    # -- read ------------------------------------------------------------------

    def get(self, key: str) -> StoredResult | None:
        """Load the entry for *key*, or ``None`` on miss or corruption."""
        entry = self._entry_path(key)
        if not entry.exists():
            self.stats.misses += 1
            return None
        try:
            with np.load(entry, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                counters = {
                    name[len(_COUNTER_PREFIX):]: data[name].copy()
                    for name in data.files
                    if name.startswith(_COUNTER_PREFIX)
                }
                result = StoredResult(
                    study=meta["study"],
                    config_name=meta["config_name"],
                    bug_name=meta["bug_name"],
                    instructions=int(meta["instructions"]),
                    cycles=float(meta["cycles"]),
                    amat=float(meta["amat"]),
                    step=int(meta["step"]),
                    counters=counters,
                    ipc=data["ipc"].copy(),
                )
        except Exception:
            # Truncated download, killed writer, disk hiccup: recompute
            # rather than crash, and drop the unreadable file.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                entry.unlink()
            except OSError:
                pass
            # A corrupt entry means something outside this object touched the
            # directory (killed writer, external copy); resync the count from
            # disk rather than guessing.
            self._rescan()
            return None
        self.stats.hits += 1
        return result

    # -- write -----------------------------------------------------------------

    def put(self, key: str, result: StoredResult) -> None:
        """Persist *result* under *key* atomically."""
        entry = self._entry_path(key)
        tmp = entry.with_suffix(f".tmp{os.getpid()}")
        meta = json.dumps(
            {
                "study": result.study,
                "config_name": result.config_name,
                "bug_name": result.bug_name,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "amat": result.amat,
                "step": result.step,
            }
        )
        arrays = {f"{_COUNTER_PREFIX}{n}": np.asarray(a) for n, a in result.counters.items()}
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, meta=np.array(meta), ipc=np.asarray(result.ipc), **arrays)
            existed = entry.exists()
            os.replace(tmp, entry)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                try:
                    tmp.unlink()
                except OSError:
                    pass
        if not existed:
            self._count += 1
        self.stats.puts += 1
        if self.max_entries is not None:
            self._evict(fresh=entry)

    # -- merge -----------------------------------------------------------------

    def merge_from(self, other: "ResultStore") -> int:
        """Copy every entry absent here from *other*; returns the count.

        Entries are content-addressed by job key, so merging stores produced
        by different runs (or machines) is always safe: equal keys hold
        equal payloads.  Keys already present locally are kept as-is.
        Corrupt source entries are skipped (and dropped from *other*, per
        the standard read path).  Each copy goes through the normal
        :meth:`put`, so this store's ``max_entries`` eviction policy is
        honoured and every merged entry is re-validated on the way in.
        """
        if other.path.resolve() == self.path.resolve():
            raise ValueError("cannot merge a store into itself")
        merged = 0
        for key in other.keys():
            if key in self:
                continue
            result = other.get(key)
            if result is None:  # corrupt or concurrently removed: skip
                continue
            self.put(key, result)
            merged += 1
        return merged

    def _evict(self, fresh: Path | None = None) -> None:
        """Drop the oldest entries once the soft capacity is exceeded.

        *fresh* is the entry the current ``put`` just wrote.  It is excluded
        from the victim set: on filesystems with coarse mtime resolution the
        fresh file can tie with much older entries, and its hex name would
        then decide the order — evicting the very entry the caller is about
        to rely on.

        The capacity check runs against the incrementally tracked count, so
        a store below capacity never scans the directory on ``put``.
        """
        if self._count <= self.max_entries:
            return
        entries = self._rescan()
        excess = self._count - self.max_entries
        if excess <= 0:
            return
        victims = sorted(
            (p for p in entries if p != fresh),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        for victim in victims[:excess]:
            try:
                victim.unlink()
                self.stats.evicted += 1
                self._count -= 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass
