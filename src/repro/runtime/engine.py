"""Parallel simulation job engine.

:class:`JobEngine` executes batches of :class:`~repro.runtime.job.SimulationJob`
specs, sharding them across a :class:`concurrent.futures.ProcessPoolExecutor`
in deterministic chunks.  Each batch first consults the optional persistent
:class:`~repro.runtime.store.ResultStore`, so only genuinely new
(config, bug, trace, step) combinations are ever simulated; computed results
are written back for future runs.

With ``jobs=1`` (the default, also selectable via the ``REPRO_JOBS``
environment variable) everything runs inline in the calling process — the
serial fallback used by tests, CI smoke runs and one-core machines.  Serial
and parallel execution produce bit-identical results: the simulators are
deterministic functions of (config, bug, trace, step), and each job is
additionally handed a deterministic content-derived seed so that future
stochastic simulator features cannot silently diverge across workers.

Two scheduling properties matter for throughput (see docs/PERFORMANCE.md):

* **Persistent worker pool.**  The executor is created on first parallel use
  and reused across ``run`` batches, so spawn-platform import costs and trace
  shipping are paid once per engine, not once per batch.  Worker processes
  keep a cumulative content-addressed trace table; traces a batch introduces
  after pool creation travel as per-chunk deltas (workers ignore digests they
  already hold).  ``close()`` — or garbage collection of the engine — shuts
  the pool down.

* **Cost-aware chunking.**  Jobs vary roughly an order of magnitude in cost
  with trace length and design width, so uniform chunking leaves stragglers.
  The default ``ljf`` scheduler bins jobs longest-first into balanced chunks
  (cost proxy: trace length × design width) and dispatches the costliest
  chunks first; ``uniform`` keeps the seed's input-order chunking for
  comparison.  Chunk composition never affects results — results are matched
  to jobs by index.
"""

from __future__ import annotations

import inspect
import os
import random
import traceback
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Mapping, Sequence

import numpy as np

from ..coresim.simulator import simulate_trace
from ..memsim.simulator import simulate_memory_trace
from .job import CORE_STUDY, MEMORY_STUDY, SimulationJob
from .store import ResultStore, StoredResult

#: Environment variable naming the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Hard ceiling on the per-chunk job count (bounds pickling latency and
#: keeps progress callbacks responsive on long batches).
MAX_CHUNK_SIZE = 32

#: Scheduling strategies understood by :class:`JobEngine`.
SCHEDULERS = ("ljf", "uniform")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, defaulting to serial execution."""
    value = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {value!r}") from None
    return max(1, jobs)


class JobFailedError(RuntimeError):
    """A job raised inside a worker; carries the remote traceback."""

    def __init__(self, description: str, remote_traceback: str) -> None:
        super().__init__(
            f"simulation job {description} failed in worker:\n{remote_traceback}"
        )
        self.description = description
        self.remote_traceback = remote_traceback


@dataclass
class EngineStats:
    """Counters describing what one :class:`JobEngine` actually did.

    Beyond the seed's batch/job/store counters, the scheduling fields let
    alternative schedulers be compared from a progress callback:
    ``chunks`` (worker tasks dispatched), ``straggler_jobs`` (jobs in the
    chunk that finished last in the most recent parallel batch),
    ``pool_creates``/``pool_reuses`` (persistent-pool behaviour),
    ``traces_shipped`` (traces sent via pool initialisation) and
    ``trace_deltas`` (trace copies attached to chunks as deltas).
    """

    batches: int = 0
    jobs: int = 0
    store_hits: int = 0
    executed: int = 0
    chunks: int = 0
    straggler_jobs: int = 0
    pool_creates: int = 0
    pool_reuses: int = 0
    traces_shipped: int = 0
    trace_deltas: int = 0

    def reset(self) -> None:
        self.batches = self.jobs = self.store_hits = self.executed = 0
        self.chunks = self.straggler_jobs = 0
        self.pool_creates = self.pool_reuses = 0
        self.traces_shipped = self.trace_deltas = 0


# -- worker-side machinery ---------------------------------------------------
#
# Each worker process keeps a cumulative content-addressed trace table.  The
# pool initializer installs the traces known at pool-creation time; chunks
# carry {digest: trace} deltas for traces first referenced by a later batch,
# which workers merge in (digests they already hold are simply overwritten
# with identical content, so the merge is idempotent).

_WORKER_TRACES: dict = {}


def _init_worker(traces: Mapping) -> None:
    global _WORKER_TRACES
    _WORKER_TRACES = dict(traces)


def _execute_job(job: SimulationJob, trace) -> StoredResult:
    """Run one job to completion on *trace* (in-process or in a worker)."""
    # The simulators are deterministic, but seed the global RNGs from the
    # job identity anyway so any future stochastic component stays
    # reproducible and identical across serial/parallel execution.
    seed = job.seed()
    python_state = random.getstate()
    numpy_state = np.random.get_state()
    random.seed(seed)
    np.random.seed(seed % 2**32)
    try:
        if job.study == CORE_STUDY:
            return StoredResult.from_core(
                simulate_trace(job.config, trace, bug=job.bug, step_cycles=job.step)
            )
        if job.study == MEMORY_STUDY:
            return StoredResult.from_memory(
                simulate_memory_trace(
                    job.config, trace, bug=job.bug, step_instructions=job.step
                )
            )
        raise ValueError(f"unknown study kind {job.study!r}")
    finally:
        # Leave the caller's RNG streams untouched (matters for the serial
        # in-process path, where experiments draw from these RNGs too).
        random.setstate(python_state)
        np.random.set_state(numpy_state)


@dataclass
class _ChunkFailure:
    """Picklable stand-in for an exception raised inside a worker."""

    description: str
    remote_traceback: str


def _run_chunk(
    payload: tuple[list[tuple[int, SimulationJob]], Mapping],
) -> list[tuple[int, StoredResult]] | _ChunkFailure:
    chunk, delta = payload
    if delta:
        _WORKER_TRACES.update(delta)
    results: list[tuple[int, StoredResult]] = []
    for index, job in chunk:
        try:
            results.append((index, _execute_job(job, _WORKER_TRACES[job.trace_id])))
        except Exception:
            # Exceptions from user bug models may not survive pickling;
            # ship the traceback as text instead.
            return _ChunkFailure(job.describe(), traceback.format_exc())
    return results


def _chunked(items: Sequence, chunk_size: int) -> list[list]:
    """Split *items* into ordered chunks of at most *chunk_size* elements."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


def _job_cost(job: SimulationJob, traces: Mapping) -> int:
    """Cost proxy for one job: trace length × design width.

    Simulated cycles scale with trace length, and per-cycle work scales with
    the machine width (more dispatch/issue/commit slots per cycle), so the
    product tracks wall-clock within the accuracy LJF binning needs.
    """
    trace = traces.get(job.trace_id)
    length = len(trace) if trace is not None else 1
    config = job.config
    width = getattr(config, "width", None)
    if width is None:
        width = getattr(config, "issue_width", 1)
    return max(1, length * int(width))


def _progress_arity(progress: Callable | None) -> int:
    """How many positional arguments *progress* accepts (2 or 3)."""
    if progress is None:
        return 2
    try:
        parameters = inspect.signature(progress).parameters.values()
    except (TypeError, ValueError):  # builtins, C callables
        return 2
    positional = [
        p
        for p in parameters
        if p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    # Variadic callables (e.g. a `lambda *a:` wrapper around a seed-style
    # two-argument callback) conservatively get the seed calling convention;
    # only an explicit three-parameter signature opts into receiving stats.
    return 3 if len(positional) >= 3 else 2


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=True, cancel_futures=True)


class JobEngine:
    """Executes simulation job batches, in parallel when asked to.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` reads ``REPRO_JOBS`` (default 1).
        With 1 worker everything runs inline — no pool, no pickling.
    store:
        Optional persistent :class:`ResultStore` consulted before and
        updated after every batch.
    chunk_size:
        Jobs per worker task; ``None`` sizes chunks to roughly four tasks
        per worker, capped at :data:`MAX_CHUNK_SIZE`.
    progress:
        Optional ``callback(done, total)`` invoked as batch jobs finish
        (store hits report immediately).  A three-argument callback
        ``callback(done, total, stats)`` additionally receives the live
        :class:`EngineStats`, exposing chunking and pool-reuse behaviour.
    scheduler:
        ``"ljf"`` (default) bins pending jobs longest-first into
        cost-balanced chunks and dispatches the costliest chunks first;
        ``"uniform"`` chunks in input order like the seed engine.

    The engine may be used as a context manager; ``close()`` shuts down the
    persistent worker pool (it is also closed automatically when the engine
    is garbage collected).
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        chunk_size: int | None = None,
        progress: Callable | None = None,
        scheduler: str = "ljf",
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.store = store
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; available: {SCHEDULERS}"
            )
        self.chunk_size = chunk_size
        self.scheduler = scheduler
        self.progress = progress
        self._progress_args = _progress_arity(progress)
        self.stats = EngineStats()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_trace_ids: set[str] = set()
        self._pool_finalizer: weakref.finalize | None = None
        # Rebase bookkeeping: cumulative traces seen by this engine, the
        # instruction cost shipped via pool initialisation, and the delta
        # cost shipped since — when deltas outweigh the initialiser payload,
        # the pool is rebuilt with the merged table so recurring traces stop
        # travelling with every chunk.
        self._all_traces: dict[str, object] = {}
        self._initializer_cost = 0
        self._delta_cost_since_rebase = 0

    # -- pool lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            self._pool_trace_ids = set()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            _shutdown_pool(pool)

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_pool(self, batch_traces: Mapping) -> ProcessPoolExecutor:
        """Return the persistent pool, creating or rebasing it as needed.

        A pool is created on first parallel use with the batch's traces in
        its initializer.  Later batches ship new traces as per-chunk deltas;
        once the cumulative delta payload outweighs the initializer payload,
        the pool is *rebased* — torn down and recreated with every trace
        this engine has seen — so long-lived engines converge back to
        shipping each trace once per worker.
        """
        self._all_traces.update(batch_traces)
        if self._pool is not None and self._delta_cost_since_rebase > max(
            1, self._initializer_cost
        ):
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(dict(self._all_traces),),
            )
            self._pool_trace_ids = set(self._all_traces)
            self._initializer_cost = sum(
                len(trace) for trace in self._all_traces.values()
            )
            self._delta_cost_since_rebase = 0
            self.stats.pool_creates += 1
            self.stats.traces_shipped += len(self._all_traces)
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        else:
            self.stats.pool_reuses += 1
        return self._pool

    # -- internals -------------------------------------------------------------

    def _pick_chunk_size(self, pending: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        spread = max(1, pending // (self.jobs * 4))
        return min(spread, MAX_CHUNK_SIZE)

    def _plan_chunks(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping,
    ) -> list[list[tuple[int, SimulationJob]]]:
        """Split *pending* into worker chunks according to the scheduler.

        ``uniform`` reproduces the seed behaviour (input order, fixed size).
        ``ljf`` performs longest-processing-time binning: jobs sorted by
        descending cost go to the least-loaded chunk with room, and chunks
        are returned costliest-first so the heaviest work starts earliest.
        Both plans are deterministic functions of the batch.
        """
        chunk_size = self._pick_chunk_size(len(pending))
        if self.scheduler == "uniform":
            return _chunked(pending, chunk_size)
        num_chunks = (len(pending) + chunk_size - 1) // chunk_size
        if num_chunks <= 1:
            return [list(pending)]
        costs = [_job_cost(job, traces) for _, job in pending]
        order = sorted(range(len(pending)), key=lambda i: (-costs[i], i))
        bins: list[list[tuple[int, SimulationJob]]] = [[] for _ in range(num_chunks)]
        bin_costs = [0] * num_chunks
        # Least-loaded-first heap; bins at capacity drop out of the heap.
        heap: list[tuple[int, int]] = [(0, b) for b in range(num_chunks)]
        for i in order:
            while True:
                load, b = heappop(heap)
                if len(bins[b]) < chunk_size:
                    break
            bins[b].append(pending[i])
            bin_costs[b] = load + costs[i]
            if len(bins[b]) < chunk_size:
                heappush(heap, (bin_costs[b], b))
        plan = [b for b in range(num_chunks) if bins[b]]
        plan.sort(key=lambda b: (-bin_costs[b], b))
        return [bins[b] for b in plan]

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            if self._progress_args >= 3:
                self.progress(done, total, self.stats)
            else:
                self.progress(done, total)

    # -- API -------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SimulationJob],
        traces: Mapping,
    ) -> list[StoredResult]:
        """Execute *jobs*, returning results in input order.

        *traces* maps each job's ``trace_id`` to the actual instruction
        trace (a micro-op list or a
        :class:`~repro.workloads.decoded.DecodedTrace`); only the traces the
        batch references are shipped to workers.  Duplicate job contents
        within one batch are simulated once.
        """
        self.stats.batches += 1
        self.stats.jobs += len(jobs)
        total = len(jobs)
        results: list[StoredResult | None] = [None] * total

        # Resolve store hits and batch-internal duplicates first.
        pending: list[tuple[int, SimulationJob]] = []
        first_index_of_key: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        for index, job in enumerate(jobs):
            if job.trace_id not in traces:
                raise KeyError(
                    f"job {job.describe()} references unknown trace {job.trace_id!r}"
                )
            key = job.key()
            if key in first_index_of_key:
                duplicates.append((index, first_index_of_key[key]))
                continue
            first_index_of_key[key] = index
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    results[index] = stored
                    self.stats.store_hits += 1
                    continue
            pending.append((index, job))
        self._report(total - len(pending) - len(duplicates), total)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                done = total - len(pending) - len(duplicates)
                for index, job in pending:
                    try:
                        results[index] = _execute_job(job, traces[job.trace_id])
                    except Exception as exc:
                        raise JobFailedError(
                            job.describe(), traceback.format_exc()
                        ) from exc
                    done += 1
                    self._report(done, total)
            else:
                self._run_parallel(pending, traces, results, total, len(duplicates))
            self.stats.executed += len(pending)
            if self.store is not None:
                for index, job in pending:
                    self.store.put(job.key(), results[index])

        for index, source in duplicates:
            results[index] = results[source]
        if duplicates:
            self._report(total, total)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping,
        results: list[StoredResult | None],
        total: int,
        num_duplicates: int,
    ) -> None:
        needed_ids = {job.trace_id for _, job in pending}
        batch_traces = {tid: traces[tid] for tid in needed_ids}
        pool = self._ensure_pool(batch_traces)
        known_ids = self._pool_trace_ids
        chunks = self._plan_chunks(pending, traces)
        self.stats.chunks += len(chunks)
        done = total - len(pending) - num_duplicates

        futures = {}
        unfinished: set = set()
        try:
            for chunk in chunks:
                # Per-chunk trace delta: whatever this chunk references that
                # the pool's trace table does not hold.  Workers merge deltas
                # into their cumulative table; once the delta payload this
                # engine has shipped outweighs the initializer payload, the
                # next `_ensure_pool` rebases the pool (see there).
                delta = {
                    tid: batch_traces[tid]
                    for tid in {job.trace_id for _, job in chunk}
                    if tid not in known_ids
                }
                self.stats.trace_deltas += len(delta)
                self._delta_cost_since_rebase += sum(
                    len(trace) for trace in delta.values()
                )
                futures[pool.submit(_run_chunk, (chunk, delta))] = chunk

            unfinished = set(futures)
            while unfinished:
                finished, unfinished = wait(unfinished, return_when=FIRST_COMPLETED)
                for future in finished:
                    outcome = future.result()
                    if isinstance(outcome, _ChunkFailure):
                        raise JobFailedError(
                            outcome.description, outcome.remote_traceback
                        )
                    for index, stored in outcome:
                        results[index] = stored
                        done += 1
                    self.stats.straggler_jobs = len(futures[future])
                    self._report(done, total)
        except JobFailedError:
            # The pool itself is healthy (failures travel as values); cancel
            # whatever has not started and keep the pool for the next batch.
            for future in unfinished:
                future.cancel()
            raise
        except BaseException:
            # Pool-level failure (e.g. a worker died): tear the pool down so
            # the next batch starts from a clean slate.
            self.close()
            raise
