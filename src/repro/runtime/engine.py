"""Parallel simulation job engine.

:class:`JobEngine` executes batches of :class:`~repro.runtime.job.SimulationJob`
specs, sharding them across a :class:`concurrent.futures.ProcessPoolExecutor`
in deterministic chunks.  Each batch first consults the optional persistent
:class:`~repro.runtime.store.ResultStore`, so only genuinely new
(config, bug, trace, step) combinations are ever simulated; computed results
are written back for future runs.

With ``jobs=1`` (the default, also selectable via the ``REPRO_JOBS``
environment variable) everything runs inline in the calling process — the
serial fallback used by tests, CI smoke runs and one-core machines.  Serial
and parallel execution produce bit-identical results: the simulators are
deterministic functions of (config, bug, trace, step), and each job is
additionally handed a deterministic content-derived seed so that future
stochastic simulator features cannot silently diverge across workers.
"""

from __future__ import annotations

import os
import random
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..coresim.simulator import simulate_trace
from ..memsim.simulator import simulate_memory_trace
from ..workloads.isa import MicroOp
from .job import CORE_STUDY, MEMORY_STUDY, SimulationJob
from .store import ResultStore, StoredResult

#: Environment variable naming the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Hard ceiling on the per-chunk job count (bounds pickling latency and
#: keeps progress callbacks responsive on long batches).
MAX_CHUNK_SIZE = 32


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, defaulting to serial execution."""
    value = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {value!r}") from None
    return max(1, jobs)


class JobFailedError(RuntimeError):
    """A job raised inside a worker; carries the remote traceback."""

    def __init__(self, description: str, remote_traceback: str) -> None:
        super().__init__(
            f"simulation job {description} failed in worker:\n{remote_traceback}"
        )
        self.description = description
        self.remote_traceback = remote_traceback


@dataclass
class EngineStats:
    """Counters describing what one :class:`JobEngine` actually did."""

    batches: int = 0
    jobs: int = 0
    store_hits: int = 0
    executed: int = 0

    def reset(self) -> None:
        self.batches = self.jobs = self.store_hits = self.executed = 0


# -- worker-side machinery ---------------------------------------------------
#
# The trace table is installed once per worker process via the executor's
# initializer, so jobs reference traces by content digest instead of
# re-pickling multi-thousand-instruction traces for every job.

_WORKER_TRACES: Mapping[str, list[MicroOp]] = {}


def _init_worker(traces: Mapping[str, list[MicroOp]]) -> None:
    global _WORKER_TRACES
    _WORKER_TRACES = traces


def _execute_job(job: SimulationJob, trace: list[MicroOp]) -> StoredResult:
    """Run one job to completion on *trace* (in-process or in a worker)."""
    # The simulators are deterministic, but seed the global RNGs from the
    # job identity anyway so any future stochastic component stays
    # reproducible and identical across serial/parallel execution.
    seed = job.seed()
    python_state = random.getstate()
    numpy_state = np.random.get_state()
    random.seed(seed)
    np.random.seed(seed % 2**32)
    try:
        if job.study == CORE_STUDY:
            return StoredResult.from_core(
                simulate_trace(job.config, trace, bug=job.bug, step_cycles=job.step)
            )
        if job.study == MEMORY_STUDY:
            return StoredResult.from_memory(
                simulate_memory_trace(
                    job.config, trace, bug=job.bug, step_instructions=job.step
                )
            )
        raise ValueError(f"unknown study kind {job.study!r}")
    finally:
        # Leave the caller's RNG streams untouched (matters for the serial
        # in-process path, where experiments draw from these RNGs too).
        random.setstate(python_state)
        np.random.set_state(numpy_state)


@dataclass
class _ChunkFailure:
    """Picklable stand-in for an exception raised inside a worker."""

    description: str
    remote_traceback: str


def _run_chunk(
    chunk: list[tuple[int, SimulationJob]],
) -> list[tuple[int, StoredResult]] | _ChunkFailure:
    results: list[tuple[int, StoredResult]] = []
    for index, job in chunk:
        try:
            results.append((index, _execute_job(job, _WORKER_TRACES[job.trace_id])))
        except Exception:
            # Exceptions from user bug models may not survive pickling;
            # ship the traceback as text instead.
            return _ChunkFailure(job.describe(), traceback.format_exc())
    return results


def _chunked(items: Sequence, chunk_size: int) -> list[list]:
    """Split *items* into ordered chunks of at most *chunk_size* elements."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


class JobEngine:
    """Executes simulation job batches, in parallel when asked to.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` reads ``REPRO_JOBS`` (default 1).
        With 1 worker everything runs inline — no pool, no pickling.
    store:
        Optional persistent :class:`ResultStore` consulted before and
        updated after every batch.
    chunk_size:
        Jobs per worker task; ``None`` sizes chunks to roughly four tasks
        per worker, capped at :data:`MAX_CHUNK_SIZE`.
    progress:
        Optional ``callback(done, total)`` invoked as batch jobs finish
        (store hits report immediately).
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        chunk_size: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.store = store
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.progress = progress
        self.stats = EngineStats()

    # -- internals -------------------------------------------------------------

    def _pick_chunk_size(self, pending: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        spread = max(1, pending // (self.jobs * 4))
        return min(spread, MAX_CHUNK_SIZE)

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    # -- API -------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SimulationJob],
        traces: Mapping[str, list[MicroOp]],
    ) -> list[StoredResult]:
        """Execute *jobs*, returning results in input order.

        *traces* maps each job's ``trace_id`` to the actual instruction
        trace; only the traces the batch references are shipped to workers.
        Duplicate job contents within one batch are simulated once.
        """
        self.stats.batches += 1
        self.stats.jobs += len(jobs)
        total = len(jobs)
        results: list[StoredResult | None] = [None] * total

        # Resolve store hits and batch-internal duplicates first.
        pending: list[tuple[int, SimulationJob]] = []
        first_index_of_key: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        for index, job in enumerate(jobs):
            if job.trace_id not in traces:
                raise KeyError(
                    f"job {job.describe()} references unknown trace {job.trace_id!r}"
                )
            key = job.key()
            if key in first_index_of_key:
                duplicates.append((index, first_index_of_key[key]))
                continue
            first_index_of_key[key] = index
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    results[index] = stored
                    self.stats.store_hits += 1
                    continue
            pending.append((index, job))
        self._report(total - len(pending) - len(duplicates), total)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                done = total - len(pending) - len(duplicates)
                for index, job in pending:
                    try:
                        results[index] = _execute_job(job, traces[job.trace_id])
                    except Exception as exc:
                        raise JobFailedError(
                            job.describe(), traceback.format_exc()
                        ) from exc
                    done += 1
                    self._report(done, total)
            else:
                self._run_parallel(pending, traces, results, total, len(duplicates))
            self.stats.executed += len(pending)
            if self.store is not None:
                for index, job in pending:
                    self.store.put(job.key(), results[index])

        for index, source in duplicates:
            results[index] = results[source]
        if duplicates:
            self._report(total, total)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping[str, list[MicroOp]],
        results: list[StoredResult | None],
        total: int,
        num_duplicates: int,
    ) -> None:
        needed_ids = {job.trace_id for _, job in pending}
        batch_traces = {tid: traces[tid] for tid in needed_ids}
        chunks = _chunked(pending, self._pick_chunk_size(len(pending)))
        workers = min(self.jobs, len(chunks))
        done = total - len(pending) - num_duplicates
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(batch_traces,),
        ) as pool:
            for outcome in pool.map(_run_chunk, chunks):
                if isinstance(outcome, _ChunkFailure):
                    raise JobFailedError(outcome.description, outcome.remote_traceback)
                for index, stored in outcome:
                    results[index] = stored
                    done += 1
                self._report(done, total)
