"""Backend-independent simulation job engine.

:class:`JobEngine` executes batches of :class:`~repro.runtime.job.SimulationJob`
specs.  Each batch first consults the optional persistent
:class:`~repro.runtime.store.ResultStore`, so only genuinely new
(config, bug, trace, step) combinations are ever simulated; computed results
are written back **as each chunk completes**, so a mid-batch failure never
discards finished work (re-running after a failure executes only the
unfinished jobs).

Where those jobs actually execute is a pluggable
:class:`~repro.runtime.backends.ExecutionBackend`, selected by spec string::

    JobEngine(backend="serial")                  # inline (default)
    JobEngine(backend="local:8")                 # persistent process pool
    JobEngine(backend="subprocess:4")            # repro-worker over stdio
    JobEngine(backend="cluster:4,policy=ljf")    # elastic scheduler-managed pool
    JobEngine(backend="ssh://hostA:4,hostB:4")   # repro-worker over ssh
    JobEngine(jobs=8)                            # sugar for "local:8"

``jobs=1`` (the default) maps to ``serial``; the ``REPRO_JOBS`` and
``REPRO_BACKEND`` environment variables supply defaults when neither
argument is given.  Every backend produces bit-identical results: the
simulators are deterministic functions of (config, bug, trace, step), each
job is handed a deterministic content-derived seed, and a conformance suite
pins serial ≡ local ≡ subprocess output.

The engine keeps what is backend-independent — store consultation,
batch-internal dedup, cost-aware LJF / uniform chunk planning
(see docs/PERFORMANCE.md), :class:`EngineStats`, progress reporting and
:class:`JobFailedError` semantics — and delegates chunk execution plus trace
distribution to the backend (see ``docs/RUNTIME.md`` and
:mod:`repro.runtime.backends`).
"""

from __future__ import annotations

import inspect
import os
import traceback
from heapq import heappop, heappush
from typing import Callable, Mapping, Sequence

from ..coresim.simulator import resolve_kernel
from .backends import (
    ExecutionBackend,
    default_backend_spec,
    parse_backend,
    spec_for_jobs,
)
from .execution import GROUPING_KERNELS, _execute_unit, plan_batches, vector_group_key
from .job import SimulationJob
from .stats import EngineStats
from .store import ResultStore, StoredResult

#: Environment variable naming the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Hard ceiling on the per-chunk job count (bounds pickling latency and
#: keeps progress callbacks responsive on long batches).
MAX_CHUNK_SIZE = 32

#: Per-chunk ceiling when a batching kernel (vector/native/auto) is active:
#: chunks are the unit of batching inside workers, so same-config groups are
#: kept much larger (job specs are small — traces ship separately by digest).
VECTOR_CHUNK_SIZE = 256

#: Scheduling strategies understood by :class:`JobEngine`.
SCHEDULERS = ("ljf", "uniform")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, defaulting to serial execution."""
    value = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {value!r}") from None
    return max(1, jobs)


class JobFailedError(RuntimeError):
    """A job raised inside a worker; carries the remote traceback."""

    def __init__(self, description: str, remote_traceback: str) -> None:
        super().__init__(
            f"simulation job {description} failed in worker:\n{remote_traceback}"
        )
        self.description = description
        self.remote_traceback = remote_traceback


def _chunked(items: Sequence, chunk_size: int) -> list[list]:
    """Split *items* into ordered chunks of at most *chunk_size* elements."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


def _job_cost(job: SimulationJob, traces: Mapping) -> int:
    """Cost proxy for one job: trace length × design width.

    Simulated cycles scale with trace length, and per-cycle work scales with
    the machine width (more dispatch/issue/commit slots per cycle), so the
    product tracks wall-clock within the accuracy LJF binning needs.
    """
    trace = traces.get(job.trace_id)
    length = len(trace) if trace is not None else 1
    config = job.config
    width = getattr(config, "width", None)
    if width is None:
        width = getattr(config, "issue_width", 1)
    return max(1, length * int(width))


def _progress_arity(progress: Callable | None) -> int:
    """How many positional arguments *progress* accepts (2 or 3)."""
    if progress is None:
        return 2
    try:
        parameters = inspect.signature(progress).parameters.values()
    except (TypeError, ValueError):  # builtins, C callables
        return 2
    positional = [
        p
        for p in parameters
        if p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    # Variadic callables (e.g. a `lambda *a:` wrapper around a seed-style
    # two-argument callback) conservatively get the seed calling convention;
    # only an explicit three-parameter signature opts into receiving stats.
    return 3 if len(positional) >= 3 else 2


def _resolve_backend(
    jobs: "int | None", backend: "str | ExecutionBackend | None"
) -> ExecutionBackend:
    """Pick the backend: explicit backend > explicit jobs > env > serial."""
    if backend is not None and jobs is not None:
        raise ValueError("pass either jobs= or backend=, not both")
    if backend is None:
        if jobs is not None:
            backend = spec_for_jobs(jobs)
        else:
            backend = default_backend_spec() or spec_for_jobs(default_jobs())
    return parse_backend(backend)


class JobEngine:
    """Executes simulation job batches on a pluggable execution backend.

    Parameters
    ----------
    jobs:
        Worker count sugar: ``1`` is the ``serial`` backend, ``N`` is
        ``local:N``.  ``None`` defers to *backend*, then to the
        ``REPRO_BACKEND`` / ``REPRO_JOBS`` environment variables (default
        serial).  Mutually exclusive with *backend*.
    backend:
        Backend spec string (``"serial"``, ``"local:8"``, ``"subprocess:4"``,
        ``"ssh://hostA:4,hostB:4"`` — see :mod:`repro.runtime.backends`) or
        an :class:`~repro.runtime.backends.ExecutionBackend` instance.
    store:
        Optional persistent :class:`ResultStore` consulted before every
        batch and updated as results complete (so interrupted batches
        resume instead of recomputing).
    chunk_size:
        Jobs per backend task; ``None`` sizes chunks to roughly four tasks
        per worker slot, capped at :data:`MAX_CHUNK_SIZE`.
    progress:
        Optional ``callback(done, total)`` invoked as batch jobs finish
        (store hits report immediately).  A three-argument callback
        ``callback(done, total, stats)`` additionally receives the live
        :class:`EngineStats`, exposing chunking and worker-reuse behaviour.
    scheduler:
        ``"ljf"`` (default) bins pending jobs longest-first into
        cost-balanced chunks and dispatches the costliest chunks first;
        ``"uniform"`` chunks in input order like the seed engine.

    The engine may be used as a context manager; ``close()`` shuts down the
    backend's worker set (each backend also installs its own finalizer, so
    garbage-collecting the engine cannot leak worker processes).
    """

    def __init__(
        self,
        jobs: int | None = None,
        store: ResultStore | None = None,
        chunk_size: int | None = None,
        progress: Callable | None = None,
        scheduler: str = "ljf",
        backend: "str | ExecutionBackend | None" = None,
        kernel: "str | None" = None,
    ) -> None:
        self.stats = EngineStats()
        self.backend = _resolve_backend(jobs, backend)
        self.backend.stats = self.stats
        #: Worker slot count, kept for backward compatibility with the
        #: seed's ``engine.jobs`` (chunk sizing also derives from it).
        self.jobs = self.backend.slots
        self.store = store
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; available: {SCHEDULERS}"
            )
        self.chunk_size = chunk_size
        self.scheduler = scheduler
        #: Simulation kernel driving chunk planning (``None``: REPRO_KERNEL,
        #: resolved per batch).  With a batching kernel (vector, native or
        #: auto), same-(config, bug, step) jobs are planned into contiguous
        #: chunks so workers can run them as one batch unit apiece.
        #: Parallel-backend workers resolve the
        #: kernel from *their* environment (the chunk wire format carries no
        #: kernel field), so an explicit argument is only honoured on inline
        #: backends — anything else is rejected here rather than silently
        #: planning batches the workers would then execute one by one.
        self.kernel = kernel
        if kernel is not None:
            resolved = resolve_kernel(kernel)  # validates the name too
            if not self.backend.inline and resolved != resolve_kernel(None):
                raise ValueError(
                    f"kernel={kernel!r} with the non-inline backend "
                    f"{self.backend.spec!r}: parallel workers resolve the "
                    "kernel from their environment, so set "
                    f"REPRO_KERNEL={kernel} instead of (or in addition to) "
                    "the argument"
                )
        self.progress = progress
        self._progress_args = _progress_arity(progress)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut down the backend's worker set (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _pick_chunk_size(self, pending: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        spread = max(1, pending // (self.jobs * 4))
        return min(spread, MAX_CHUNK_SIZE)

    def _plan_chunks_grouped(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping,
    ) -> list[list[tuple[int, SimulationJob]]]:
        """Chunk planning for the batching kernels: group, then split.

        Jobs sharing a :func:`vector_group_key` are laid out contiguously —
        a chunk is the unit a worker batches, so scattering a sweep's jobs
        across chunks would forfeit batched execution.  Groups are ordered
        costliest-first (cost proxy as in LJF) and split only at the
        batch chunk capacity; ungroupable jobs ride along in input order.
        The plan is a deterministic function of the batch.
        """
        cap = self.chunk_size or VECTOR_CHUNK_SIZE
        groups: dict[object, list[tuple[int, SimulationJob]]] = {}
        for position, item in enumerate(pending):
            key = vector_group_key(item[1])
            groups.setdefault(key if key is not None else ("single", position), []).append(item)
        ordered = sorted(
            groups.values(),
            key=lambda grp: (
                -sum(_job_cost(job, traces) for _, job in grp),
                grp[0][0],
            ),
        )
        chunks: list[list[tuple[int, SimulationJob]]] = []
        current: list[tuple[int, SimulationJob]] = []
        for group in ordered:
            for start in range(0, len(group), cap):
                piece = group[start : start + cap]
                if current and len(current) + len(piece) > cap:
                    chunks.append(current)
                    current = []
                current.extend(piece)
        if current:
            chunks.append(current)
        return chunks

    def _plan_chunks(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping,
    ) -> list[list[tuple[int, SimulationJob]]]:
        """Split *pending* into backend chunks according to the scheduler.

        ``uniform`` reproduces the seed behaviour (input order, fixed size).
        ``ljf`` performs longest-processing-time binning: jobs sorted by
        descending cost go to the least-loaded chunk with room, and chunks
        are returned costliest-first so the heaviest work starts earliest.
        Both plans are deterministic functions of the batch.  When a
        batching kernel (vector, native or auto) is selected, planning
        switches to :meth:`_plan_chunks_grouped` so same-config sweeps stay
        batchable.
        """
        if resolve_kernel(self.kernel) in GROUPING_KERNELS:
            return self._plan_chunks_grouped(pending, traces)
        chunk_size = self._pick_chunk_size(len(pending))
        if self.scheduler == "uniform":
            return _chunked(pending, chunk_size)
        num_chunks = (len(pending) + chunk_size - 1) // chunk_size
        if num_chunks <= 1:
            return [list(pending)]
        costs = [_job_cost(job, traces) for _, job in pending]
        order = sorted(range(len(pending)), key=lambda i: (-costs[i], i))
        bins: list[list[tuple[int, SimulationJob]]] = [[] for _ in range(num_chunks)]
        bin_costs = [0] * num_chunks
        # Least-loaded-first heap; bins at capacity drop out of the heap.
        heap: list[tuple[int, int]] = [(0, b) for b in range(num_chunks)]
        for i in order:
            while True:
                load, b = heappop(heap)
                if len(bins[b]) < chunk_size:
                    break
            bins[b].append(pending[i])
            bin_costs[b] = load + costs[i]
            if len(bins[b]) < chunk_size:
                heappush(heap, (bin_costs[b], b))
        plan = [b for b in range(num_chunks) if bins[b]]
        plan.sort(key=lambda b: (-bin_costs[b], b))
        return [bins[b] for b in plan]

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            if self._progress_args >= 3:
                self.progress(done, total, self.stats)
            else:
                self.progress(done, total)

    def _persist(self, job: SimulationJob, result: StoredResult) -> None:
        """Write one finished result to the store immediately (resumability)."""
        if self.store is not None:
            self.store.put(job.key(), result)

    # -- API -------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SimulationJob],
        traces: Mapping,
    ) -> list[StoredResult]:
        """Execute *jobs*, returning results in input order.

        *traces* maps each job's ``trace_id`` to the actual instruction
        trace (a micro-op list or a
        :class:`~repro.workloads.decoded.DecodedTrace`); only the traces the
        batch references are shipped to workers.  Duplicate job contents
        within one batch are simulated once.
        """
        self.stats.batches += 1
        self.stats.jobs += len(jobs)
        total = len(jobs)
        results: list[StoredResult | None] = [None] * total

        # Resolve store hits and batch-internal duplicates first.
        pending: list[tuple[int, SimulationJob]] = []
        first_index_of_key: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        for index, job in enumerate(jobs):
            if job.trace_id not in traces:
                raise KeyError(
                    f"job {job.describe()} references unknown trace {job.trace_id!r}"
                )
            key = job.key()
            if key in first_index_of_key:
                duplicates.append((index, first_index_of_key[key]))
                continue
            first_index_of_key[key] = index
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    results[index] = stored
                    self.stats.store_hits += 1
                    continue
            pending.append((index, job))
        self._report(total - len(pending) - len(duplicates), total)

        if pending:
            # A single pending job skips worker spin-up and runs inline —
            # but only for local backends: a remote backend was chosen to
            # place work *elsewhere*, so even one job goes through it.
            if self.backend.inline or (len(pending) == 1 and not self.backend.remote):
                done = total - len(pending) - len(duplicates)
                job_of_index = dict(pending)
                # Unit planning groups same-(config, bug, step) jobs into
                # batch units when a batching kernel is selected; with
                # the scalar kernel every unit is one job (seed behaviour).
                for unit in plan_batches(pending, self.kernel):
                    try:
                        unit_results = _execute_unit(
                            unit,
                            {j.trace_id: traces[j.trace_id] for _, j in unit},
                            kernel=self.kernel,
                        )
                    except Exception as exc:
                        raise JobFailedError(
                            unit[0][1].describe(), traceback.format_exc()
                        ) from exc
                    for index, stored in unit_results:
                        results[index] = stored
                        self._persist(job_of_index[index], stored)
                        done += 1
                        self._report(done, total)
            else:
                self._run_parallel(pending, traces, results, total, len(duplicates))
            self.stats.executed += len(pending)

        for index, source in duplicates:
            results[index] = results[source]
        if duplicates:
            self._report(total, total)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self,
        pending: list[tuple[int, SimulationJob]],
        traces: Mapping,
        results: list[StoredResult | None],
        total: int,
        num_duplicates: int,
    ) -> None:
        needed_ids = {job.trace_id for _, job in pending}
        batch_traces = {tid: traces[tid] for tid in needed_ids}
        backend = self.backend
        backend.start(batch_traces)
        known_ids = backend.known_trace_ids()
        job_of_index = dict(pending)
        chunks = self._plan_chunks(pending, traces)
        self.stats.chunks += len(chunks)
        done = total - len(pending) - num_duplicates

        try:
            for tag, chunk in enumerate(chunks):
                # Per-chunk trace delta: whatever this chunk references that
                # the backend's workers do not already hold.  Backends that
                # distribute traces themselves (remote) report everything as
                # known and receive empty deltas.
                delta = {
                    tid: batch_traces[tid]
                    for tid in sorted({job.trace_id for _, job in chunk})
                    if tid not in known_ids
                }
                self.stats.trace_deltas += len(delta)
                backend.submit(tag, chunk, delta)

            outstanding = len(chunks)
            for tag, (chunk_results, failure) in backend.drain():
                outstanding -= 1
                # Persist whatever the chunk finished — including the jobs
                # that completed before a failure — so an interrupted batch
                # resumes instead of recomputing.
                for index, stored in chunk_results:
                    results[index] = stored
                    self._persist(job_of_index[index], stored)
                    done += 1
                if failure is not None:
                    raise JobFailedError(failure.description, failure.remote_traceback)
                self.stats.straggler_jobs = len(chunks[tag])
                self._report(done, total)
                if outstanding == 0:
                    break
        except JobFailedError:
            # The workers themselves are healthy (job failures travel as
            # values): drop what has not started and keep the backend warm
            # for the next batch.
            backend.cancel_pending()
            raise
        except BaseException:
            # Backend-level failure (worker death, lost connection,
            # KeyboardInterrupt): tear the worker set down so the next
            # batch starts from a clean slate.
            backend.close()
            raise
