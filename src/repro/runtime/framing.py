"""The 8-byte length-prefixed pickle frame protocol, in one place.

Every process boundary in the runtime speaks the same wire format: the
``repro-worker`` stdio protocol (:mod:`repro.runtime.worker` driven by
:mod:`repro.runtime.backends.remote`) and the ``repro-serve`` detection
daemon (:mod:`repro.serve.server` driven by :mod:`repro.serve.client`).
This module is the single implementation of that format — framing, the
versioned hello handshake, and the error taxonomy — so a short-read or
truncation fix lands everywhere at once instead of drifting across three
hand-rolled copies.

Frame layout:

* An 8-byte big-endian unsigned length, then that many bytes of a pickled
  ``(kind, payload)`` tuple (*kind* is a short string).
* :func:`read_frame` reads with an exact-length loop, so partial ``recv``
  returns from pipes **and sockets** are handled identically: EOF inside a
  frame is always a :class:`ProtocolError`, EOF at a frame boundary is a
  clean disconnect when the caller allows it.
* Oversized lengths (:data:`MAX_FRAME_BYTES`) mean the stream is garbage
  (e.g. a stray ``print`` landed on the frame stream) and fail fast.

Handshake: the connecting side sends ``("hello", {"protocol": V})`` and the
accepting side answers with its own hello (or ``("error", message)``); both
call :func:`check_hello` so a version mismatch is rejected symmetrically.

Liveness (protocol v2): any side may send ``("ping", token)`` and expects a
``("pong", {"token": token, "protocol": V, ...})`` answer; a driver's hello
may additionally carry ``{"heartbeat": seconds}``, asking the worker to emit
unsolicited ``("heartbeat", {"seq": n, "protocol": V, ...})`` frames every
:data:`HEARTBEAT_INTERVAL`-ish seconds from a side thread — so a worker
grinding through a long chunk is still distinguishable from a hung or
``SIGKILL``-ed one.  A peer silent for :data:`LIVENESS_DEADLINE` seconds is
presumed dead; the ``repro.cluster`` scheduler kills and respawns it and
requeues whatever chunk it held.  Both constants are canonical *here* (the
``protocol-constant`` lint enforces single definitions) and are scaled, not
redefined, by callers that need faster test deadlines.

Sockets plug in via ``socket.makefile("rb")`` / ``makefile("wb")`` — the
framing functions only need binary file objects with ``read``/``write``/
``flush``.
"""

from __future__ import annotations

import pickle
import struct
from typing import BinaryIO

from .backends.base import BackendError

#: Version of the frame protocol; bump on any incompatible layout change.
#: Both sides of every connection refuse to talk across a mismatch.
#: v2: ping/pong/heartbeat liveness frames (the heartbeat side-channel is
#: opt-in via the driver hello, but a v1 peer would treat the new kinds as
#: garbage mid-session, so the version is bumped rather than feature-flagged).
PROTOCOL_VERSION = 2

#: Upper bound on a single frame body.  Real frames are far smaller; a
#: length beyond this means the stream is garbage (e.g. a worker printing
#: to stdout), and failing fast beats trying to allocate petabytes.
MAX_FRAME_BYTES = 1 << 30

#: Frame kinds shared by every protocol built on this framing.
HELLO = "hello"
ERROR = "error"
SHUTDOWN = "shutdown"

#: Frame kinds of the worker chunk protocol (docs/RUNTIME.md).
TRACES = "traces"
CHUNK = "chunk"
RESULT = "result"

#: Liveness frame kinds (protocol v2), shared by the worker protocol and the
#: ``repro-serve`` daemon: ``ping`` expects a ``pong`` answer; ``heartbeat``
#: is the worker's unsolicited I-am-alive side-channel.
PING = "ping"
PONG = "pong"
HEARTBEAT = "heartbeat"

#: Seconds between unsolicited worker heartbeat frames (requested via the
#: driver hello's ``{"heartbeat": seconds}`` field; this is the default the
#: cluster scheduler asks for).
HEARTBEAT_INTERVAL = 1.0

#: Seconds of total silence (no heartbeat, pong, or result) after which a
#: heartbeat-enabled worker is presumed dead.  Deliberately many multiples
#: of :data:`HEARTBEAT_INTERVAL`: heartbeats ride a daemon thread that a
#: GIL-hogging simulation can delay, and a false kill costs a full chunk
#: requeue.
LIVENESS_DEADLINE = 15.0

_HEADER = struct.Struct(">Q")


class ProtocolError(BackendError):
    """The frame stream broke: truncation, garbage, or a version mismatch."""


def write_frame(stream: BinaryIO, kind: str, payload) -> None:
    """Write one length-prefixed pickle frame and flush."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(body)))
    stream.write(body)
    stream.flush()


def read_exact(stream: BinaryIO, size: int) -> bytes:
    """Read exactly *size* bytes, looping over short reads.

    Pipes and sockets may both return fewer bytes than asked; this loop is
    the one place that handles it.  EOF before *size* bytes arrived raises
    :class:`ProtocolError`.
    """
    data = b""
    while len(data) < size:
        piece = stream.read(size - len(data))
        if not piece:
            raise ProtocolError(
                f"truncated frame: expected {size} bytes, got {len(data)}"
            )
        data += piece
    return data


def read_frame(stream: BinaryIO, allow_eof: bool = False):
    """Read one frame, returning ``(kind, payload)``.

    At a clean frame boundary, EOF returns ``None`` when *allow_eof* is set
    (the peer closed the connection deliberately) and raises
    :class:`ProtocolError` otherwise.  EOF inside a frame is always a
    :class:`ProtocolError`.
    """
    first = stream.read(1)
    if not first:
        if allow_eof:
            return None
        raise ProtocolError("connection closed while waiting for a frame")
    header = first + read_exact(stream, _HEADER.size - 1)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame: {length} bytes (stream is garbage?)")
    try:
        frame = pickle.loads(read_exact(stream, length))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not (isinstance(frame, tuple) and len(frame) == 2 and isinstance(frame[0], str)):
        raise ProtocolError(f"malformed frame: {type(frame).__name__}")
    return frame


def hello_version(payload) -> "int | None":
    """The protocol version carried by a hello payload (``None`` if absent)."""
    return payload.get("protocol") if isinstance(payload, dict) else None


def check_hello(payload, side: str) -> None:
    """Validate a handshake payload against our :data:`PROTOCOL_VERSION`."""
    version = hello_version(payload)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: {side} speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
