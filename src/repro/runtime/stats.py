"""Observable counters describing what one :class:`JobEngine` actually did.

Lives in its own module (rather than in :mod:`repro.runtime.engine`) because
both the engine and every :class:`~repro.runtime.backends.ExecutionBackend`
update the same stats object: the engine owns the batch/job/store/chunking
counters, the backend owns the worker-lifecycle and trace-shipping counters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters describing what one :class:`JobEngine` actually did.

    Beyond the seed's batch/job/store counters, the scheduling fields let
    alternative schedulers and backends be compared from a progress callback:
    ``chunks`` (backend tasks dispatched), ``straggler_jobs`` (jobs in the
    chunk that finished last in the most recent parallel batch),
    ``pool_creates``/``pool_reuses`` (worker-set lifecycle: pool or remote
    worker creation vs reuse across batches), ``traces_shipped`` (traces
    sent to workers at worker start-up — once per worker for remote
    backends) and ``trace_deltas`` (trace copies attached to chunks as
    deltas).

    The liveness counters are owned by the elastic ``cluster`` backend
    (:mod:`repro.cluster`): ``workers_spawned`` (worker processes started,
    including respawns), ``workers_lost`` (workers that died or were killed
    for missing their liveness deadline), ``workers_respawned`` (spawns
    that replaced a previously-live worker) and ``chunks_requeued``
    (in-flight chunks given back to the queue after their worker was lost).
    They stay zero on the serial/local/subprocess backends.
    """

    batches: int = 0
    jobs: int = 0
    store_hits: int = 0
    executed: int = 0
    chunks: int = 0
    straggler_jobs: int = 0
    pool_creates: int = 0
    pool_reuses: int = 0
    traces_shipped: int = 0
    trace_deltas: int = 0
    workers_spawned: int = 0
    workers_lost: int = 0
    workers_respawned: int = 0
    chunks_requeued: int = 0

    def reset(self) -> None:
        self.batches = self.jobs = self.store_hits = self.executed = 0
        self.chunks = self.straggler_jobs = 0
        self.pool_creates = self.pool_reuses = 0
        self.traces_shipped = self.trace_deltas = 0
        self.workers_spawned = self.workers_lost = 0
        self.workers_respawned = self.chunks_requeued = 0
