"""``repro-worker``: serve simulation chunks over the stdio frame protocol.

The executable half of the remote execution backend
(:mod:`repro.runtime.backends.remote`): a driver spawns this process —
locally (``subprocess:N``) or via ``ssh host repro-worker`` (``ssh://``) —
and drives it through length-prefixed pickle frames on stdin/stdout.

Session shape::

    driver -> ("hello", {"protocol": V})          # versioned handshake
    worker -> ("hello", {"protocol": V, ...})     # or ("error", msg) + exit 2
    driver -> ("traces", {digest: trace})         # each trace ships once
    driver -> ("chunk", (tag, [(index, job), ...]))
    worker -> ("result", (tag, outcome))          # ChunkOutcome
    ...                                           # more traces/chunks
    driver -> ("shutdown", None)                  # or EOF; worker exits 0

The worker keeps a cumulative content-addressed trace table for the whole
session, so each trace crosses the wire once per worker no matter how many
chunks reference it.  Job-level exceptions are returned *inside* outcomes
(as :class:`~repro.runtime.execution.ChunkFailure`); only protocol-level
problems end the session with an ``error`` frame and a non-zero exit.

Never prints to stdout: the frame stream owns it.  ``sys.stdout`` is
rebound to stderr on startup so stray prints from simulator or bug-model
code cannot corrupt the framing.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

from .framing import (
    CHUNK,
    ERROR,
    HELLO,
    PROTOCOL_VERSION,
    RESULT,
    SHUTDOWN,
    TRACES,
    ProtocolError,
    hello_version,
    read_frame,
    write_frame,
)
from .execution import run_chunk_items


def serve(stdin, stdout) -> int:
    """Run one worker session over the given binary streams."""
    try:
        frame = read_frame(stdin)
    except ProtocolError as exc:
        write_frame(stdout, ERROR, f"handshake failed: {exc}")
        return 2
    kind, payload = frame
    version = hello_version(payload)
    if kind != HELLO or version != PROTOCOL_VERSION:
        write_frame(
            stdout,
            ERROR,
            f"protocol version mismatch: driver sent {kind!r} v{version!r}, "
            f"worker speaks v{PROTOCOL_VERSION}",
        )
        return 2
    write_frame(
        stdout,
        HELLO,
        {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "python": platform.python_version(),
            "host": platform.node(),
        },
    )

    traces: dict[str, object] = {}
    while True:
        try:
            frame = read_frame(stdin, allow_eof=True)
        except ProtocolError as exc:
            write_frame(stdout, ERROR, f"bad frame: {exc}")
            return 2
        if frame is None:  # driver closed the connection
            return 0
        kind, payload = frame
        if kind == TRACES:
            traces.update(payload)
        elif kind == CHUNK:
            tag, chunk = payload
            write_frame(stdout, RESULT, (tag, run_chunk_items(chunk, traces)))
        elif kind == SHUTDOWN:
            return 0
        else:
            write_frame(stdout, ERROR, f"unexpected frame kind {kind!r}")
            return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.parse_args(argv)
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # The frame stream owns the real stdout; reroute stray prints to stderr.
    sys.stdout = sys.stderr
    return serve(stdin, stdout)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
