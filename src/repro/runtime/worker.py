"""``repro-worker``: serve simulation chunks over the stdio frame protocol.

The executable half of the remote execution backends
(:mod:`repro.runtime.backends.remote` and :mod:`repro.cluster`): a driver
spawns this process — locally (``subprocess:N`` / ``cluster:N``) or via
``ssh host repro-worker`` (``ssh://``) — and drives it through
length-prefixed pickle frames on stdin/stdout.

Session shape::

    driver -> ("hello", {"protocol": V[, "heartbeat": seconds]})
    worker -> ("hello", {"protocol": V, ...})     # or ("error", msg) + exit 2
    driver -> ("traces", {digest: trace})         # each trace ships once
    driver -> ("chunk", (tag, [(index, job), ...]))
    worker -> ("result", (tag, outcome))          # ChunkOutcome
    driver -> ("ping", token)                     # liveness probe (idle only)
    worker -> ("pong", {"token": token, ...})
    ...                                           # more traces/chunks
    driver -> ("shutdown", None)                  # or EOF; worker exits 0

When the driver's hello carries ``{"heartbeat": seconds}``, the worker also
emits unsolicited ``("heartbeat", {"seq": n, ...})`` frames from a daemon
thread at that interval — the main thread blocks inside
:func:`~repro.runtime.execution.run_chunk_items` for the whole chunk, so
without the side-channel a long chunk is indistinguishable from a hang.
Every write to the frame stream (results, pongs, heartbeats) goes through
one lock so frames never interleave.

The worker keeps a cumulative content-addressed trace table for the whole
session, so each trace crosses the wire once per worker no matter how many
chunks reference it.  Job-level exceptions are returned *inside* outcomes
(as :class:`~repro.runtime.execution.ChunkFailure`); only protocol-level
problems end the session with an ``error`` frame and a non-zero exit.

Never prints to stdout: the frame stream owns it.  ``sys.stdout`` is
rebound to stderr on startup so stray prints from simulator or bug-model
code cannot corrupt the framing.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import threading
import time

from .framing import (
    CHUNK,
    ERROR,
    HEARTBEAT,
    HELLO,
    PING,
    PONG,
    PROTOCOL_VERSION,
    RESULT,
    SHUTDOWN,
    TRACES,
    ProtocolError,
    hello_version,
    read_frame,
    write_frame,
)
from .execution import run_chunk_items


class _Heartbeat:
    """Unsolicited I-am-alive frames on a daemon thread (protocol v2).

    Started only when the driver's hello asks for it.  Shares the frame
    stream with the main serving loop, so every write goes through the
    caller-supplied lock; a write failure (driver went away mid-stream)
    silently stops the thread — the main loop will see the broken pipe or
    EOF on its own.
    """

    def __init__(self, stdout, lock: threading.Lock, interval: float) -> None:
        self._stdout = stdout
        self._lock = lock
        self._interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._seq = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-worker-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._seq += 1
            try:
                with self._lock:
                    write_frame(
                        self._stdout,
                        HEARTBEAT,
                        {
                            "seq": self._seq,
                            "protocol": PROTOCOL_VERSION,
                            "pid": os.getpid(),
                            # repro: allow(wall-clock): liveness telemetry only
                            "monotonic": time.monotonic(),
                        },
                    )
            except (OSError, ValueError):  # driver gone; main loop will notice
                return


def serve(stdin, stdout) -> int:
    """Run one worker session over the given binary streams."""
    try:
        frame = read_frame(stdin)
    except ProtocolError as exc:
        write_frame(stdout, ERROR, f"handshake failed: {exc}")
        return 2
    kind, payload = frame
    version = hello_version(payload)
    if kind != HELLO or version != PROTOCOL_VERSION:
        write_frame(
            stdout,
            ERROR,
            f"protocol version mismatch: driver sent {kind!r} v{version!r}, "
            f"worker speaks v{PROTOCOL_VERSION}",
        )
        return 2
    heartbeat_interval = None
    if isinstance(payload, dict):
        raw = payload.get("heartbeat")
        if isinstance(raw, (int, float)) and raw > 0:
            heartbeat_interval = float(raw)
    write_lock = threading.Lock()
    write_frame(
        stdout,
        HELLO,
        {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "python": platform.python_version(),
            "host": platform.node(),
            "heartbeat": heartbeat_interval,
        },
    )
    heartbeat = None
    if heartbeat_interval is not None:
        heartbeat = _Heartbeat(stdout, write_lock, heartbeat_interval)
        heartbeat.start()

    def send(kind: str, payload) -> None:
        with write_lock:
            write_frame(stdout, kind, payload)

    traces: dict[str, object] = {}
    try:
        while True:
            try:
                frame = read_frame(stdin, allow_eof=True)
            except ProtocolError as exc:
                send(ERROR, f"bad frame: {exc}")
                return 2
            if frame is None:  # driver closed the connection
                return 0
            kind, payload = frame
            if kind == TRACES:
                traces.update(payload)
            elif kind == CHUNK:
                tag, chunk = payload
                send(RESULT, (tag, run_chunk_items(chunk, traces)))
            elif kind == PING:
                send(PONG, {"token": payload, "protocol": PROTOCOL_VERSION,
                            "pid": os.getpid()})
            elif kind == SHUTDOWN:
                return 0
            else:
                send(ERROR, f"unexpected frame kind {kind!r}")
                return 2
    finally:
        if heartbeat is not None:
            heartbeat.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.parse_args(argv)
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # The frame stream owns the real stdout; reroute stray prints to stderr.
    sys.stdout = sys.stderr
    return serve(stdin, stdout)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
