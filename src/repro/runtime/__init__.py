"""Parallel simulation job engine with a persistent result store.

Every experiment in the reproduction reduces to thousands of independent
(microarchitecture x bug x probe) simulation jobs.  This package provides
the runtime that makes broad sweeps tractable:

* :class:`SimulationJob` — a pure-data, picklable job spec, with
  content-hash identity (:meth:`SimulationJob.key`),
* :class:`JobEngine` — shards job batches across worker processes (or runs
  them inline for ``jobs=1`` / ``REPRO_JOBS``), with chunked dispatch,
  deterministic per-job seeds, progress callbacks and uniform worker-failure
  propagation (:class:`JobFailedError`),
* :class:`ResultStore` — persists counter series to disk keyed by the
  content hash of (config, bug, trace, step), so repeated experiment runs
  and CI never re-simulate.

The simulation caches in :mod:`repro.detect.dataset` batch their misses
through this engine, and ``repro.experiments.runner --jobs N --store PATH``
threads it under all figure/table experiments.
"""

from .engine import (
    JOBS_ENV_VAR,
    EngineStats,
    JobEngine,
    JobFailedError,
    default_jobs,
)
from .job import (
    CORE_STUDY,
    MEMORY_STUDY,
    SimulationJob,
    TraceRegistry,
    bug_fingerprint,
    config_fingerprint,
    trace_digest,
)
from .store import ResultStore, StoredResult, StoreStats

__all__ = [
    "CORE_STUDY",
    "MEMORY_STUDY",
    "JOBS_ENV_VAR",
    "EngineStats",
    "JobEngine",
    "JobFailedError",
    "ResultStore",
    "SimulationJob",
    "StoreStats",
    "StoredResult",
    "TraceRegistry",
    "bug_fingerprint",
    "config_fingerprint",
    "default_jobs",
    "trace_digest",
]
