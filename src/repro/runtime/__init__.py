"""Simulation job engine with pluggable execution backends and a result store.

Every experiment in the reproduction reduces to thousands of independent
(microarchitecture x bug x probe) simulation jobs.  This package provides
the runtime that makes broad sweeps tractable:

* :class:`SimulationJob` — a pure-data, picklable job spec, with
  content-hash identity (:meth:`SimulationJob.key`),
* :class:`JobEngine` — plans job batches into cost-balanced chunks and runs
  them on a pluggable :class:`ExecutionBackend`, selected by spec string:
  ``serial`` (inline), ``local:N`` (persistent process pool),
  ``subprocess:N`` (local ``repro-worker`` processes over a stdio frame
  protocol) or ``ssh://hostA:4,hostB:4`` (the same protocol over ssh) —
  with chunked dispatch, deterministic per-job seeds, progress callbacks,
  incremental result persistence and uniform worker-failure propagation
  (:class:`JobFailedError`).  ``jobs=N`` / ``REPRO_JOBS`` remain sugar for
  the local backend; ``REPRO_BACKEND`` names a default spec,
* :class:`ResultStore` — persists counter series to disk keyed by the
  content hash of (config, bug, trace, step), so repeated experiment runs
  and CI never re-simulate; mergeable across runs
  (:meth:`ResultStore.merge_from`, ``repro-store merge``).

The simulation caches in :mod:`repro.detect.dataset` batch their misses
through this engine, and ``repro.experiments.runner --backend SPEC --store
PATH`` threads it under all figure/table experiments.  The backend API and
the worker wire protocol are documented in ``docs/RUNTIME.md``.
"""

from .backends import (
    BACKEND_ENV_VAR,
    BackendError,
    ExecutionBackend,
    LocalBackend,
    ProtocolError,
    RemoteBackend,
    SerialBackend,
    parse_backend,
    spec_for_jobs,
)
from .engine import (
    JOBS_ENV_VAR,
    JobEngine,
    JobFailedError,
    default_jobs,
)
from .job import (
    CORE_STUDY,
    MEMORY_STUDY,
    SimulationJob,
    TraceRegistry,
    bug_fingerprint,
    config_fingerprint,
    trace_digest,
)
from .stats import EngineStats
from .store import ResultStore, StoredResult, StoreStats

__all__ = [
    "BACKEND_ENV_VAR",
    "CORE_STUDY",
    "MEMORY_STUDY",
    "JOBS_ENV_VAR",
    "BackendError",
    "EngineStats",
    "ExecutionBackend",
    "JobEngine",
    "JobFailedError",
    "LocalBackend",
    "ProtocolError",
    "RemoteBackend",
    "ResultStore",
    "SerialBackend",
    "SimulationJob",
    "StoreStats",
    "StoredResult",
    "TraceRegistry",
    "bug_fingerprint",
    "config_fingerprint",
    "default_jobs",
    "parse_backend",
    "spec_for_jobs",
    "trace_digest",
]
