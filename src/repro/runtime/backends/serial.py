"""Inline execution backend: everything runs in the calling process.

The default backend (``backend="serial"``, also what ``jobs=1`` maps to) —
no pool, no pickling, used by tests, CI smoke runs and one-core machines.
The engine sees ``inline=True`` and executes pending jobs one at a time for
per-job progress and per-job result persistence; the chunk protocol is
implemented anyway (executing at ``submit`` time) so the serial backend can
stand in for a parallel one in conformance tests.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Set

from ..execution import run_chunk_items
from .base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Runs chunks inline in the calling process."""

    spec = "serial"
    slots = 1
    inline = True
    persistent = False

    def __init__(self) -> None:
        super().__init__()
        self._traces: dict[str, object] = {}
        self._outcomes: list[tuple] = []

    def start(self, traces: Mapping) -> None:
        self._traces.update(traces)

    def known_trace_ids(self) -> Set[str]:
        # Everything is local to this process: nothing ever needs shipping.
        return set(self._traces)

    def submit(self, tag: int, chunk: list, trace_delta: Mapping) -> None:
        if trace_delta:
            self._traces.update(trace_delta)
        self._outcomes.append((tag, run_chunk_items(chunk, self._traces)))

    def drain(self) -> Iterator[tuple]:
        while self._outcomes:
            yield self._outcomes.pop(0)

    def cancel_pending(self) -> None:
        self._outcomes.clear()

    def close(self) -> None:
        self._outcomes.clear()
