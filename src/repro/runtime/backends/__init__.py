"""Pluggable execution backends for :class:`~repro.runtime.engine.JobEngine`.

A backend is selected by a **spec string** (or constructed directly):

==========================  ==================================================
Spec                        Meaning
==========================  ==================================================
``serial``                  Inline in the calling process (default).
``local`` / ``local:N``     Persistent local process pool, N workers
                            (default: CPU count).
``subprocess`` /            N local ``repro-worker`` processes over the stdio
``subprocess:N``            frame protocol (default N=2) — the remote path,
                            fully exercisable without a network.
``cluster[:N][,opts]``      Elastic scheduler-managed ``repro-worker`` pool
                            (:mod:`repro.cluster`): heartbeat liveness,
                            respawn with backoff, chunk requeue, pluggable
                            dispatch policies (``policy=fifo|ljf|edd|
                            suspend``).
``ssh://host:N,host2:M``    ``repro-worker`` over ``ssh`` on each host, N/M
                            worker processes per host (default 1).
==========================  ==================================================

``JobEngine(jobs=N)`` remains sugar: ``jobs=1`` maps to ``serial`` and
``jobs=N`` to ``local:N``.  The ``REPRO_BACKEND`` environment variable
(:data:`~repro.runtime.backends.base.BACKEND_ENV_VAR`) supplies the default
spec when neither ``backend=`` nor ``jobs=`` is given.  The spec grammar and
the worker wire protocol are documented in ``docs/RUNTIME.md``.
"""

from __future__ import annotations

import os
import warnings

from .base import BACKEND_ENV_VAR, BackendError, ExecutionBackend
from .local import LocalBackend
from ..framing import PROTOCOL_VERSION
from .remote import (
    ProtocolError,
    RemoteBackend,
    local_worker_command,
    ssh_worker_command,
)
from .serial import SerialBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "PROTOCOL_VERSION",
    "BackendError",
    "ExecutionBackend",
    "LocalBackend",
    "ProtocolError",
    "RemoteBackend",
    "SerialBackend",
    "default_backend_spec",
    "parse_backend",
    "spec_for_jobs",
]

#: Default worker count for a bare ``subprocess`` spec.
DEFAULT_SUBPROCESS_WORKERS = 2

_GRAMMAR = (
    "expected 'serial', 'local[:N]', 'subprocess[:N]', "
    "'cluster[:N][,policy=P]' or 'ssh://host[:N],host2[:N]'"
)


def spec_for_jobs(jobs: int) -> str:
    """The spec string ``jobs=N`` is sugar for."""
    jobs = max(1, int(jobs))
    return "serial" if jobs == 1 else f"local:{jobs}"


def _count(spec: str, body: str, default: int) -> int:
    if not body:
        return default
    try:
        count = int(body)
    except ValueError:
        raise ValueError(f"bad backend spec {spec!r}: {body!r} is not a count") from None
    if count < 1:
        raise ValueError(f"bad backend spec {spec!r}: count must be >= 1")
    return count


def _parse_hosts(spec: str, body: str) -> list[tuple[str, int]]:
    hosts: list[tuple[str, int]] = []
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, slots = part.partition(":")
        if not host:
            raise ValueError(f"bad backend spec {spec!r}: empty host in {part!r}")
        hosts.append((host, _count(spec, slots, default=1)))
    if not hosts:
        raise ValueError(f"bad backend spec {spec!r}: no hosts given")
    return hosts


def parse_backend(spec: "str | ExecutionBackend") -> ExecutionBackend:
    """Build an :class:`ExecutionBackend` from a spec string.

    An already-constructed backend passes through unchanged, so callers can
    hand :class:`JobEngine` a custom backend instance directly.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"backend spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if text == "serial":
        return SerialBackend()
    # Sanitized native builds are serial-only: ASan shadow memory per pool
    # worker is wasteful and interleaved sanitizer reports are unreadable.
    from ...coresim.native.build import sanitize_mode

    if sanitize_mode() is not None:
        warnings.warn(
            f"REPRO_NATIVE_SANITIZE is set: forcing the serial backend "
            f"(requested {text!r})",
            RuntimeWarning,
            stacklevel=2,
        )
        return SerialBackend()
    if text == "local" or text.startswith("local:"):
        _, _, body = text.partition(":")
        return LocalBackend(_count(text, body, default=os.cpu_count() or 1))
    if text == "cluster" or text.startswith("cluster:"):
        # Imported lazily: repro.cluster builds on the runtime (engine cost
        # model, framing, this very module), so a top-level import here
        # would be circular.
        from ...cluster.backend import parse_cluster_spec

        return parse_cluster_spec(text)
    if text == "subprocess" or text.startswith("subprocess:"):
        _, _, body = text.partition(":")
        workers = _count(text, body, default=DEFAULT_SUBPROCESS_WORKERS)
        return RemoteBackend(
            [local_worker_command() for _ in range(workers)],
            spec=f"subprocess:{workers}",
        )
    if text.startswith("ssh://"):
        hosts = _parse_hosts(text, text[len("ssh://"):])
        commands = [
            ssh_worker_command(host) for host, slots in hosts for _ in range(slots)
        ]
        canonical = ",".join(f"{host}:{slots}" for host, slots in hosts)
        return RemoteBackend(commands, spec=f"ssh://{canonical}")
    raise ValueError(f"unknown backend spec {spec!r}; {_GRAMMAR}")


def default_backend_spec() -> "str | None":
    """The spec named by ``REPRO_BACKEND``, or ``None`` when unset/empty."""
    value = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return value or None
