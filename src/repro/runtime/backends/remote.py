"""Remote execution backend: one wire protocol, two transports.

A remote worker is any process speaking the ``repro-worker`` frame protocol
over its stdio (see :mod:`repro.runtime.worker`).  The backend spawns one
worker process per slot and drives each over a private pipe pair:

* ``subprocess:N`` — N workers spawned locally as
  ``python -m repro.runtime.worker``.  Functionally a slower
  :class:`~repro.runtime.backends.local.LocalBackend`, but it exercises the
  *entire* remote path (framing, handshake, per-worker trace shipping) with
  no network, which makes it fully CI-testable.
* ``ssh://hostA:4,hostB:4`` — the same protocol over ``ssh host
  repro-worker``; ``repro`` must be installed (or importable) on each host.

Wire protocol (version-checked at handshake; framing and handshake live in
the shared :mod:`repro.runtime.framing` module, which the ``repro-serve``
detection daemon reuses over sockets):

* Every frame is an 8-byte big-endian length followed by a pickled
  ``(kind, payload)`` tuple.  Oversized or truncated frames raise
  :class:`ProtocolError`.
* Handshake: the driver sends ``("hello", {"protocol": V})``; the worker
  replies ``("hello", {"protocol": V, "pid": ..., "python": ...})`` or
  ``("error", message)`` and exits on a version mismatch.  Both sides
  verify the version.
* Traces ship **once per worker**, keyed by content digest: before a chunk
  is sent to a worker, the digests the chunk references that this worker
  has not yet received travel in a ``("traces", {digest: trace})`` frame.
  The backend therefore reports every batch trace as "known" to the engine
  (empty per-chunk engine deltas) and handles distribution itself.
* ``("chunk", (tag, [(index, job), ...]))`` requests execution;
  ``("result", (tag, outcome))`` answers it, where *outcome* is a
  :data:`~repro.runtime.execution.ChunkOutcome`.  ``("shutdown", None)``
  ends the session.

Job-level exceptions travel inside outcomes as
:class:`~repro.runtime.execution.ChunkFailure` values; anything that breaks
the connection itself (worker death, truncated stream) surfaces as a
:class:`~repro.runtime.backends.base.BackendError` from ``drain`` and the
engine responds by closing the backend — the next batch starts fresh
workers, and results persisted so far stay in the
:class:`~repro.runtime.store.ResultStore`.
"""

from __future__ import annotations

import queue
import subprocess
import sys
import threading
import weakref
from typing import Iterator, Mapping, Sequence, Set

# Framing, frame kinds and the handshake check are shared runtime-wide (the
# repro-serve daemon speaks the same format over sockets); re-exported here
# because this module is their historic home.
from ..framing import (  # noqa: F401  (re-exported API)
    CHUNK,
    ERROR,
    HELLO,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    RESULT,
    SHUTDOWN,
    TRACES,
    ProtocolError,
    check_hello,
    read_frame,
    write_frame,
)
from .base import BackendError, ExecutionBackend

# -- worker commands ---------------------------------------------------------


def local_worker_command() -> list[str]:
    """Spawn a worker under the driver's own interpreter (``subprocess:``)."""
    return [sys.executable, "-m", "repro.runtime.worker"]


def ssh_worker_command(host: str) -> list[str]:
    """Spawn a worker on *host* via the installed ``repro-worker`` script."""
    return ["ssh", "-o", "BatchMode=yes", host, "repro-worker"]


class WorkerConnection:
    """One worker process plus the frame streams to drive it."""

    def __init__(self, command: Sequence[str], label: str) -> None:
        self.command = list(command)
        self.label = label
        self.process: subprocess.Popen | None = None
        #: Content digests this worker has already received.
        self.shipped: set[str] = set()

    def start(self) -> None:
        """Spawn the worker and complete the versioned handshake."""
        self.shipped = set()
        self.process = subprocess.Popen(
            self.command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            # stderr inherited: worker tracebacks reach the driver's console.
        )
        try:
            write_frame(self.process.stdin, HELLO, {"protocol": PROTOCOL_VERSION})
            frame = read_frame(self.process.stdout)
            kind, payload = frame
            if kind == ERROR:
                raise ProtocolError(f"worker {self.label} rejected handshake: {payload}")
            if kind != HELLO:
                raise ProtocolError(
                    f"worker {self.label} sent {kind!r} instead of a handshake"
                )
            check_hello(payload, side=f"worker {self.label}")
        except Exception:
            self.close()
            raise

    def run_chunk(self, tag: int, chunk: list, trace_table: Mapping):
        """Ship missing traces, dispatch *chunk*, block for its outcome.

        Returns ``(outcome, traces_shipped)``.
        """
        process = self.process
        if process is None or process.poll() is not None:
            raise ProtocolError(f"worker {self.label} is gone")
        missing = {job.trace_id for _, job in chunk} - self.shipped
        if missing:
            write_frame(
                process.stdin, TRACES, {tid: trace_table[tid] for tid in missing}
            )
            self.shipped |= missing
        write_frame(process.stdin, CHUNK, (tag, chunk))
        frame = read_frame(process.stdout)
        kind, payload = frame
        if kind == ERROR:
            raise ProtocolError(f"worker {self.label} failed: {payload}")
        if kind != RESULT:
            raise ProtocolError(f"worker {self.label} sent unexpected {kind!r} frame")
        result_tag, outcome = payload
        if result_tag != tag:
            raise ProtocolError(
                f"worker {self.label} answered chunk {result_tag} (expected {tag})"
            )
        return outcome, len(missing)

    def close(self) -> None:
        """Ask the worker to shut down, then make sure it is gone."""
        process, self.process = self.process, None
        self.shipped = set()
        if process is None:
            return
        try:
            if process.poll() is None and process.stdin and not process.stdin.closed:
                write_frame(process.stdin, SHUTDOWN, None)
                process.stdin.close()
        except (OSError, ValueError):  # already dead / pipe gone
            pass
        try:
            process.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
            process.kill()
            process.wait()


class _TransportFailure:
    """Internal marker carrying a connection-level error into ``drain``."""

    def __init__(self, message: str) -> None:
        self.message = message


_STOP = object()


def _serve_connection(backend_ref, connection, task_queue, results, traces, stats, lock):
    """Serving loop for one worker connection (runs in a daemon thread).

    Deliberately a module-level function over a *weak* backend reference:
    a thread blocked on the task queue must not pin the backend alive, so
    a dropped engine can be garbage-collected and its finalizer can stop
    the threads and reap the worker processes.
    """
    while True:
        item = task_queue.get()
        if item is _STOP:
            return
        batch, tag, chunk = item
        backend = backend_ref()
        if backend is None or batch != backend._batch:
            del backend  # cancelled (or owner gone): drop without running
            continue
        del backend  # no strong reference while blocked on the worker
        try:
            outcome, shipped = connection.run_chunk(tag, chunk, traces)
        except Exception as exc:
            results.put((batch, tag, _TransportFailure(f"{connection.label}: {exc}")))
            return  # connection is unusable; thread retires
        with lock:
            stats.traces_shipped += shipped
        results.put((batch, tag, outcome))


def _finalize_workers(task_queue, connections, thread_count) -> None:
    """GC fallback: stop serving threads and reap worker processes."""
    for _ in range(thread_count):
        task_queue.put(_STOP)
    for connection in connections:
        connection.close()


class RemoteBackend(ExecutionBackend):
    """Drives N worker connections, one serving thread per connection."""

    remote = True

    def __init__(self, commands: Sequence[Sequence[str]], spec: str) -> None:
        if not commands:
            raise ValueError("remote backend needs at least one worker command")
        super().__init__()
        self.spec = spec
        self.slots = len(commands)
        self._connections = [
            WorkerConnection(command, label=f"{spec}#{i}")
            for i, command in enumerate(commands)
        ]
        self._threads: list[threading.Thread] = []
        self._queue: "queue.Queue" = queue.Queue()
        self._results: "queue.Queue" = queue.Queue()
        self._traces: dict[str, object] = {}
        self._batch = 0
        self._outstanding = 0
        self._lock = threading.Lock()
        self._live = False
        self._finalizer: weakref.finalize | None = None

    # -- lifecycle -------------------------------------------------------------

    def _healthy(self) -> bool:
        """Every serving thread alive and every worker process running."""
        return all(thread.is_alive() for thread in self._threads) and all(
            c.process is not None and c.process.poll() is None
            for c in self._connections
        )

    def start(self, traces: Mapping) -> None:
        self._traces.update(traces)
        self._batch += 1
        self._outstanding = 0
        if self._live and not self._healthy():
            # A worker died (or its thread retired) while its failure report
            # was cancelled away with a previous batch — e.g. a transport
            # failure racing a JobFailedError.  Reusing the remnant would
            # silently run on reduced capacity; rebuild the worker set.
            self.close()
        if self._live:
            self.stats.pool_reuses += 1
            return
        started: list[WorkerConnection] = []
        try:
            for connection in self._connections:
                connection.start()
                started.append(connection)
        except Exception:
            for connection in started:
                connection.close()
            raise
        self._queue = queue.Queue()
        self._results = queue.Queue()
        backend_ref = weakref.ref(self)
        self._threads = [
            threading.Thread(
                target=_serve_connection,
                args=(backend_ref, connection, self._queue, self._results,
                      self._traces, self.stats, self._lock),
                daemon=True,
                name=f"repro-backend-{connection.label}",
            )
            for connection in self._connections
        ]
        for thread in self._threads:
            thread.start()
        self._finalizer = weakref.finalize(
            self, _finalize_workers,
            self._queue, list(self._connections), len(self._threads),
        )
        self._live = True
        self.stats.pool_creates += 1

    def close(self) -> None:
        self._batch += 1  # invalidate everything in flight
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._drain_queue(self._queue)
        self._drain_queue(self._results)
        for _ in self._threads:
            self._queue.put(_STOP)
        for connection in self._connections:
            connection.close()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []
        self._live = False

    @staticmethod
    def _drain_queue(q: "queue.Queue") -> None:
        while True:
            try:
                q.get_nowait()
            except queue.Empty:
                return

    # -- chunk protocol --------------------------------------------------------

    def known_trace_ids(self) -> Set[str]:
        # Trace distribution is per-worker and handled here (shipped once
        # per worker by digest), so the engine never attaches deltas.
        return set(self._traces)

    def submit(self, tag: int, chunk: list, trace_delta: Mapping) -> None:
        if not self._live:
            raise RuntimeError("submit() before start()")
        if trace_delta:  # pragma: no cover - engine never computes one here
            self._traces.update(trace_delta)
        self._outstanding += 1
        self._queue.put((self._batch, tag, chunk))

    def drain(self) -> Iterator[tuple]:
        while self._outstanding > 0:
            batch, tag, outcome = self._results.get()
            if isinstance(outcome, _TransportFailure):
                # Transport failures describe the worker set, not a batch:
                # even one left over from a cancelled batch means a thread
                # retired, and waiting for it to serve this batch's queued
                # chunks would hang forever.  Fail fast; the engine closes
                # the backend and the next start() rebuilds the workers.
                raise BackendError(outcome.message)
            if batch != self._batch:
                continue  # leftover result from a cancelled batch
            self._outstanding -= 1
            yield tag, outcome

    def cancel_pending(self) -> None:
        # Invalidate the batch: queued chunks are dropped by serving threads,
        # in-flight results are dropped by the next drain.  Workers stay up.
        self._batch += 1
        self._outstanding = 0
        self._drain_queue(self._queue)
