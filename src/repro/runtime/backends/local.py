"""Local process-pool backend: a persistent ``ProcessPoolExecutor``.

This is the seed engine's parallel machinery, behavior-preserved, behind the
:class:`~repro.runtime.backends.base.ExecutionBackend` protocol:

* **Persistent worker pool.**  The executor is created on first use and
  reused across ``run`` batches, so spawn-platform import costs and trace
  shipping are paid once per backend, not once per batch.  Worker processes
  keep a cumulative content-addressed trace table; traces a batch introduces
  after pool creation travel as per-chunk deltas (workers ignore digests
  they already hold).

* **Delta rebase.**  Once the cumulative delta payload this backend has
  shipped outweighs the pool-initializer payload, the next ``start`` tears
  the pool down and recreates it with every trace the backend has seen, so
  long-lived engines converge back to shipping each trace once per worker
  (``pool_creates`` counts rebases too).
"""

from __future__ import annotations

import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Iterator, Mapping, Set

from ..execution import run_chunk_items
from .base import ExecutionBackend

# -- worker-side machinery ---------------------------------------------------
#
# Each worker process keeps a cumulative content-addressed trace table.  The
# pool initializer installs the traces known at pool-creation time; chunks
# carry {digest: trace} deltas for traces first referenced by a later batch,
# which workers merge in (digests they already hold are simply overwritten
# with identical content, so the merge is idempotent).

_WORKER_TRACES: dict = {}


def _init_worker(traces: Mapping) -> None:
    global _WORKER_TRACES
    _WORKER_TRACES = dict(traces)


def _run_chunk(payload: tuple) -> tuple:
    chunk, delta = payload
    if delta:
        _WORKER_TRACES.update(delta)
    return run_chunk_items(chunk, _WORKER_TRACES)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=True, cancel_futures=True)


class LocalBackend(ExecutionBackend):
    """Persistent local process pool with per-chunk trace deltas."""

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.slots = max(1, int(workers))
        self.spec = f"local:{self.slots}"
        self._pool: ProcessPoolExecutor | None = None
        self._pool_trace_ids: set[str] = set()
        self._pool_finalizer: weakref.finalize | None = None
        self._futures: dict[Future, int] = {}
        # Rebase bookkeeping: cumulative traces seen by this backend, the
        # instruction cost shipped via pool initialisation, and the delta
        # cost shipped since — when deltas outweigh the initializer payload,
        # the pool is rebuilt with the merged table so recurring traces stop
        # travelling with every chunk.
        self._all_traces: dict[str, object] = {}
        self._initializer_cost = 0
        self._delta_cost_since_rebase = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, traces: Mapping) -> None:
        """Ensure the persistent pool is live, creating or rebasing it."""
        self._all_traces.update(traces)
        if self._pool is not None and self._delta_cost_since_rebase > max(
            1, self._initializer_cost
        ):
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.slots,
                initializer=_init_worker,
                initargs=(dict(self._all_traces),),
            )
            self._pool_trace_ids = set(self._all_traces)
            self._initializer_cost = sum(
                len(trace) for trace in self._all_traces.values()
            )
            self._delta_cost_since_rebase = 0
            self.stats.pool_creates += 1
            self.stats.traces_shipped += len(self._all_traces)
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        else:
            self.stats.pool_reuses += 1

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self.cancel_pending()
        if self._pool is not None:
            pool, self._pool = self._pool, None
            self._pool_trace_ids = set()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            _shutdown_pool(pool)

    # -- chunk protocol --------------------------------------------------------

    def known_trace_ids(self) -> Set[str]:
        return self._pool_trace_ids

    def submit(self, tag: int, chunk: list, trace_delta: Mapping) -> None:
        if self._pool is None:
            raise RuntimeError("submit() before start()")
        self._delta_cost_since_rebase += sum(
            len(trace) for trace in trace_delta.values()
        )
        future = self._pool.submit(_run_chunk, (chunk, dict(trace_delta)))
        self._futures[future] = tag

    def drain(self) -> Iterator[tuple]:
        """Yield outcomes completion-first.

        A worker-process death surfaces here as the pool's
        ``BrokenProcessPool`` from ``future.result()`` — a transport-level
        failure the engine answers by closing this backend, so the next
        batch starts from a clean pool.
        """
        unfinished = set(self._futures)
        while unfinished:
            finished, unfinished = wait(unfinished, return_when=FIRST_COMPLETED)
            for future in finished:
                tag = self._futures.pop(future)
                yield tag, future.result()

    def cancel_pending(self) -> None:
        for future in self._futures:
            future.cancel()
        self._futures.clear()
