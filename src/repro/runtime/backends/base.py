"""The :class:`ExecutionBackend` protocol: how chunk execution plugs into
:class:`~repro.runtime.engine.JobEngine`.

The engine keeps everything backend-independent — store consultation,
batch-internal dedup, LJF/uniform chunk planning, stats, progress reporting
and :class:`~repro.runtime.engine.JobFailedError` semantics — and delegates
chunk *execution* and trace *distribution* to a backend:

1. ``start(traces)`` once per parallel batch, with every trace the batch
   references; the backend makes its worker set live (spawning, reusing or
   rebasing it as it sees fit) and absorbs the traces into its distribution
   plan.
2. ``submit(tag, chunk, trace_delta)`` for each planned chunk.
   *trace_delta* holds the traces the chunk references that
   ``known_trace_ids()`` did not include after ``start`` — i.e. what the
   engine believes the backend's workers still need pushed alongside the
   chunk.  Backends that distribute traces themselves (the remote backend
   ships each trace once per worker, keyed by content digest) report every
   trace as known and always receive empty deltas.
3. ``drain()`` yields ``(tag, ChunkOutcome)`` pairs as chunks complete, in
   completion order.  A transport-level problem (dead worker, lost
   connection) raises :class:`BackendError` — job-level exceptions travel
   *inside* the outcome as a :class:`~repro.runtime.execution.ChunkFailure`.
4. ``cancel_pending()`` after a job failure: forget chunks that have not
   started, keep the workers (the failure was the job's fault, not the
   worker's).  ``close()`` after a transport failure or on engine shutdown:
   tear the worker set down; a later ``start`` must bring up a fresh one.

Capability flags describe the backend to the engine: ``inline`` backends
execute jobs in the calling process (the engine then bypasses chunking for
per-job progress and persistence granularity), ``persistent`` backends keep
workers alive across batches, ``remote`` backends cross a process or host
boundary and therefore need every trace shipped by value.
"""

from __future__ import annotations

import abc
from typing import Iterator, Mapping, Set

from ..stats import EngineStats

#: Environment variable naming the default backend spec string
#: (e.g. ``serial``, ``local:8``, ``subprocess:4``, ``ssh://hostA:4,hostB:4``).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendError(RuntimeError):
    """The execution backend itself failed (worker death, lost connection).

    Distinct from :class:`~repro.runtime.engine.JobFailedError`: a job
    failure means the *work* was bad and the workers are fine; a backend
    error means the workers are gone and the engine must tear the backend
    down before the next batch.
    """


class ExecutionBackend(abc.ABC):
    """Executes planned job chunks on some worker set (see module docstring)."""

    #: Canonical spec string (``"serial"``, ``"local:4"``, ...), for reports.
    spec: str = "?"
    #: Concurrent worker slots; the engine sizes chunk plans against this.
    slots: int = 1
    #: Executes jobs in the calling process (no pickling, per-job progress).
    inline: bool = False
    #: Workers survive across ``run()`` batches until ``close()``.
    persistent: bool = True
    #: Crosses a process/host boundary: traces must ship by value.
    remote: bool = False

    def __init__(self) -> None:
        # The engine rebinds this to its own stats object so backend
        # lifecycle counters (pool_creates/pool_reuses/traces_shipped) land
        # in the same place as the engine's own counters.
        self.stats = EngineStats()

    @abc.abstractmethod
    def start(self, traces: Mapping) -> None:
        """Make the worker set live and register the batch's trace table."""

    @abc.abstractmethod
    def known_trace_ids(self) -> Set[str]:
        """Digests the engine may assume workers hold (post-``start``)."""

    @abc.abstractmethod
    def submit(self, tag: int, chunk: list, trace_delta: Mapping) -> None:
        """Queue one chunk for execution, shipping *trace_delta* with it."""

    @abc.abstractmethod
    def drain(self) -> Iterator[tuple]:
        """Yield ``(tag, ChunkOutcome)`` as submitted chunks complete."""

    @abc.abstractmethod
    def cancel_pending(self) -> None:
        """Drop not-yet-started chunks; keep the worker set for reuse."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down the worker set (idempotent); ``start`` revives it."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec}>"
