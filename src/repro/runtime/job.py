"""Pure-data simulation job specs and content-addressed job identity.

A :class:`SimulationJob` describes one simulator invocation — which study
(core pipeline or memory hierarchy), which design, which injected bug, which
probe trace and which sampling step — without holding the trace itself.
Traces are referenced by a content digest (``trace_id``) and shipped to
worker processes once per batch, so job objects stay small and picklable.

The :func:`job_key` content hash is the identity used by the persistent
:class:`~repro.runtime.store.ResultStore`: two jobs with identical
(config, bug, trace, step) content share a key even across interpreter
sessions, different probe names, or different machines.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..workloads.decoded import DecodedTrace
from ..workloads.isa import MicroOp

#: A trace in any of the forms the runtime accepts: a plain micro-op list or
#: the pre-decoded representation (preferred — it ships to workers as compact
#: column arrays instead of pickled object lists).
TraceLike = "list[MicroOp] | DecodedTrace"

#: Study kinds understood by the engine workers.
CORE_STUDY = "core"
MEMORY_STUDY = "memory"

#: Canonical spelling for "no injected bug" in fingerprints.
BUG_FREE_FINGERPRINT = "bug-free"


def _canonical(value: object) -> object:
    """Reduce *value* to JSON-serialisable primitives, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__name__, fields]
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for job hashing")


def _digest(payload: object) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def config_fingerprint(config) -> str:
    """Content hash of a (frozen dataclass) design configuration."""
    return _digest(_canonical(config))


def bug_fingerprint(bug) -> str:
    """Content hash of an injected bug, or ``"bug-free"`` for ``None``.

    Bugs expose their full parameterisation either through ``.info.params``
    (the :class:`~repro.bugs.base.BugInfo` carried by every concrete bug) or,
    failing that, through their unique ``.name``.
    """
    if bug is None:
        return BUG_FREE_FINGERPRINT
    info = getattr(bug, "info", None)
    if info is not None:
        payload = [type(bug).__name__, info.bug_type, _canonical(info.params)]
    else:
        payload = [type(bug).__name__, getattr(bug, "name", repr(bug))]
    return _digest(payload)


def trace_digest(trace: "Iterable[MicroOp] | DecodedTrace") -> str:
    """Content hash of a dynamic instruction trace.

    A :class:`~repro.workloads.decoded.DecodedTrace` returns its cached
    digest (identical to hashing its micro-op list) without re-hashing.
    """
    if isinstance(trace, DecodedTrace):
        return trace.digest
    hasher = hashlib.blake2b(digest_size=16)
    for uop in trace:
        hasher.update(
            (
                f"{uop.opcode.value},{uop.srcs},{uop.dest},{uop.pc},"
                f"{uop.address},{uop.taken},{uop.target};"
            ).encode("ascii")
        )
    return hasher.hexdigest()


@dataclass(frozen=True)
class SimulationJob:
    """One independent simulator invocation, as pure picklable data.

    Attributes
    ----------
    study:
        ``"core"`` (O3 pipeline, samples by cycles) or ``"memory"``
        (cache-hierarchy simulator, samples by instructions).
    config:
        The design to simulate (:class:`~repro.uarch.config.MicroarchConfig`
        or :class:`~repro.uarch.config.MemoryHierarchyConfig`).
    bug:
        Injected bug model, or ``None`` for the bug-free design.
    trace_id:
        Content digest of the probe trace (see :func:`trace_digest`); the
        trace itself travels to workers once per batch, keyed by this id.
    step:
        Sampling step: cycles per time step for the core study,
        instructions per time step for the memory study.
    """

    study: str
    config: object
    bug: object | None
    trace_id: str
    step: int

    def __post_init__(self) -> None:
        if self.study not in (CORE_STUDY, MEMORY_STUDY):
            raise ValueError(f"unknown study kind {self.study!r}")
        if self.step <= 0:
            raise ValueError("step must be positive")

    def key(self) -> str:
        """Stable content hash identifying this job's result."""
        return _digest(
            [
                self.study,
                config_fingerprint(self.config),
                bug_fingerprint(self.bug),
                self.trace_id,
                self.step,
            ]
        )

    def seed(self) -> int:
        """Deterministic per-job seed derived from the job identity."""
        return int.from_bytes(bytes.fromhex(self.key()[:16]), "big")

    def describe(self) -> str:
        """Short human-readable identity for logs and error messages."""
        bug_name = getattr(self.bug, "name", BUG_FREE_FINGERPRINT) if self.bug else BUG_FREE_FINGERPRINT
        config_name = getattr(self.config, "name", "?")
        return (
            f"{self.study}:{config_name}:{bug_name}:"
            f"{self.trace_id[:8]}@{self.step}"
        )


class TraceRegistry:
    """Content-addressed table of traces shared with worker processes.

    Digesting a multi-thousand-instruction trace is not free, so the digest
    of each distinct trace object is memoised by object identity.  Traces may
    be registered either as plain micro-op lists or as
    :class:`~repro.workloads.decoded.DecodedTrace` objects; the decoded form
    is what the engine prefers to ship to workers (compact column arrays,
    pre-decoded scalars on arrival).
    """

    def __init__(self) -> None:
        self._traces: dict[str, object] = {}
        # id -> (trace, digest): the strong reference to the trace pins its
        # object id, so a garbage-collected trace can never alias a stale
        # memo entry onto a recycled id.
        self._by_object: dict[int, tuple[object, str]] = {}

    def register(self, trace) -> str:
        """Register *trace* and return its content digest."""
        object_id = id(trace)
        known = self._by_object.get(object_id)
        if known is not None:
            return known[1]
        digest = trace_digest(trace)
        self._by_object[object_id] = (trace, digest)
        # A decoded trace supersedes a previously registered plain list of
        # the same content (same digest, cheaper to ship).
        existing = self._traces.get(digest)
        if existing is None or (
            isinstance(trace, DecodedTrace) and not isinstance(existing, DecodedTrace)
        ):
            self._traces[digest] = trace
        return digest

    @property
    def traces(self) -> Mapping[str, object]:
        """The ``{trace_id: trace}`` table to hand to a :class:`JobEngine`."""
        return self._traces

    def __len__(self) -> int:
        return len(self._traces)
