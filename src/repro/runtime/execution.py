"""Job execution shared by every backend: inline, pool worker, remote worker.

One :class:`~repro.runtime.job.SimulationJob` always executes the same way —
deterministic RNG seeding from the job identity, dispatch on the study kind,
RNG state restored afterwards — no matter which
:class:`~repro.runtime.backends.ExecutionBackend` is driving it.  This module
is the single implementation all of them call, so serial, local-pool and
remote execution cannot drift apart.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..coresim.simulator import simulate_trace
from ..memsim.simulator import simulate_memory_trace
from .job import CORE_STUDY, MEMORY_STUDY, SimulationJob
from .store import StoredResult


def execute_job(job: SimulationJob, trace) -> StoredResult:
    """Run one job to completion on *trace* (in-process or in a worker)."""
    # The simulators are deterministic, but seed the global RNGs from the
    # job identity anyway so any future stochastic component stays
    # reproducible and identical across serial/parallel execution.
    seed = job.seed()
    python_state = random.getstate()
    numpy_state = np.random.get_state()
    random.seed(seed)
    np.random.seed(seed % 2**32)
    try:
        if job.study == CORE_STUDY:
            return StoredResult.from_core(
                simulate_trace(job.config, trace, bug=job.bug, step_cycles=job.step)
            )
        if job.study == MEMORY_STUDY:
            return StoredResult.from_memory(
                simulate_memory_trace(
                    job.config, trace, bug=job.bug, step_instructions=job.step
                )
            )
        raise ValueError(f"unknown study kind {job.study!r}")
    finally:
        # Leave the caller's RNG streams untouched (matters for the serial
        # in-process path, where experiments draw from these RNGs too).
        random.setstate(python_state)
        np.random.set_state(numpy_state)


@dataclass
class ChunkFailure:
    """Picklable stand-in for an exception raised while executing a job."""

    description: str
    remote_traceback: str


#: What executing one chunk produces: the results of every job that finished
#: (in chunk order) plus the failure that stopped the chunk, if any.  Jobs
#: completed before the failure are preserved so the engine can persist them
#: (resumable batches) even when a later job in the same chunk explodes.
ChunkOutcome = "tuple[list[tuple[int, StoredResult]], ChunkFailure | None]"


def run_chunk_items(
    chunk: Sequence["tuple[int, SimulationJob]"], traces: Mapping
) -> "tuple[list[tuple[int, StoredResult]], ChunkFailure | None]":
    """Execute every ``(index, job)`` in *chunk* against the *traces* table.

    Stops at the first failing job, returning the results completed so far
    together with a :class:`ChunkFailure` carrying the formatted traceback
    (exceptions from user bug models may not survive pickling, so the
    traceback ships as text).
    """
    results: list[tuple[int, StoredResult]] = []
    for index, job in chunk:
        try:
            results.append((index, execute_job(job, traces[job.trace_id])))
        except Exception:
            return results, ChunkFailure(job.describe(), traceback.format_exc())
    return results, None
