"""Job execution shared by every backend: inline, pool worker, remote worker.

One :class:`~repro.runtime.job.SimulationJob` always executes the same way —
deterministic RNG seeding from the job identity, dispatch on the study kind,
RNG state restored afterwards — no matter which
:class:`~repro.runtime.backends.ExecutionBackend` is driving it.  This module
is the single implementation all of them call, so serial, local-pool and
remote execution cannot drift apart.

When a batching kernel is selected (``vector``, ``native`` or ``auto`` —
see :data:`GROUPING_KERNELS`), core-study jobs that share a
(config, bug, step) — the shape every sweep produces — are grouped into
batch units by :func:`plan_batches` and executed through
:func:`~repro.coresim.simulator.simulate_trace_batch`.  Results are
bit-identical to per-job execution (every batched kernel is pinned
counter-identical to the scalar one), so store keys and stored content do
not depend on the kernel or the grouping.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..coresim.simulator import resolve_kernel, simulate_trace, simulate_trace_batch
from ..coresim.vector import supports_vector
from ..memsim.simulator import simulate_memory_trace
from .job import CORE_STUDY, MEMORY_STUDY, SimulationJob, bug_fingerprint, config_fingerprint
from .store import StoredResult


def execute_job(
    job: SimulationJob, trace, kernel: "str | None" = None
) -> StoredResult:
    """Run one job to completion on *trace* (in-process or in a worker).

    *kernel* selects the core-study simulation kernel (``None`` defers to
    ``REPRO_KERNEL``); memory-study jobs ignore it.
    """
    # The simulators are deterministic, but seed the global RNGs from the
    # job identity anyway so any future stochastic component stays
    # reproducible and identical across serial/parallel execution.
    seed = job.seed()
    # repro: allow(global-rng): sanctioned save/seed site pinning the streams
    python_state = random.getstate()
    numpy_state = np.random.get_state()  # repro: allow(global-rng): see above
    random.seed(seed)  # repro: allow(global-rng): see above
    np.random.seed(seed % 2**32)  # repro: allow(global-rng): see above
    try:
        if job.study == CORE_STUDY:
            return StoredResult.from_core(
                simulate_trace(
                    job.config, trace, bug=job.bug, step_cycles=job.step, kernel=kernel
                )
            )
        if job.study == MEMORY_STUDY:
            return StoredResult.from_memory(
                simulate_memory_trace(
                    job.config, trace, bug=job.bug, step_instructions=job.step
                )
            )
        raise ValueError(f"unknown study kind {job.study!r}")
    finally:
        # Leave the caller's RNG streams untouched (matters for the serial
        # in-process path, where experiments draw from these RNGs too).
        # repro: allow(global-rng): sanctioned restore of the saved streams
        random.setstate(python_state)
        np.random.set_state(numpy_state)  # repro: allow(global-rng): see above


@dataclass
class ChunkFailure:
    """Picklable stand-in for an exception raised while executing a job."""

    description: str
    remote_traceback: str


#: What executing one chunk produces: the results of every job that finished
#: (in chunk order) plus the failure that stopped the chunk, if any.  Jobs
#: completed before the failure are preserved so the engine can persist them
#: (resumable batches) even when a later job in the same chunk explodes.
ChunkOutcome = "tuple[list[tuple[int, StoredResult]], ChunkFailure | None]"


#: Kernels whose selection makes :func:`plan_batches` group same-design jobs.
#: ``auto`` is included because it may resolve to the native kernel, which
#: amortises trace marshalling and parameter setup across a batch.
GROUPING_KERNELS = frozenset({"vector", "native", "auto"})


def vector_group_key(job: SimulationJob) -> "tuple | None":
    """Batching key for the batched kernels, or ``None`` if the job can't batch.

    Core-study jobs with a hook-free bug model group by (config, bug, step)
    content; everything else (memory study, hook-overriding bugs) executes
    singly on the scalar path.  Vector and native eligibility are the same
    predicate (``supports_native`` delegates to ``supports_vector``), so one
    key serves every batched kernel.
    """
    if job.study != CORE_STUDY or not supports_vector(job.bug):
        return None
    return (config_fingerprint(job.config), bug_fingerprint(job.bug), job.step)


def plan_batches(
    chunk: Sequence["tuple[int, SimulationJob]"], kernel: "str | None" = None
) -> "list[list[tuple[int, SimulationJob]]]":
    """Split *chunk* into execution units: singles, or same-group batches.

    With the scalar kernel every job is its own unit (exactly the historic
    behaviour).  With a kernel in :data:`GROUPING_KERNELS`, jobs sharing a
    :func:`vector_group_key` merge into one unit, anchored at the position
    of the group's first job, and execute as one
    :func:`~repro.coresim.simulator.simulate_trace_batch` call.  Planning
    is a pure function of the chunk, so every backend produces the same
    units.
    """
    if resolve_kernel(kernel) not in GROUPING_KERNELS:
        return [[item] for item in chunk]
    units: list[list[tuple[int, SimulationJob]]] = []
    group_unit: dict[tuple, list[tuple[int, SimulationJob]]] = {}
    for index, job in chunk:
        key = vector_group_key(job)
        if key is None:
            units.append([(index, job)])
            continue
        unit = group_unit.get(key)
        if unit is None:
            unit = [(index, job)]
            group_unit[key] = unit
            units.append(unit)
        else:
            unit.append((index, job))
    return units


def _execute_unit(
    unit: "list[tuple[int, SimulationJob]]",
    traces: Mapping,
    kernel: "str | None" = None,
) -> "list[tuple[int, StoredResult]]":
    """Execute one planned unit (a single job or a same-group batch).

    *kernel* is the selection the unit was planned under (``None`` defers to
    ``REPRO_KERNEL``); it is forwarded to the simulator so batches run on
    the kernel that justified grouping them.
    """
    if len(unit) == 1:
        index, job = unit[0]
        return [(index, execute_job(job, traces[job.trace_id], kernel=kernel))]
    first = unit[0][1]
    seed = first.seed()
    # repro: allow(global-rng): sanctioned save/seed site — mirrors execute_job
    python_state = random.getstate()
    numpy_state = np.random.get_state()  # repro: allow(global-rng): see above
    random.seed(seed)  # repro: allow(global-rng): see above
    np.random.seed(seed % 2**32)  # repro: allow(global-rng): see above
    try:
        results = simulate_trace_batch(
            first.config,
            [traces[job.trace_id] for _, job in unit],
            bug=first.bug,
            step_cycles=first.step,
            kernel=kernel,
        )
    finally:
        # repro: allow(global-rng): sanctioned restore of the saved streams
        random.setstate(python_state)
        np.random.set_state(numpy_state)  # repro: allow(global-rng): see above
    return [
        (index, StoredResult.from_core(result))
        for (index, _job), result in zip(unit, results)
    ]


def run_chunk_items(
    chunk: Sequence["tuple[int, SimulationJob]"],
    traces: Mapping,
    kernel: "str | None" = None,
) -> "tuple[list[tuple[int, StoredResult]], ChunkFailure | None]":
    """Execute every ``(index, job)`` in *chunk* against the *traces* table.

    Stops at the first failing unit, returning the results completed so far
    together with a :class:`ChunkFailure` carrying the formatted traceback
    (exceptions from user bug models may not survive pickling, so the
    traceback ships as text).  A failure inside a batch unit is attributed
    to the batch's first job.
    """
    results: list[tuple[int, StoredResult]] = []
    for unit in plan_batches(chunk, kernel):
        try:
            results.extend(_execute_unit(unit, traces, kernel=kernel))
        except Exception:
            return results, ChunkFailure(unit[0][1].describe(), traceback.format_exc())
    return results, None
