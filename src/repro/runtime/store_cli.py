"""``repro-store``: result-store maintenance CLI.

The :class:`~repro.runtime.store.ResultStore` is content-addressed by
(config, bug, trace, step), so stores produced by different runs, machines
or CI shards can always be combined — the first slice of cross-run result
sharing.  Usage::

    repro-store merge SRC... DST            # fold one or more stores into DST
    repro-store merge --max-entries N SRC DST
    repro-store info PATH...                # layout + entry counts per store
    repro-store reshard PATH [--layout L]   # migrate flat <-> sharded in place
    repro-store gc PATH --keep ROSTER       # prune entries outside the roster

``merge`` copies every entry absent from DST (creating it if needed),
re-validating each payload on the way in; corrupt source entries are
skipped and reported.  ``--max-entries`` applies DST's normal
least-recently-modified eviction policy while merging.  Flat and sharded
stores mix freely on either side.  A subsequent experiment run against
the merged store re-simulates nothing (``executed=0``) for any job either
source had computed.

``reshard`` migrates between the flat layout and the ``shard=XX/``
sharded layout with same-filesystem renames (safe against readers).
``gc`` needs a keep roster — one store key per line, as written by
``repro-cluster roster`` — and removes everything else; ``--dry-run``
prints what would go.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .store import LAYOUTS, ResultStore


def _cmd_merge(args: argparse.Namespace) -> int:
    destination_path = Path(args.stores[-1])
    sources = [Path(p) for p in args.stores[:-1]]
    for source in sources:
        if not source.is_dir():
            print(f"error: source store {source} does not exist")
            return 2
    destination = ResultStore(destination_path, max_entries=args.max_entries)
    total = 0
    for source_path in sources:
        source = ResultStore(source_path)
        before = len(source)
        try:
            merged = destination.merge_from(source)
        except ValueError as exc:  # e.g. a source that IS the destination
            print(f"error: {exc} ({source_path})")
            return 2
        total += merged
        skipped = source.stats.corrupt
        line = f"  {source_path}: merged {merged}/{before} entries"
        if skipped:
            line += f" ({skipped} corrupt skipped)"
        print(line)
    print(
        f"{destination_path}: {len(destination)} entries "
        f"(+{total} merged, {destination.stats.evicted} evicted)"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    for path in args.stores:
        if not Path(path).is_dir():
            print(f"{path}: not a store directory")
            continue
        store = ResultStore(path)
        swept = f", {store.stats.tmp_swept} stale tmp swept" if store.stats.tmp_swept else ""
        print(f"{path}: {len(store)} entries, layout={store.layout}{swept}")
        if store.layout == "sharded":
            counts = store.shard_counts()
            if counts:
                occupied = len(counts)
                widest = max(counts.values())
                print(
                    f"  {occupied} shards occupied, "
                    f"largest {widest} entr{'y' if widest == 1 else 'ies'}"
                )
            for shard in sorted(counts):
                print(f"    shard={shard}: {counts[shard]}")
    return 0


def _cmd_reshard(args: argparse.Namespace) -> int:
    if not Path(args.store).is_dir():
        print(f"error: store {args.store} does not exist")
        return 2
    store = ResultStore(args.store)
    before = store.layout
    moved = store.reshard(args.layout)
    print(
        f"{args.store}: {before} -> {args.layout}, "
        f"{moved} entries moved ({len(store)} total)"
    )
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    if not Path(args.store).is_dir():
        print(f"error: store {args.store} does not exist")
        return 2
    keep: set[str] = set()
    try:
        with open(args.keep, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    keep.add(line)
    except OSError as exc:
        print(f"error: cannot read roster {args.keep}: {exc}")
        return 2
    if not keep and not args.allow_empty_roster:
        print(
            "error: roster is empty — refusing to remove every entry "
            "(pass --allow-empty-roster to override)"
        )
        return 2
    store = ResultStore(args.store)
    before = len(store)
    removed = store.gc(keep, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{args.store}: {verb} {len(removed)}/{before} entries "
        f"(roster keeps {len(keep)} keys)"
    )
    if args.dry_run:
        for key in removed:
            print(f"  {key}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-store", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    merge = commands.add_parser(
        "merge", help="fold one or more source stores into a destination store"
    )
    merge.add_argument(
        "stores", nargs="+", metavar="STORE",
        help="source store directories followed by the destination (last)",
    )
    merge.add_argument(
        "--max-entries", type=int, default=None,
        help="apply the destination's eviction policy at this soft capacity",
    )
    merge.set_defaults(func=_cmd_merge)

    info = commands.add_parser(
        "info", help="show layout and entry counts per store"
    )
    info.add_argument("stores", nargs="+", metavar="STORE")
    info.set_defaults(func=_cmd_info)

    reshard = commands.add_parser(
        "reshard", help="migrate a store between flat and sharded layouts"
    )
    reshard.add_argument("store", metavar="STORE")
    reshard.add_argument(
        "--layout", default="sharded", choices=list(LAYOUTS),
        help="target layout (default: sharded)",
    )
    reshard.set_defaults(func=_cmd_reshard)

    gc = commands.add_parser(
        "gc", help="prune entries unreachable from a keep roster"
    )
    gc.add_argument("store", metavar="STORE")
    gc.add_argument(
        "--keep", required=True, metavar="ROSTER",
        help="file of keys to keep, one per line (see repro-cluster roster)",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without touching the store",
    )
    gc.add_argument(
        "--allow-empty-roster", action="store_true",
        help="permit GC with an empty roster (removes every entry)",
    )
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    if args.command == "merge" and len(args.stores) < 2:
        merge.error("merge needs at least one SRC and one DST")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
