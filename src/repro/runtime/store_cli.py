"""``repro-store``: result-store maintenance CLI.

The :class:`~repro.runtime.store.ResultStore` is content-addressed by
(config, bug, trace, step), so stores produced by different runs, machines
or CI shards can always be combined — the first slice of cross-run result
sharing.  Usage::

    repro-store merge SRC... DST            # fold one or more stores into DST
    repro-store merge --max-entries N SRC DST
    repro-store info PATH...                # entry counts per store

``merge`` copies every entry absent from DST (creating it if needed),
re-validating each payload on the way in; corrupt source entries are
skipped and reported.  ``--max-entries`` applies DST's normal
least-recently-modified eviction policy while merging.  A subsequent
experiment run against the merged store re-simulates nothing
(``executed=0``) for any job either source had computed.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .store import ResultStore


def _cmd_merge(args: argparse.Namespace) -> int:
    destination_path = Path(args.stores[-1])
    sources = [Path(p) for p in args.stores[:-1]]
    for source in sources:
        if not source.is_dir():
            print(f"error: source store {source} does not exist")
            return 2
    destination = ResultStore(destination_path, max_entries=args.max_entries)
    total = 0
    for source_path in sources:
        source = ResultStore(source_path)
        before = len(source)
        try:
            merged = destination.merge_from(source)
        except ValueError as exc:  # e.g. a source that IS the destination
            print(f"error: {exc} ({source_path})")
            return 2
        total += merged
        skipped = source.stats.corrupt
        line = f"  {source_path}: merged {merged}/{before} entries"
        if skipped:
            line += f" ({skipped} corrupt skipped)"
        print(line)
    print(
        f"{destination_path}: {len(destination)} entries "
        f"(+{total} merged, {destination.stats.evicted} evicted)"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    for path in args.stores:
        if not Path(path).is_dir():
            print(f"{path}: not a store directory")
            continue
        store = ResultStore(path)
        swept = f", {store.stats.tmp_swept} stale tmp swept" if store.stats.tmp_swept else ""
        print(f"{path}: {len(store)} entries{swept}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-store", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    merge = commands.add_parser(
        "merge", help="fold one or more source stores into a destination store"
    )
    merge.add_argument(
        "stores", nargs="+", metavar="STORE",
        help="source store directories followed by the destination (last)",
    )
    merge.add_argument(
        "--max-entries", type=int, default=None,
        help="apply the destination's eviction policy at this soft capacity",
    )
    merge.set_defaults(func=_cmd_merge)

    info = commands.add_parser("info", help="show entry counts per store")
    info.add_argument("stores", nargs="+", metavar="STORE")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if args.command == "merge" and len(args.stores) < 2:
        merge.error("merge needs at least one SRC and one DST")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
