"""Frozen seed implementation of the O3 pipeline (correctness oracle).

This module is a verbatim copy of the pre-optimization ``O3Pipeline`` from the
seed tree.  It exists for two purposes only:

* the golden counter-equivalence suite (``tests/test_perf_equivalence.py``)
  asserts that the optimized :class:`~repro.coresim.pipeline.O3Pipeline`
  produces bit-identical :class:`~repro.coresim.counters.CounterTimeSeries`
  output for every (preset x bug x trace) combination it checks, and
* ``repro-bench`` times it to report the single-thread speedup of the
  optimized hot path against the pre-PR baseline.

Do not optimize or "fix" this file; behavioural changes here silently weaken
the equivalence oracle.  If the modelled microarchitecture itself changes,
update both implementations and the tests together.
"""


from __future__ import annotations

from collections import deque

from ..uarch.config import CacheConfig, MicroarchConfig  # noqa: F401 (annotations)
from ..workloads.isa import MicroOp, NUM_ARCH_REGS, OpClass, Opcode
from .counters import CounterTimeSeries, TimeSeriesSampler
from .hooks import BUG_FREE, CoreBugModel, DispatchContext

# -- frozen seed cache hierarchy and branch predictor ----------------------

class _SeedCache:
    """One cache level: tag store with true-LRU replacement."""

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_shift = config.line_size.bit_length() - 1
        # One dict per set: tag -> last-use timestamp.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.accesses = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        """Access *address*; returns True on hit.  Misses allocate the line."""
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        self.accesses += 1
        if tag in cache_set:
            cache_set[tag] = self._tick
            return True
        self.misses += 1
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick
        return False

    def fill(self, address: int) -> None:
        """Install the line containing *address* without touching statistics.

        Used for prefetch fills and warm-up.
        """
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set[tag] = self._tick
            return
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _SeedCacheHierarchy:
    """The L1D/L2/(L3)/memory data hierarchy of one core configuration."""

    #: Main-memory access time in nanoseconds (converted to cycles per design).
    MEMORY_LATENCY_NS = 60.0

    def __init__(self, config: MicroarchConfig, bug: CoreBugModel) -> None:
        self.config = config
        self.bug = bug
        self.levels: list[_SeedCache] = [_SeedCache("l1d", config.l1), _SeedCache("l2", config.l2)]
        if config.l3 is not None:
            self.levels.append(_SeedCache("l3", config.l3))
        self.memory_latency = max(
            30, int(round(self.MEMORY_LATENCY_NS * config.clock_ghz))
        )

    def access(self, address: int) -> int:
        """Access *address* and return the total latency in core cycles."""
        latency = 0
        hit_level = 0
        for index, cache in enumerate(self.levels, start=1):
            latency += cache.config.latency + self.bug.cache_extra_latency(index)
            if cache.lookup(address):
                hit_level = index
                break
        if hit_level == 0:
            latency += self.memory_latency
        if hit_level != 1:
            # Next-line prefetch on an L1 miss: all modern cores covered by
            # Table II ship hardware prefetchers; modelling one keeps the
            # scaled-down probes from being artificially memory bound.
            next_line = address + self.levels[0].config.line_size
            for cache in self.levels:
                cache.fill(next_line)
        return latency

    def stats(self) -> dict[str, int]:
        """Cumulative access/miss counters for every level."""
        result: dict[str, int] = {}
        for cache in self.levels:
            result[f"cache.{cache.name}.accesses"] = cache.accesses
            result[f"cache.{cache.name}.misses"] = cache.misses
        return result


class _SeedBranchPredictor:
    """gshare + BTB + indirect predictor with hit/miss accounting."""

    HISTORY_BITS = 12

    def __init__(self, config: MicroarchConfig, bug: CoreBugModel) -> None:
        self.config = config
        entries = bug.bp_table_entries(config.bp_table_entries)
        self.table_entries = max(4, entries)
        self.counters = [2] * self.table_entries  # weakly taken
        self.history = 0
        self.history_mask = (1 << self.HISTORY_BITS) - 1
        self.btb: dict[int, int] = {}
        self.btb_entries = config.btb_entries
        self.indirect_sets = max(4, config.indirect_predictor_sets)
        self.indirect_table: dict[int, int] = {}

        self.lookups = 0
        self.mispredicts = 0
        self.direction_mispredicts = 0
        self.indirect_lookups = 0
        self.indirect_mispredicts = 0
        self.btb_hits = 0
        self.btb_lookups = 0

    # -- direction prediction ------------------------------------------------

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) % self.table_entries

    def _predict_direction(self, pc: int) -> bool:
        return self.counters[self._index(pc)] >= 2

    def _update_direction(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    # -- target prediction ----------------------------------------------------

    def _predict_target(self, uop: MicroOp) -> int | None:
        if uop.indirect:
            self.indirect_lookups += 1
            key = ((uop.pc >> 2) ^ self.history) % self.indirect_sets
            return self.indirect_table.get(key)
        self.btb_lookups += 1
        target = self.btb.get(uop.pc)
        if target is not None:
            self.btb_hits += 1
        return target

    def _update_target(self, uop: MicroOp) -> None:
        if uop.target is None:
            return
        if uop.indirect:
            key = ((uop.pc >> 2) ^ self.history) % self.indirect_sets
            self.indirect_table[key] = uop.target
        else:
            if uop.pc not in self.btb and len(self.btb) >= self.btb_entries:
                # Evict an arbitrary (oldest-inserted) entry.
                self.btb.pop(next(iter(self.btb)))
            self.btb[uop.pc] = uop.target

    # -- public API -------------------------------------------------------------

    def predict_and_update(self, uop: MicroOp) -> bool:
        """Predict *uop* and update predictor state; returns True on mispredict.

        The trace carries the architecturally-correct outcome, so prediction
        and training happen in one call (prediction uses the state *before*
        the update, as in hardware).
        """
        if not uop.is_branch or uop.taken is None:
            return False
        self.lookups += 1
        predicted_taken = self._predict_direction(uop.pc)
        predicted_target = self._predict_target(uop) if predicted_taken else None

        mispredicted = predicted_taken != uop.taken
        if mispredicted:
            self.direction_mispredicts += 1
        elif uop.taken and predicted_target != uop.target:
            mispredicted = True
            if uop.indirect:
                self.indirect_mispredicts += 1

        self._update_direction(uop.pc, uop.taken)
        if uop.taken:
            self._update_target(uop)
        if mispredicted:
            self.mispredicts += 1
        return mispredicted

    def reset_stats(self) -> None:
        """Clear the counters while keeping the learned predictor state."""
        self.lookups = 0
        self.mispredicts = 0
        self.direction_mispredicts = 0
        self.indirect_lookups = 0
        self.indirect_mispredicts = 0
        self.btb_hits = 0
        self.btb_lookups = 0

    def stats(self) -> dict[str, int]:
        """Cumulative predictor counters."""
        return {
            "bp.lookups": self.lookups,
            "bp.mispredicts": self.mispredicts,
            "bp.direction_mispredicts": self.direction_mispredicts,
            "bp.indirect_lookups": self.indirect_lookups,
            "bp.indirect_mispredicts": self.indirect_mispredicts,
            "bp.btb_lookups": self.btb_lookups,
            "bp.btb_hits": self.btb_hits,
        }


#: Base front-end redirect penalty (cycles) after a mispredicted branch resolves.
BASE_REDIRECT_PENALTY = 4

#: Hard safety limit: cycles per trace instruction before the model aborts.
MAX_CYCLES_PER_INSTRUCTION = 500


class _InflightOp:
    """One dynamic instruction in flight between dispatch and commit."""

    __slots__ = (
        "uop",
        "seq",
        "pending",
        "consumers",
        "min_issue_cycle",
        "issued",
        "completed",
        "mispredicted",
        "blocks_fetch",
        "is_mem",
        "has_dest",
    )

    def __init__(self, uop: MicroOp, seq: int) -> None:
        self.uop = uop
        self.seq = seq
        self.pending = 0
        self.consumers: list[_InflightOp] = []
        self.min_issue_cycle = 0
        self.issued = False
        self.completed = False
        self.mispredicted = False
        self.blocks_fetch = False
        self.is_mem = uop.is_mem
        self.has_dest = uop.dest is not None


class PipelineError(RuntimeError):
    """Raised when the pipeline deadlocks or exceeds its cycle budget."""


class ReferenceO3Pipeline:
    """Executes one dynamic trace on one microarchitecture configuration."""

    def __init__(
        self,
        config: MicroarchConfig,
        bug: CoreBugModel | None = None,
        step_cycles: int = 2048,
    ) -> None:
        self.config = config
        self.bug = bug if bug is not None else BUG_FREE
        self.step_cycles = step_cycles
        self.bug.on_simulation_start(config)

        self.caches = _SeedCacheHierarchy(config, self.bug)
        self.branch_predictor = _SeedBranchPredictor(config, self.bug)

        # Physical register pool: architectural state plus rename registers,
        # possibly reduced by bug 11.
        reduction = max(0, self.bug.register_reduction())
        self.free_regs = max(1, config.num_phys_regs - NUM_ARCH_REGS - reduction)

        # Per-operation-class execution latencies.
        self._latency = {
            OpClass.INT_ALU: 1,
            OpClass.INT_MULT: config.mult_latency,
            OpClass.INT_DIV: config.div_latency,
            OpClass.FP_ALU: config.fp_latency,
            OpClass.FP_MULT: config.fp_latency,
            OpClass.FP_DIV: config.div_latency,
            OpClass.VECTOR: config.fp_latency,
            OpClass.BRANCH: 1,
            OpClass.STORE: 1,
        }
        self._class_ports = {
            op_class: [p.index for p in config.ports.ports_for(op_class)]
            for op_class in OpClass
        }
        self._port_busy_until = [0] * config.ports.num_ports
        self._nonpipelined = {OpClass.INT_DIV, OpClass.FP_DIV}

        # Pipeline structures.
        self._fetch_queue: deque[_InflightOp] = deque()
        self._rob: deque[_InflightOp] = deque()
        self._iq: list[_InflightOp] = []
        self._lsq_occupancy = 0
        self._reg_producer: dict[int, _InflightOp] = {}
        self._store_queue: list[_InflightOp] = []
        self._completing: dict[int, list[_InflightOp]] = {}
        self._serialize_op: _InflightOp | None = None
        self._fetch_blocked_by: _InflightOp | None = None
        self._fetch_resume_cycle = 0

        self.counters: dict[str, float] = {}
        self.cycle = 0
        self.committed = 0
        self._rob_occupancy_sum = 0
        self._iq_occupancy_sum = 0
        self._lsq_occupancy_sum = 0

    # ------------------------------------------------------------------ utils

    def _bump(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def _cumulative_counters(self) -> dict[str, float]:
        merged = dict(self.counters)
        merged["rob.occupancy_sum"] = float(self._rob_occupancy_sum)
        merged["iq.occupancy_sum"] = float(self._iq_occupancy_sum)
        merged["lsq.occupancy_sum"] = float(self._lsq_occupancy_sum)
        merged.update({k: float(v) for k, v in self.branch_predictor.stats().items()})
        merged.update({k: float(v) for k, v in self.caches.stats().items()})
        return merged

    # ------------------------------------------------------------------ stages

    def _commit_stage(self) -> None:
        width = self.config.width
        committed_now = 0
        while self._rob and committed_now < width:
            op = self._rob[0]
            if not op.completed:
                break
            self._rob.popleft()
            committed_now += 1
            self.committed += 1
            uop = op.uop
            self._bump("commit.instructions")
            if op.has_dest:
                self._bump("commit.register_writes")
                self.free_regs += 1
                if self._reg_producer.get(uop.dest) is op:
                    del self._reg_producer[uop.dest]
            if uop.is_branch:
                self._bump("commit.branches")
            elif uop.opcode is Opcode.LOAD:
                self._bump("commit.loads")
                self._lsq_occupancy -= 1
            elif uop.opcode is Opcode.STORE:
                self._bump("commit.stores")
                self._lsq_occupancy -= 1
                if op in self._store_queue:
                    self._store_queue.remove(op)
            if uop.op_class in (
                OpClass.FP_ALU,
                OpClass.FP_MULT,
                OpClass.FP_DIV,
                OpClass.VECTOR,
            ):
                self._bump("commit.fp_instructions")
        if committed_now == 0:
            self._bump("commit.idle_cycles")
        elif committed_now >= width:
            self._bump("commit.max_width_cycles")

    def _writeback_stage(self) -> None:
        finishing = self._completing.pop(self.cycle, None)
        if not finishing:
            return
        for op in finishing:
            op.completed = True
            for consumer in op.consumers:
                consumer.pending -= 1
            op.consumers = []
            if op.blocks_fetch and self._fetch_blocked_by is op:
                penalty = BASE_REDIRECT_PENALTY + self.bug.branch_extra_penalty(
                    op.uop, True
                )
                self._fetch_resume_cycle = self.cycle + penalty
                self._fetch_blocked_by = None
            if self._serialize_op is op:
                self._serialize_op = None
            self._bump("writeback.instructions")

    def _execute(self, op: _InflightOp) -> int:
        """Compute the execution latency of *op* and do its cache access."""
        uop = op.uop
        op_class = uop.op_class
        if op_class is OpClass.LOAD:
            forwarded = any(
                s.uop.address == uop.address and s.seq < op.seq
                for s in self._store_queue
            )
            if forwarded:
                self._bump("lsq.forwarded_loads")
                return 1
            return self.caches.access(uop.address)
        if op_class is OpClass.STORE:
            self.caches.access(uop.address)
            return self._latency[OpClass.STORE]
        return self._latency[op_class]

    def _issue_stage(self) -> None:
        if not self._iq:
            self._bump("issue.empty_cycles")
            return
        width = self.config.width
        issued = 0
        ports_used: set[int] = set()
        oldest = self._iq[0]
        restrict_to_oldest = self.bug.oldest_blocks_others(oldest.uop)
        to_remove: list[_InflightOp] = []

        for op in self._iq:
            if issued >= width:
                break
            if restrict_to_oldest and op is not oldest:
                break
            if op.pending > 0 or self.cycle < op.min_issue_cycle:
                continue
            uop = op.uop
            if op is not oldest and self.bug.issue_only_if_oldest(uop):
                continue
            if self._serialize_op is not None and op is not self._serialize_op:
                # A serialising instruction blocks younger instructions from
                # issuing until it has itself issued.
                if op.seq > self._serialize_op.seq:
                    continue
            port = self._find_port(uop.op_class, ports_used)
            if port is None:
                self._bump("issue.port_conflicts")
                continue
            ports_used.add(port)
            latency = self._execute(op)
            if uop.op_class in self._nonpipelined:
                self._port_busy_until[port] = self.cycle + latency
            op.issued = True
            finish = self.cycle + max(1, latency)
            self._completing.setdefault(finish, []).append(op)
            to_remove.append(op)
            issued += 1
            self._bump("issue.instructions")
            self._bump(f"issue.class.{uop.op_class.name}")

        if to_remove:
            remove_set = set(id(op) for op in to_remove)
            self._iq = [op for op in self._iq if id(op) not in remove_set]
        if issued == 0:
            self._bump("issue.stall_cycles")
        elif issued >= width:
            self._bump("issue.max_width_cycles")

    def _find_port(self, op_class: OpClass, used: set[int]) -> int | None:
        for port in self._class_ports[op_class]:
            if port in used:
                continue
            if self._port_busy_until[port] > self.cycle:
                continue
            return port
        return None

    def _dispatch_stage(self) -> None:
        width = self.config.width
        dispatched = 0
        while self._fetch_queue and dispatched < width:
            if self._serialize_op is not None:
                self._bump("dispatch.serializing_stalls")
                break
            op = self._fetch_queue[0]
            uop = op.uop
            if len(self._rob) >= self.config.rob_size:
                self._bump("dispatch.stall_rob_full")
                break
            if len(self._iq) >= self.config.iq_size:
                self._bump("dispatch.stall_iq_full")
                break
            if op.is_mem and self._lsq_occupancy >= self.config.lsq_size:
                self._bump("dispatch.stall_lsq_full")
                break
            if op.has_dest and self.free_regs <= 0:
                self._bump("rename.stall_cycles_regs")
                break

            self._fetch_queue.popleft()
            dispatched += 1
            self._bump("dispatch.instructions")

            # Rename: link sources to in-flight producers.
            producer_opcodes: list[Opcode] = []
            for src in uop.srcs:
                producer = self._reg_producer.get(src)
                if producer is not None and not producer.completed:
                    op.pending += 1
                    producer.consumers.append(op)
                    producer_opcodes.append(producer.uop.opcode)
            if op.has_dest:
                self.free_regs -= 1
                self._reg_producer[uop.dest] = op

            context = DispatchContext(
                iq_free=self.config.iq_size - len(self._iq),
                rob_free=self.config.rob_size - len(self._rob),
                producer_opcodes=tuple(producer_opcodes),
            )
            extra = self.bug.extra_issue_delay(uop, context)
            op.min_issue_cycle = self.cycle + 1 + max(0, extra)
            if extra > 0:
                self._bump("bug.extra_delay_cycles", extra)

            if self.bug.serialize(uop):
                self._serialize_op = op
                self._bump("dispatch.serialized_instructions")

            self._rob.append(op)
            self._iq.append(op)
            if op.is_mem:
                self._lsq_occupancy += 1
                if uop.opcode is Opcode.STORE:
                    self._store_queue.append(op)
        if dispatched == 0 and self._fetch_queue:
            self._bump("dispatch.stall_cycles")

    def _fetch_stage(self, trace: list[MicroOp], next_index: int, seq: int) -> tuple[int, int]:
        width = self.config.width
        if self._fetch_blocked_by is not None or self.cycle < self._fetch_resume_cycle:
            self._bump("fetch.stall_cycles")
            return next_index, seq
        fetched = 0
        capacity = self.config.fetch_buffer
        while (
            fetched < width
            and next_index < len(trace)
            and len(self._fetch_queue) < capacity
        ):
            uop = trace[next_index]
            op = _InflightOp(uop, seq)
            next_index += 1
            seq += 1
            fetched += 1
            self._bump("fetch.instructions")
            if uop.is_branch:
                self._bump("fetch.branches")
                mispredicted = self.branch_predictor.predict_and_update(uop)
                if mispredicted:
                    op.mispredicted = True
                    op.blocks_fetch = True
                    self._fetch_blocked_by = op
                    self._bump("fetch.mispredicted_branches")
            self._fetch_queue.append(op)
            if op.blocks_fetch:
                break
        if fetched > 0:
            self._bump("fetch.cycles_active")
        return next_index, seq

    # ------------------------------------------------------------------ driver

    def warmup(self, trace: list[MicroOp]) -> None:
        """Functionally warm the caches and branch predictor with *trace*.

        The paper's probes are ~10 M instructions, long enough that cold-start
        effects are negligible; the scaled-down probes used here are not, so a
        functional warm-up pass (a standard SimPoint practice) is applied
        before timed simulation.  Statistics accumulated during warm-up are
        discarded.
        """
        for uop in trace:
            if uop.address is not None:
                self.caches.access(uop.address)
            elif uop.taken is not None:
                self.branch_predictor.predict_and_update(uop)
        for cache in self.caches.levels:
            cache.reset_stats()
        self.branch_predictor.reset_stats()

    def run(self, trace: list[MicroOp]) -> CounterTimeSeries:
        """Simulate *trace* to completion and return the sampled time series."""
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        sampler = TimeSeriesSampler(self.step_cycles)
        next_index = 0
        seq = 0
        total = len(trace)
        max_cycles = total * MAX_CYCLES_PER_INSTRUCTION + 10_000
        last_sample_cycle = 0

        while self.committed < total:
            self.cycle += 1
            if self.cycle > max_cycles:
                raise PipelineError(
                    f"pipeline exceeded {max_cycles} cycles for {total} instructions "
                    f"on {self.config.name} with bug {self.bug.name!r}"
                )
            self._commit_stage()
            self._writeback_stage()
            self._issue_stage()
            self._dispatch_stage()
            next_index, seq = self._fetch_stage(trace, next_index, seq)

            self._rob_occupancy_sum += len(self._rob)
            self._iq_occupancy_sum += len(self._iq)
            self._lsq_occupancy_sum += self._lsq_occupancy

            if self.cycle - last_sample_cycle >= self.step_cycles:
                sampler.sample(self._cumulative_counters())
                last_sample_cycle = self.cycle

        sampler.finalize(self._cumulative_counters(), self.cycle - last_sample_cycle)
        return sampler.build()


def reference_simulate_trace(
    config: MicroarchConfig,
    trace: list[MicroOp],
    bug: CoreBugModel | None = None,
    step_cycles: int = 2048,
    warmup: bool = True,
):
    """Run the frozen seed pipeline; mirrors :func:`repro.coresim.simulate_trace`.

    Accepts a plain micro-op list or anything exposing ``.uops`` (e.g. a
    :class:`~repro.workloads.decoded.DecodedTrace`); the seed code predates the
    decoded representation and only understands lists.
    """
    from .simulator import SimulationResult

    uops = list(getattr(trace, "uops", trace))
    pipeline = ReferenceO3Pipeline(config, bug=bug, step_cycles=step_cycles)
    if warmup:
        pipeline.warmup(uops)
    series = pipeline.run(uops)
    return SimulationResult(
        config_name=config.name,
        bug_name=pipeline.bug.name,
        instructions=pipeline.committed,
        cycles=pipeline.cycle,
        series=series,
    )
