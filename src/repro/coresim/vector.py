"""Numpy-batched lockstep simulation kernel.

:func:`simulate_batch` runs *B* independent probe traces on **one**
:class:`~repro.uarch.config.MicroarchConfig` in lockstep: every piece of
per-cycle machine state — scoreboard pending counts, issue-queue membership,
ROB head/tail pointers, cache tag/LRU arrays, port masks, counter
accumulators — lives in ``(B, ...)`` numpy arrays, so one Python-level cycle
step advances the whole batch.  Per-lane retirement masks handle ragged trace
lengths; a lane that finishes early is masked out and finalised while the
rest of the batch keeps stepping.

The kernel is **bit-identical** to the scalar
:class:`~repro.coresim.pipeline.O3Pipeline` (and therefore to the frozen
seed pipeline in :mod:`repro.coresim._reference`): same cycle counts, same
sampled counter name sets, same sampled values.  That identity is pinned by
``tests/test_perf_equivalence.py``, the pinned golden digests in
``tests/data`` and the differential fuzz suite in
``tests/test_differential.py``.

Why lockstep can be exact *and* fast
------------------------------------

The scalar pipeline pays Python-interpreter cost per dynamic instruction per
stage.  Three structural facts let the batched kernel replace almost all of
that with O(1)-per-cycle vector arithmetic:

* **Fetch, dispatch and commit are in program order.**  The ROB is always a
  contiguous window ``[commit_head, dispatch_ptr)`` of trace indices, so
  LSQ occupancy, free rename registers, per-class commit counters, fetched
  branch counts — everything the scalar model tracks per op — are differences
  of per-trace *prefix-sum arrays* computed once per trace.
* **Branch prediction is timing-independent.**  The predictor is consulted
  at fetch, in trace order, so the per-branch outcomes (and the cumulative
  predictor statistics after every branch) are precomputed per lane with the
  real :class:`~repro.coresim.branch.BranchPredictor` before the cycle loop.
* **Register dependencies are static.**  The producer of each source
  operand is the last earlier writer of that register, a pure function of
  the trace; the consumer lists walked at writeback are a precomputed CSR.
  Store-to-load forwarding likewise reduces to comparing the precomputed
  "last earlier store to the same address" ordinal against the committed
  store count.

The data-dependent parts that remain per cycle — issue selection in
sequence order with port allocation, cache lookups, writeback wake-up — are
done with masked vector operations over the batch.  L1 and L2 are dense
``(B, sets, ways)`` tag/tick arrays with true-LRU exactly mirroring
:class:`~repro.coresim.caches.Cache`; L3 (up to a million entries per lane)
stays a per-lane dict-based :class:`Cache` and is only touched on the rare
L2 miss, which also keeps it bit-identical by construction.

Supported bug models
--------------------

Only bug models whose overridden hooks are *structural* — evaluated once at
construction (``register_reduction``, ``bp_table_entries``) — are eligible;
anything that overrides a scheduling or cache hook (``serialize``,
``issue_only_if_oldest``, ``oldest_blocks_others``, ``extra_issue_delay``,
``branch_extra_penalty``, ``cache_extra_latency``) falls back to the scalar
kernel, per the hook contract in docs/PERFORMANCE.md.  Use
:func:`supports_vector` to test eligibility.
"""

from __future__ import annotations

import numpy as np

from ..uarch.config import MicroarchConfig
from ..workloads.decoded import DecodedTrace, decode_trace
from ..workloads.isa import NUM_ARCH_REGS, OpClass
from .branch import BranchPredictor
from .caches import CacheHierarchy
from .counters import CounterTimeSeries, TimeSeriesSampler
from .hooks import BUG_FREE, CoreBugModel
from .pipeline import BASE_REDIRECT_PENALTY, MAX_CYCLES_PER_INSTRUCTION, PipelineError

_INT_DIV = int(OpClass.INT_DIV)
_FP_ALU = int(OpClass.FP_ALU)
_FP_DIV = int(OpClass.FP_DIV)
_VECTOR = int(OpClass.VECTOR)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)
_NUM_CLASSES = len(OpClass)

#: Sentinel marking empty slots in the eligible-op buffer (larger than any
#: trace index).
_SENT = np.int64(2**62)

#: Hooks a bug model may override and still run on the vector kernel: they
#: are evaluated once at construction, never per cycle.
VECTOR_SAFE_HOOKS = frozenset(
    {"on_simulation_start", "register_reduction", "bp_table_entries"}
)

#: Every hook the scalar pipeline may consult dynamically.
_DYNAMIC_HOOKS = (
    "serialize",
    "issue_only_if_oldest",
    "oldest_blocks_others",
    "extra_issue_delay",
    "branch_extra_penalty",
    "cache_extra_latency",
)

#: Hard cap on lanes simulated per lockstep pass; larger batches are split.
DEFAULT_MAX_LANES = 512

#: Target total (lanes x trace-length) cells per pass.  The per-step Python
#: overhead of the lockstep loop is independent of the lane count, so wider
#: batches amortise it better; the cap keeps per-batch memory bounded
#: (under ~60 bytes per cell across all state arrays).
_CELL_BUDGET = 4_000_000


def supports_vector(bug: "CoreBugModel | None") -> bool:
    """True if *bug* (or ``None``) may run on the batched vector kernel.

    Eligibility is the same class-level override detection the scalar
    pipeline uses for hook hoisting: a model that leaves every dynamic hook
    at the :class:`CoreBugModel` default never perturbs per-cycle behaviour,
    so the vector kernel only needs its structural hooks (evaluated once).
    """
    if bug is None:
        return True
    bug_type = type(bug)
    for hook in _DYNAMIC_HOOKS:
        if getattr(bug_type, hook) is not getattr(CoreBugModel, hook):
            return False
    return True


def _max_lanes_for(length: int, requested: "int | None") -> int:
    """Lane cap for traces of *length* (memory stays ~O(200 MB) worst case)."""
    if requested is not None:
        return max(1, requested)
    return max(16, min(DEFAULT_MAX_LANES, _CELL_BUDGET // max(1, length)))


# ---------------------------------------------------------------------------
# Per-trace static decode (config-independent, cached by content digest)
# ---------------------------------------------------------------------------


class _TraceStatic:
    """Timing-independent per-trace arrays consumed by the lockstep loop."""

    __slots__ = (
        "n",
        "op_class",
        "is_load",
        "is_store",
        "is_mem",
        "is_brclass",
        "has_dest",
        "address",
        "srcs",
        "prod",
        "cons_off",
        "cons_data",
        "last_store_ord",
        "p_mem",
        "p_dest",
        "p_brclass",
        "p_load",
        "p_store",
        "p_fp",
        "mem_addrs",
        "br_positions",
        "br_shims",
    )


class _BranchShim:
    """Attribute view of one branch op for the real :class:`BranchPredictor`.

    ``predict_and_update`` reads ``taken``/``is_branch``/``pc``/``indirect``/
    ``target``; building these tiny shims from the decoded columns avoids
    materialising full ``MicroOp`` objects for the pre-pass.
    """

    __slots__ = ("pc", "taken", "target", "indirect", "is_branch")

    def __init__(self, pc, taken, target, indirect):
        self.pc = pc
        self.taken = taken
        self.target = target
        self.indirect = indirect
        self.is_branch = True


_OPCLASS_BY_OPCODE = None


def _opclass_table() -> np.ndarray:
    global _OPCLASS_BY_OPCODE
    if _OPCLASS_BY_OPCODE is None:
        from ..workloads.decoded import _OPCODE_TO_CLASS_INT

        table = np.zeros(max(int(op) for op in _OPCODE_TO_CLASS_INT) + 1, np.int8)
        for opcode, op_class in _OPCODE_TO_CLASS_INT.items():
            table[int(opcode)] = op_class
        _OPCLASS_BY_OPCODE = table
    return _OPCLASS_BY_OPCODE


def _build_static(decoded: DecodedTrace) -> _TraceStatic:
    columns = decoded.columns
    n = int(columns["opcode"].shape[0])
    s = _TraceStatic()
    s.n = n
    opcode = columns["opcode"].astype(np.int64)
    op_class = _opclass_table()[opcode]
    s.op_class = op_class
    s.is_load = op_class == _LOAD
    s.is_store = op_class == _STORE
    s.is_mem = s.is_load | s.is_store
    s.is_brclass = op_class == _BRANCH
    s.has_dest = columns["has_dest"].astype(bool)
    s.address = np.where(
        columns["has_address"].astype(bool), columns["address"].astype(np.int64), 0
    )
    dest = np.where(s.has_dest, columns["dest"].astype(np.int64), -1)

    srcs_flat = columns["srcs_flat"].astype(np.int64)
    srcs_offset = columns["srcs_offset"].astype(np.int64)
    counts = np.diff(srcs_offset)
    n_slots = int(counts.max()) if n else 0
    srcs = np.full((max(1, n_slots), n), -1, np.int64)
    for slot in range(n_slots):
        rows = np.nonzero(counts > slot)[0]
        srcs[slot, rows] = srcs_flat[srcs_offset[rows] + slot]
    s.srcs = srcs

    # Producers: last earlier writer of each source register.  For every
    # register, writer positions are sorted by construction, so a
    # searchsorted against them gives the last writer strictly before each
    # reader.
    prod = np.full_like(srcs, -1)
    writer_pos: dict[int, np.ndarray] = {}
    dest_idx = np.nonzero(s.has_dest)[0]
    for reg in np.unique(dest[dest_idx]):
        writer_pos[int(reg)] = dest_idx[dest[dest_idx] == reg]
    for slot in range(srcs.shape[0]):
        col = srcs[slot]
        for reg, wpos in writer_pos.items():
            readers = np.nonzero(col == reg)[0]
            if readers.size == 0:
                continue
            at = np.searchsorted(wpos, readers) - 1
            have = at >= 0
            prod[slot, readers[have]] = wpos[at[have]]
    s.prod = prod

    # Consumer CSR: edges (producer -> consumer), one edge per source slot
    # whose producer exists.  Walk order within a producer is irrelevant
    # (wake-up is keyed by sequence number), so any deterministic grouping
    # works.
    edge_mask = prod >= 0
    producers = prod[edge_mask]
    consumers = np.broadcast_to(np.arange(n), prod.shape)[edge_mask]
    order = np.argsort(producers, kind="stable")
    producers = producers[order]
    consumers = consumers[order].astype(np.int64)
    cons_off = np.zeros(n + 1, np.int64)
    np.add.at(cons_off, producers + 1, 1)
    np.cumsum(cons_off, out=cons_off)
    s.cons_off = cons_off
    s.cons_data = consumers

    # Last earlier store (as a store ordinal) to the same address, per load:
    # the scalar's store-queue scan reduces to comparing this ordinal
    # against the committed-store count.
    store_pos = np.nonzero(s.is_store)[0]
    last_store_ord = np.full(n, -1, np.int64)
    if store_pos.size:
        store_addr = s.address[store_pos]
        load_pos = np.nonzero(s.is_load)[0]
        by_addr: dict[int, list[int]] = {}
        for ordinal, (pos, addr) in enumerate(zip(store_pos, store_addr)):
            by_addr.setdefault(int(addr), []).append((int(pos), ordinal))
        for pos in load_pos:
            entries = by_addr.get(int(s.address[pos]))
            if not entries:
                continue
            # entries are position-sorted; find the last strictly before pos.
            lo, hi = 0, len(entries)
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid][0] < pos:
                    lo = mid + 1
                else:
                    hi = mid
            if lo:
                last_store_ord[pos] = entries[lo - 1][1]
    s.last_store_ord = last_store_ord

    def prefix(mask: np.ndarray) -> np.ndarray:
        out = np.zeros(n + 1, np.int64)
        np.cumsum(mask, out=out[1:])
        return out

    s.p_mem = prefix(s.is_mem)
    s.p_dest = prefix(s.has_dest)
    s.p_brclass = prefix(s.is_brclass)
    s.p_load = prefix(s.is_load)
    s.p_store = prefix(s.is_store)
    s.p_fp = prefix((op_class >= _FP_ALU) & (op_class <= _VECTOR))

    has_address = columns["has_address"].astype(bool)
    s.mem_addrs = columns["address"].astype(np.int64)[has_address]

    # Branch pre-pass inputs: every BRANCH-class op, in trace order, as a
    # predictor shim.  Warm-up additionally predicts ops with no address and
    # a recorded outcome; non-branch ops among those are no-ops inside
    # ``predict_and_update`` and are skipped.
    taken = columns["taken"].astype(np.int64)
    target = columns["target"].astype(np.int64)
    has_target = columns["has_target"].astype(bool)
    indirect = columns["indirect"].astype(bool)
    pc = columns["pc"].astype(np.int64)
    br_positions = np.nonzero(s.is_brclass)[0]
    shims = []
    for pos in br_positions:
        shims.append(
            _BranchShim(
                int(pc[pos]),
                None if taken[pos] < 0 else bool(taken[pos]),
                int(target[pos]) if has_target[pos] else None,
                bool(indirect[pos]),
            )
        )
    s.br_positions = br_positions
    s.br_shims = shims
    return s


#: Bounded digest-keyed memo of per-trace static arrays (mirrors the decode
#: memo in :mod:`repro.workloads.decoded`).
_STATIC_MEMO: dict[str, _TraceStatic] = {}
_STATIC_MEMO_MAX = 256


def _static_for(decoded: DecodedTrace) -> _TraceStatic:
    key = decoded.digest
    hit = _STATIC_MEMO.get(key)
    if hit is not None:
        return hit
    static = _build_static(decoded)
    if len(_STATIC_MEMO) >= _STATIC_MEMO_MAX:
        _STATIC_MEMO.pop(next(iter(_STATIC_MEMO)))
    _STATIC_MEMO[key] = static
    return static


# ---------------------------------------------------------------------------
# Vectorised cache hierarchy (dense L1/L2, per-lane dict L3)
# ---------------------------------------------------------------------------


class _DenseLevel:
    """One batched cache level: ``(B, sets, ways)`` tags and LRU ticks.

    Replicates :class:`repro.coresim.caches.Cache` exactly: the tick counter
    increments on every lookup *and* fill, hits refresh the way's tick,
    misses insert into an invalid way if one exists, else evict the
    minimum-tick way.  Ticks are unique per lane-level, so victim choice is
    deterministic exactly like the dict implementation's min-by-value.
    """

    __slots__ = (
        "name",
        "num_sets",
        "assoc",
        "line_shift",
        "tags",
        "ticks",
        "tick",
        "accesses",
        "misses",
    )

    def __init__(self, name: str, config, lanes: int) -> None:
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.line_shift = config.line_size.bit_length() - 1
        self.tags = np.full((lanes, self.num_sets, self.assoc), -1, np.int64)
        self.ticks = np.zeros((lanes, self.num_sets, self.assoc), np.int64)
        self.tick = np.zeros(lanes, np.int64)
        self.accesses = np.zeros(lanes, np.int64)
        self.misses = np.zeros(lanes, np.int64)

    def _probe(self, lanes: np.ndarray, address: np.ndarray, count_stats: bool):
        """Shared lookup/fill body; returns the per-access hit mask.

        Hit ways get their tick refreshed; misses insert (into an invalid
        way if one exists, else the LRU victim).  The whole set row is
        written back in one scatter, which keeps the call count flat.
        """
        self.tick[lanes] += 1
        new_tick = self.tick[lanes]
        if count_stats:
            self.accesses[lanes] += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        set_tags = self.tags[lanes, set_index]  # (M, ways)
        set_ticks = self.ticks[lanes, set_index]
        match = (set_tags == tag[:, None]) & (set_ticks > 0)
        way = match.argmax(axis=1)
        rows = np.arange(lanes.shape[0])
        hit = match[rows, way]
        if hit.all():
            # pure-hit fast path: refresh the matched ways' ticks only
            set_ticks[rows, way] = new_tick
            self.ticks[lanes, set_index] = set_ticks
            return hit
        # way to write: the matching way on a hit; on a miss the first
        # invalid way, else the LRU (min-tick) way.
        invalid = set_ticks == 0
        victim = np.where(
            invalid.any(axis=1), invalid.argmax(axis=1), set_ticks.argmin(axis=1)
        )
        way = np.where(hit, way, victim)
        set_ticks[rows, way] = new_tick
        self.ticks[lanes, set_index] = set_ticks
        if count_stats:
            self.misses += np.bincount(lanes[~hit], minlength=self.misses.shape[0])
        set_tags[rows, way] = np.where(hit, set_tags[rows, way], tag)
        self.tags[lanes, set_index] = set_tags
        return hit

    def lookup(self, lanes: np.ndarray, address: np.ndarray) -> np.ndarray:
        """Masked batched ``Cache.lookup``; returns the per-access hit mask."""
        return self._probe(lanes, address, True)

    def fill(self, lanes: np.ndarray, address: np.ndarray) -> None:
        """Masked batched ``Cache.fill`` (no statistics)."""
        self._probe(lanes, address, False)

    def reset_stats(self) -> None:
        self.accesses[:] = 0
        self.misses[:] = 0

    def compact(self, keep: np.ndarray) -> None:
        """Shrink the level to the *keep* lanes (batch compaction)."""
        self.tags = self.tags[keep]
        self.ticks = self.ticks[keep]
        self.tick = self.tick[keep]
        self.accesses = self.accesses[keep]
        self.misses = self.misses[keep]


class _LazyCache:
    """Per-lane L3 stand-in for :class:`~repro.coresim.caches.Cache`.

    Behaviourally identical (same tick/LRU/eviction algorithm) but set dicts
    are created on first touch: a ``Cache`` eagerly allocates one dict per
    set, which for million-entry L3 configurations dominates batch set-up.
    Only the rare L2-miss path ever reaches this object.
    """

    __slots__ = ("num_sets", "associativity", "line_shift", "_sets", "_tick",
                 "accesses", "misses")

    def __init__(self, config) -> None:
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_shift = config.line_size.bit_length() - 1
        self._sets: dict[int, dict[int, int]] = {}
        self._tick = 0
        self.accesses = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = self._sets[set_index] = {}
        self.accesses += 1
        if tag in cache_set:
            cache_set[tag] = self._tick
            return True
        self.misses += 1
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick
        return False

    def fill(self, address: int) -> None:
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = self._sets[set_index] = {}
        if tag in cache_set:
            cache_set[tag] = self._tick
            return
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0


class _VectorCaches:
    """Batched L1/L2 plus per-lane dict L3, mirroring :class:`CacheHierarchy`."""

    def __init__(self, config: MicroarchConfig, lanes: int) -> None:
        self.config = config
        self.lanes = lanes
        self.l1 = _DenseLevel("l1d", config.l1, lanes)
        self.l2 = _DenseLevel("l2", config.l2, lanes)
        self.l3 = (
            [_LazyCache(config.l3) for _ in range(lanes)]
            if config.l3 is not None
            else None
        )
        self.line_size = config.l1.line_size
        self.memory_latency = max(
            30, int(round(CacheHierarchy.MEMORY_LATENCY_NS * config.clock_ghz))
        )
        self.lat_l1 = config.l1.latency
        self.lat_l2 = config.l2.latency
        self.lat_l3 = config.l3.latency if config.l3 is not None else 0
        # Deferred next-line prefetch fills: a fill only has to land before
        # the same lane's next lookup (fills carry no statistics), so misses
        # stage their prefetch here and whole batches flush at once.
        self.pending_fill = np.full(lanes, -1, np.int64)

    def flush_fills(self, among: "np.ndarray | None" = None) -> None:
        """Apply deferred prefetch fills — for *among* lanes, or all of them."""
        if among is None:
            rows = np.nonzero(self.pending_fill >= 0)[0]
        else:
            rows = among[self.pending_fill[among] >= 0]
        if rows.size == 0:
            return
        lines = self.pending_fill[rows]
        self.pending_fill[rows] = -1
        self.l1.fill(rows, lines)
        self.l2.fill(rows, lines)
        if self.l3 is not None:
            for i, line in zip(rows, lines):
                self.l3[int(i)].fill(int(line))

    def access(self, lanes: np.ndarray, address: np.ndarray) -> np.ndarray:
        """Batched ``CacheHierarchy.access``; returns per-access latency."""
        # a lane's staged prefetch must land before its next lookup
        self.flush_fills(lanes)
        l1_hit = self.l1.lookup(lanes, address)
        if l1_hit.all():
            # every access hit L1: no outer levels touched, no prefetch
            return np.full(lanes.shape[0], self.lat_l1, np.int64)
        latency = np.full(lanes.shape[0], self.lat_l1, np.int64)
        miss1 = np.nonzero(~l1_hit)[0]
        latency[miss1] += self.lat_l2
        l2_hit = self.l2.lookup(lanes[miss1], address[miss1])
        miss2 = miss1[~l2_hit]
        if miss2.size:
            if self.l3 is not None:
                latency[miss2] += self.lat_l3
                for i in miss2:
                    if not self.l3[lanes[i]].lookup(int(address[i])):
                        latency[i] += self.memory_latency
            else:
                latency[miss2] += self.memory_latency
        # next-line prefetch after a non-L1 hit, staged for a later flush
        self.pending_fill[lanes[miss1]] = address[miss1] + self.line_size
        return latency

    def warm_access(self, lanes: np.ndarray, address: np.ndarray) -> None:
        """Warm-up access: identical state evolution to :meth:`access`, but
        the latency result and the statistics updates are skipped — warm-up
        resets statistics immediately afterwards, so only the tag/LRU state
        must match."""
        l1_hit = self.l1._probe(lanes, address, False)
        if l1_hit.all():
            return
        miss1 = np.nonzero(~l1_hit)[0]
        l2_hit = self.l2._probe(lanes[miss1], address[miss1], False)
        if self.l3 is not None:
            miss2 = miss1[~l2_hit]
            for i in miss2:
                self.l3[lanes[i]].lookup(int(address[i]))
        next_line = address[miss1] + self.line_size
        self.l1.fill(lanes[miss1], next_line)
        self.l2.fill(lanes[miss1], next_line)
        if self.l3 is not None:
            for i, line in zip(miss1, next_line):
                self.l3[lanes[i]].fill(int(line))

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        if self.l3 is not None:
            for cache in self.l3:
                cache.reset_stats()

    def compact(self, keep: np.ndarray) -> None:
        """Shrink the hierarchy to the *keep* lanes (batch compaction)."""
        self.l1.compact(keep)
        self.l2.compact(keep)
        if self.l3 is not None:
            self.l3 = [self.l3[int(i)] for i in keep]
        self.pending_fill = self.pending_fill[keep]
        self.lanes = int(keep.size)

    def lane_stats(self, lane: int) -> dict[str, int]:
        stats = {
            "cache.l1d.accesses": int(self.l1.accesses[lane]),
            "cache.l1d.misses": int(self.l1.misses[lane]),
            "cache.l2.accesses": int(self.l2.accesses[lane]),
            "cache.l2.misses": int(self.l2.misses[lane]),
        }
        if self.l3 is not None:
            stats["cache.l3.accesses"] = self.l3[lane].accesses
            stats["cache.l3.misses"] = self.l3[lane].misses
        return stats


# ---------------------------------------------------------------------------
# The lockstep batch run
# ---------------------------------------------------------------------------


def _port_pick_table(config: MicroarchConfig) -> tuple[np.ndarray, np.ndarray, int]:
    """(used-port-mask, op-class) -> chosen port, and its bitmask form.

    ``pick[mask, cls]`` is the first port in the class's preference order not
    in *mask* (-1 when every candidate is taken — a port conflict);
    ``bit[mask, cls]`` is ``1 << port`` for that choice, 0 on conflict, so
    the hot path ORs it straight into the per-lane used mask.
    """
    num_ports = config.ports.num_ports
    class_ports = [
        [p.index for p in config.ports.ports_for(op_class)] for op_class in OpClass
    ]
    pick = np.full((1 << num_ports, _NUM_CLASSES), -1, np.int64)
    for mask in range(1 << num_ports):
        for cls in range(_NUM_CLASSES):
            for port in class_ports[cls]:
                if not (mask >> port) & 1:
                    pick[mask, cls] = port
                    break
    bit = np.where(pick >= 0, 1 << np.maximum(pick, 0), 0).astype(np.int64)
    return pick, bit, num_ports


class _Lane:
    """Per-lane Python-side objects (sampler, predictor prefix, result)."""

    __slots__ = ("sampler", "bp_prefix", "series", "trace_len")

    def __init__(self, step_cycles: int, trace_len: int) -> None:
        self.sampler = TimeSeriesSampler(step_cycles)
        self.bp_prefix: np.ndarray | None = None
        self.series: CounterTimeSeries | None = None
        self.trace_len = trace_len


_BP_STAT_NAMES = (
    "bp.lookups",
    "bp.mispredicts",
    "bp.direction_mispredicts",
    "bp.indirect_lookups",
    "bp.indirect_mispredicts",
    "bp.btb_lookups",
    "bp.btb_hits",
)


def _bp_stats_tuple(predictor: BranchPredictor) -> tuple[int, ...]:
    return (
        predictor.lookups,
        predictor.mispredicts,
        predictor.direction_mispredicts,
        predictor.indirect_lookups,
        predictor.indirect_mispredicts,
        predictor.btb_lookups,
        predictor.btb_hits,
    )


class VectorBatch:
    """One lockstep run: *B* traces on one config, one (eligible) bug."""

    def __init__(
        self,
        config: MicroarchConfig,
        traces: "list[DecodedTrace]",
        bug: "CoreBugModel | None",
        step_cycles: int,
        warmup: bool,
    ) -> None:
        if not supports_vector(bug):
            raise ValueError(
                f"bug model {getattr(bug, 'name', bug)!r} overrides dynamic hooks; "
                "use the scalar kernel"
            )
        self.config = config
        self.bug = bug if bug is not None else BUG_FREE
        self.step_cycles = step_cycles
        self.warmup = warmup
        self.statics = [_static_for(t) for t in traces]
        for static in self.statics:
            if static.n == 0:
                raise ValueError("cannot simulate an empty trace")
        self.B = len(traces)

    # -- precomputation ------------------------------------------------------

    def _prepass(self):
        """Warm the predictor/caches and precompute per-lane branch outcomes."""
        B = self.B
        statics = self.statics
        config = self.config
        caches = _VectorCaches(config, B)

        # Cache warm-up: trace-order accesses, lockstep over packed per-lane
        # address lists.  Statistics accumulate exactly as in the scalar
        # warm-up and are reset afterwards (LRU ticks are not).
        if self.warmup:
            mem_counts = np.array([s.mem_addrs.shape[0] for s in statics])
            m_max = int(mem_counts.max()) if B else 0
            if m_max:
                packed = np.zeros((B, m_max), np.int64)
                for lane, s in enumerate(statics):
                    packed[lane, : s.mem_addrs.shape[0]] = s.mem_addrs
                all_lanes = np.arange(B)
                min_count = int(mem_counts.min())
                for col in range(m_max):
                    if col < min_count:
                        caches.warm_access(all_lanes, packed[:, col])
                    else:
                        lanes = np.nonzero(mem_counts > col)[0]
                        caches.warm_access(lanes, packed[lanes, col])
            caches.reset_stats()

        # Branch pre-pass: per lane, replay the real predictor over the
        # branch stream (optionally warming it first), recording the
        # mispredict flag and the cumulative predictor statistics after
        # every BRANCH-class op.
        bug = self.bug
        lanes = [_Lane(self.step_cycles, s.n) for s in statics]
        mispred = []
        for lane_index, s in enumerate(statics):
            bug.on_simulation_start(config)
            predictor = BranchPredictor(config, bug)
            if self.warmup:
                for shim in s.br_shims:
                    predictor.predict_and_update(shim)
                predictor.reset_stats()
            nb = len(s.br_shims)
            flags = np.zeros(s.n, bool)
            prefix = np.zeros((nb + 1, len(_BP_STAT_NAMES)), np.int64)
            for j, (pos, shim) in enumerate(zip(s.br_positions, s.br_shims)):
                flags[pos] = predictor.predict_and_update(shim)
                prefix[j + 1] = _bp_stats_tuple(predictor)
            lanes[lane_index].bp_prefix = prefix
            mispred.append(flags)
        return caches, lanes, mispred

    # -- helpers -------------------------------------------------------------

    def _pad2(self, arrays: "list[np.ndarray]", pad, width: int, dtype) -> np.ndarray:
        out = np.full((self.B, width), pad, dtype)
        for lane, arr in enumerate(arrays):
            out[lane, : arr.shape[0]] = arr
        return out

    # -- the run -------------------------------------------------------------

    def run(self) -> "list[CounterTimeSeries]":
        config = self.config
        B = self.B
        statics = self.statics
        step_cycles = self.step_cycles

        width = config.width
        rob_size = config.rob_size
        iq_size = config.iq_size
        lsq_size = config.lsq_size
        capacity = config.fetch_buffer

        reduction = max(0, self.bug.register_reduction())
        free_init = max(1, config.num_phys_regs - NUM_ARCH_REGS - reduction)

        latency_of = {
            OpClass.INT_ALU: 1,
            OpClass.INT_MULT: config.mult_latency,
            OpClass.INT_DIV: config.div_latency,
            OpClass.FP_ALU: config.fp_latency,
            OpClass.FP_MULT: config.fp_latency,
            OpClass.FP_DIV: config.div_latency,
            OpClass.VECTOR: config.fp_latency,
            OpClass.LOAD: 0,
            OpClass.STORE: 1,
            OpClass.BRANCH: 1,
        }
        lat_by_class = np.array([latency_of[c] for c in OpClass], np.int64)
        port_pick, port_bit, num_ports = _port_pick_table(config)

        caches, lanes, mispred_flags = self._prepass()

        lane_len = np.array([s.n for s in statics], np.int64)
        L = int(lane_len.max())
        Lp = L + width + 2  # padded so width-windows never index out of range

        def pack(attr, pad, dtype):
            return self._pad2([getattr(s, attr) for s in statics], pad, Lp, dtype)

        # Narrow dtypes keep the randomly-gathered per-op arrays small enough
        # to stay cache-resident — gathers dominate the per-step cost.
        op_class = pack("op_class", 0, np.int8)
        is_mem = pack("is_mem", False, bool)
        has_dest = pack("has_dest", False, bool)
        address = pack("address", 0, np.int64)
        last_store_ord = pack("last_store_ord", -1, np.int32)
        # flattened views for np.take-based gathers in the issue loop
        lane_base = (np.arange(B) * Lp).astype(np.int64)
        op_class_flat = op_class.ravel()
        address_flat = address.ravel()
        last_store_flat = last_store_ord.ravel()
        n_slots = max(s.srcs.shape[0] for s in statics)
        prod = np.full((n_slots, B, Lp), -1, np.int32)
        for lane, s in enumerate(statics):
            prod[: s.prod.shape[0], lane, : s.n] = s.prod
        cons_off = self._pad2([s.cons_off for s in statics], 0, Lp + 1, np.int32)
        for lane, s in enumerate(statics):
            # pad the offset tail with the final edge count so ops beyond the
            # trace have zero consumers
            cons_off[lane, s.n + 1 :] = s.cons_off[s.n]
        e_max = max(int(s.cons_data.shape[0]) for s in statics)
        cons_data = self._pad2([s.cons_data for s in statics], 0, max(1, e_max), np.int32)

        p_mem = self._pad2([s.p_mem for s in statics], 0, Lp + 1, np.int32)
        p_dest = self._pad2([s.p_dest for s in statics], 0, Lp + 1, np.int32)
        p_brclass = self._pad2([s.p_brclass for s in statics], 0, Lp + 1, np.int32)
        p_load = self._pad2([s.p_load for s in statics], 0, Lp + 1, np.int32)
        p_store = self._pad2([s.p_store for s in statics], 0, Lp + 1, np.int32)
        p_fp = self._pad2([s.p_fp for s in statics], 0, Lp + 1, np.int32)
        for arrays, sources in (
            (p_mem, "p_mem"),
            (p_dest, "p_dest"),
            (p_brclass, "p_brclass"),
            (p_load, "p_load"),
            (p_store, "p_store"),
            (p_fp, "p_fp"),
        ):
            for lane, s in enumerate(statics):
                arrays[lane, s.n + 1 :] = getattr(s, sources)[s.n]

        pfx_md = np.stack([p_mem, p_dest])  # (2, B, Lp+1) fused dispatch gather

        mispred = self._pad2(mispred_flags, False, Lp, bool)
        p_mispred = np.zeros((B, Lp + 1), np.int32)
        np.cumsum(mispred, axis=1, out=p_mispred[:, 1:])
        # next_mispred[i]: first mispredicted-branch index >= i (or BIG).
        BIG = np.int32(2**31 - 1)
        next_mispred = np.full((B, Lp + 1), BIG, np.int32)
        idx = np.where(mispred, np.arange(Lp, dtype=np.int32)[None, :], BIG)
        next_mispred[:, :Lp] = np.minimum.accumulate(idx[:, ::-1], axis=1)[:, ::-1]

        # -- dynamic state ----------------------------------------------------
        cycle = np.zeros(B, np.int64)
        commit_head = np.zeros(B, np.int64)
        dispatch_ptr = np.zeros(B, np.int64)
        fetch_ptr = np.zeros(B, np.int64)
        issued_total = np.zeros(B, np.int64)
        wb_total = np.zeros(B, np.int64)
        fetch_block_op = np.full(B, -1, np.int64)
        fetch_resume = np.zeros(B, np.int64)
        last_sample = np.zeros(B, np.int64)
        max_cycles = lane_len * MAX_CYCLES_PER_INSTRUCTION + 10_000

        completed = np.zeros((B, Lp), bool)
        pending = np.zeros((B, Lp), np.int16)
        woken = np.zeros((B, Lp), bool)

        # finish-time slots for in-flight (issued, not written back) ops.
        # Slots come from a per-lane LIFO free stack: the highest slot index
        # ever in use equals the peak concurrent in-flight count, so the
        # per-cycle completion scan (and the fast-forward min) only touch
        # ``[:, :slot_peak]`` — usually a few dozen columns, not the whole
        # ROB-sized capacity.
        FCAP = rob_size
        finish_time = np.zeros((B, FCAP), np.int32)
        finish_op = np.zeros((B, FCAP), np.int32)
        freestack = np.broadcast_to(
            np.arange(FCAP - 1, -1, -1, dtype=np.int32), (B, FCAP)
        ).copy()
        free_sp = np.full(B, FCAP, np.int64)  # stack pointer = free-slot count
        slot_peak = 1

        # Eligible-op buffer: live op indices in columns [0, elig_count),
        # ascending, sentinel-padded.  Appends land unsorted at the tail and
        # issues punch sentinel holes; one row-wise sort restores the
        # invariant before the next scan (the `dirty` flag).
        ECAP = iq_size + 2 * max(width, 8) + 8
        elig = np.full((B, ECAP), _SENT, np.int64)
        elig_used = np.zeros(B, np.int64)  # tail position incl. holes
        elig_count = np.zeros(B, np.int64)  # live entries
        elig_dirty = False
        Lp_top = np.int64(Lp - 1)
        batch_has_divs = bool(
            np.any((op_class == _INT_DIV) | (op_class == _FP_DIV))
        )

        next_wake_lanes = np.zeros(0, np.int64)
        next_wake_ops = np.zeros(0, np.int64)
        nw_mask = np.zeros(B, bool)

        port_busy_until = np.zeros((B, num_ports), np.int64)
        busy_horizon = -1  # no division in flight anywhere
        pow2_ports = (1 << np.arange(num_ports)).astype(np.int64)

        # -- counters ---------------------------------------------------------
        c = {
            name: np.zeros(B, np.int64)
            for name in (
                "commit.idle_cycles",
                "commit.max_width_cycles",
                "issue.empty_cycles",
                "issue.stall_cycles",
                "issue.max_width_cycles",
                "issue.port_conflicts",
                "dispatch.stall_cycles",
                "dispatch.stall_rob_full",
                "dispatch.stall_iq_full",
                "dispatch.stall_lsq_full",
                "rename.stall_cycles_regs",
                "fetch.stall_cycles",
                "fetch.cycles_active",
                "lsq.forwarded_loads",
            )
        }
        issue_class = np.zeros((B, _NUM_CLASSES), np.int64)
        rob_occ_sum = np.zeros(B, np.int64)
        iq_occ_sum = np.zeros(B, np.int64)
        lsq_occ_sum = np.zeros(B, np.int64)

        active = lane_len > 0
        ar = np.arange(B)
        # Lanes are compacted out of the batch as they finish (see the lane
        # finish section); `lane_map` maps current rows back to the original
        # batch position, and results accumulate into the out_* arrays.
        lane_map = np.arange(B)
        out_cycles = np.zeros(B, np.int64)
        out_committed = np.zeros(B, np.int64)
        #: original lane indices handed to the scalar kernel (stragglers)
        self.fallback: list[int] = []

        def lane_cumulative(lane: int) -> dict[str, float]:
            """Cumulative counter dict for one lane, scalar-identical.

            Plain pipeline counters appear only when non-zero (the scalar
            dict is lazily populated); occupancy sums, predictor stats and
            cache stats are always present.
            """
            out: dict[str, float] = {}
            head = int(commit_head[lane])
            fp = int(fetch_ptr[lane])
            values = (
                ("commit.instructions", head),
                ("commit.register_writes", int(p_dest[lane, head])),
                ("commit.branches", int(p_brclass[lane, head])),
                ("commit.loads", int(p_load[lane, head])),
                ("commit.stores", int(p_store[lane, head])),
                ("commit.fp_instructions", int(p_fp[lane, head])),
                ("commit.idle_cycles", int(c["commit.idle_cycles"][lane])),
                ("commit.max_width_cycles", int(c["commit.max_width_cycles"][lane])),
                ("writeback.instructions", int(wb_total[lane])),
                ("issue.instructions", int(issued_total[lane])),
                ("issue.empty_cycles", int(c["issue.empty_cycles"][lane])),
                ("issue.stall_cycles", int(c["issue.stall_cycles"][lane])),
                ("issue.max_width_cycles", int(c["issue.max_width_cycles"][lane])),
                ("issue.port_conflicts", int(c["issue.port_conflicts"][lane])),
                ("dispatch.instructions", int(dispatch_ptr[lane])),
                ("dispatch.stall_cycles", int(c["dispatch.stall_cycles"][lane])),
                ("dispatch.stall_rob_full", int(c["dispatch.stall_rob_full"][lane])),
                ("dispatch.stall_iq_full", int(c["dispatch.stall_iq_full"][lane])),
                ("dispatch.stall_lsq_full", int(c["dispatch.stall_lsq_full"][lane])),
                ("rename.stall_cycles_regs", int(c["rename.stall_cycles_regs"][lane])),
                ("fetch.instructions", fp),
                ("fetch.branches", int(p_brclass[lane, fp])),
                ("fetch.mispredicted_branches", int(p_mispred[lane, fp])),
                ("fetch.stall_cycles", int(c["fetch.stall_cycles"][lane])),
                ("fetch.cycles_active", int(c["fetch.cycles_active"][lane])),
                ("lsq.forwarded_loads", int(c["lsq.forwarded_loads"][lane])),
            )
            for name, value in values:
                if value:
                    out[name] = float(value)
            for cls in range(_NUM_CLASSES):
                value = int(issue_class[lane, cls])
                if value:
                    out[f"issue.class.{OpClass(cls).name}"] = float(value)
            out["rob.occupancy_sum"] = float(rob_occ_sum[lane])
            out["iq.occupancy_sum"] = float(iq_occ_sum[lane])
            out["lsq.occupancy_sum"] = float(lsq_occ_sum[lane])
            bp_row = lanes[int(lane_map[lane])].bp_prefix[int(p_brclass[lane, fp])]
            for name, value in zip(_BP_STAT_NAMES, bp_row):
                out[name] = float(value)
            for name, value in caches.lane_stats(lane).items():
                out[name] = float(value)
            return out

        def sort_elig() -> None:
            """Restore the sorted-compact eligible invariant (sentinel tail).

            Only the prefix columns that can hold live entries or holes are
            sorted — ``elig_used`` bounds them, and it is typically a dozen
            columns, not the full capacity.
            """
            nonlocal elig_used, elig_dirty
            used = int(elig_used.max())
            if used:
                elig[:, :used].sort(axis=1)
            elig_used = elig_count.copy()
            elig_dirty = False

        def append_elig(wl: np.ndarray, wo: np.ndarray) -> None:
            """Append (lane, op) wake pairs at the eligible-buffer tails."""
            nonlocal elig_used, elig_count, elig_dirty
            counts = np.bincount(wl, minlength=B)
            if int((elig_used + counts).max()) > ECAP:
                sort_elig()
            if wl.shape[0] > 1:
                order = np.argsort(wl, kind="stable")
                wl = wl[order]
                wo = wo[order]
            run_start = np.zeros(B + 1, np.int64)
            np.cumsum(counts, out=run_start[1:])
            rank = np.arange(wl.shape[0]) - run_start[wl]
            elig[wl, elig_used[wl] + rank] = wo
            elig_used = elig_used + counts
            elig_count = elig_count + counts
            elig_dirty = True

        # ------------------------------------------------------------------
        # main lockstep loop
        # ------------------------------------------------------------------
        while True:
            act = active
            if not act.any():
                break
            cycle += act  # active lanes advance one cycle (bool adds as 0/1)
            if (cycle > max_cycles).any():
                lane = int(np.nonzero(act & (cycle > max_cycles))[0][0])
                raise PipelineError(
                    f"pipeline exceeded {int(max_cycles[lane])} cycles for "
                    f"{int(lane_len[lane])} instructions on {config.name} "
                    f"with bug {self.bug.name!r}"
                )

            # ------------------------------------------------------ commit
            rob_nonempty = act & (commit_head < dispatch_ptr)
            win = completed[
                ar[:, None], np.minimum(commit_head[:, None] + np.arange(width), Lp - 1)
            ]
            k = np.where(
                rob_nonempty, np.cumprod(win, axis=1).sum(axis=1), 0
            )
            committing = k > 0
            c["commit.idle_cycles"] += act & ~committing
            c["commit.max_width_cycles"] += committing & (k >= width)
            commit_head += k

            # --------------------------------------------------- writeback
            any_blocked = bool((fetch_block_op >= 0).any())
            wb_mask = finish_time[:, :slot_peak] == cycle.astype(np.int32)[:, None]
            wl, ws = np.nonzero(wb_mask)
            if wl.size:
                ops = finish_op[wl, ws].astype(np.int64)
                finish_time[wl, ws] = 0
                completed[wl, ops] = True
                counts_wb = np.bincount(wl, minlength=B)
                wb_total += counts_wb
                # return the freed slots to the per-lane stacks (wl arrives
                # lane-sorted from nonzero's row-major order)
                run_start_wb = np.zeros(B + 1, np.int64)
                np.cumsum(counts_wb, out=run_start_wb[1:])
                rank_wb = np.arange(wl.shape[0]) - run_start_wb[wl]
                freestack[wl, free_sp[wl] + rank_wb] = ws
                free_sp += counts_wb
                # fetch unblock on mispredicted-branch completion
                if any_blocked:
                    unblock = ops == fetch_block_op[wl]
                    if unblock.any():
                        ul = wl[unblock]
                        fetch_resume[ul] = cycle[ul] + BASE_REDIRECT_PENALTY
                        fetch_block_op[ul] = -1
                # consumer walk over the static CSR, all edges expanded flat
                off0 = cons_off[wl, ops]
                cnt = cons_off[wl, ops + 1] - off0
                total_edges = int(cnt.sum())
                if total_edges:
                    pair = np.repeat(np.arange(cnt.shape[0]), cnt)
                    ends = np.cumsum(cnt)
                    within = np.arange(total_edges) - np.repeat(ends - cnt, cnt)
                    cl = wl[pair]
                    cons = cons_data[cl, off0[pair] + within]
                    dispatched = cons < dispatch_ptr[cl]
                    dsel = np.nonzero(dispatched)[0]
                    if dsel.size:
                        tl = cl[dsel]
                        tc = cons[dsel]
                        np.add.at(pending, (tl, tc), -1)
                        ready_now = (pending[tl, tc] == 0) & ~woken[tl, tc]
                        sel = np.nonzero(ready_now)[0]
                        if sel.size:
                            tl = tl[sel]
                            tc = tc[sel]
                            if tl.shape[0] > 1:
                                # a consumer fed twice by producers completing
                                # this very cycle appears twice; wake it once
                                _, keep = np.unique(tl * Lp + tc, return_index=True)
                                tl = tl[keep]
                                tc = tc[keep]
                            woken[tl, tc] = True
                            append_elig(tl, tc)

            # -------------------------------------------------------- wake
            if next_wake_lanes.size:
                append_elig(next_wake_lanes, next_wake_ops)
                nw_mask[:] = False
                next_wake_lanes = np.zeros(0, np.int64)
                next_wake_ops = np.zeros(0, np.int64)

            # ------------------------------------------------------- issue
            iq_count = dispatch_ptr - issued_total
            ready_lanes = act & (elig_count > 0)
            c["issue.stall_cycles"] += act & ~ready_lanes & (iq_count > 0)
            c["issue.empty_cycles"] += act & ~ready_lanes & (iq_count == 0)
            if ready_lanes.any():
                if elig_dirty:
                    sort_elig()
                n_cand = elig_count.copy()
                sq_committed = p_store[ar, commit_head]
                issued_cyc = np.zeros(B, np.int64)
                ports_used = np.zeros(B, np.int64)
                conflicts = np.zeros(B, np.int64)
                if busy_horizon >= int(cycle[act].min()):
                    busy_cols = port_busy_until > cycle[:, None]
                    busy = (busy_cols * pow2_ports[None, :]).sum(axis=1)
                    if not busy_cols.any():
                        busy_horizon = -1
                else:
                    busy = None
                scan = ready_lanes
                p = 0
                while True:
                    have = scan & (issued_cyc < width) & (p < n_cand)
                    if not have.any():
                        break
                    scan = have
                    # SENT-padded columns clip to a harmless in-range index;
                    # every use below is masked by `have`/`do`.
                    op = np.minimum(elig[:, p], Lp_top)
                    flat = lane_base + op
                    cls = op_class_flat.take(flat)
                    pick = ports_used if busy is None else ports_used | busy
                    bits = port_bit[pick, cls]
                    conflict = have & (bits == 0)
                    conflicts += conflict
                    do = have & ~conflict
                    if do.any():
                        lat = lat_by_class.take(cls)
                        if batch_has_divs:
                            # record the divider's port before ports_used
                            # absorbs this iteration's bits: `pick` may alias
                            # ports_used, and the chosen port is defined by
                            # the pre-issue mask
                            is_div = do & ((cls == _INT_DIV) | (cls == _FP_DIV))
                            if is_div.any():
                                dvl = np.nonzero(is_div)[0]
                                port = port_pick[pick[dvl], cls[dvl]]
                                port_busy_until[dvl, port] = cycle[dvl] + lat[dvl]
                                busy_horizon = max(
                                    busy_horizon, int((cycle[dvl] + lat[dvl]).max())
                                )
                        ports_used = ports_used | np.where(do, bits, 0)
                        ld = do & (cls == _LOAD)
                        st = do & (cls == _STORE)
                        fwd = ld & (last_store_flat.take(flat) >= sq_committed)
                        c["lsq.forwarded_loads"] += fwd
                        mem = st | (ld & ~fwd)
                        if mem.any():
                            ml = np.nonzero(mem)[0]
                            mem_lat = caches.access(ml, address_flat.take(flat[ml]))
                            lat[ml] = mem_lat
                            lat = np.where(fwd | st, 1, lat)
                        finish = cycle + np.maximum(lat, 1)
                        dl = np.nonzero(do)[0]
                        sp = free_sp[dl] - 1
                        slot = freestack[dl, sp]
                        free_sp[dl] = sp
                        top = int(slot.max()) + 1
                        if top > slot_peak:
                            slot_peak = top
                        finish_time[dl, slot] = finish[dl]
                        finish_op[dl, slot] = op[dl]
                        elig[dl, p] = _SENT
                        elig_count -= do
                        issued_cyc += do
                        issue_class[dl, cls[dl]] += 1
                    p += 1
                did = ready_lanes & (issued_cyc > 0)
                c["issue.port_conflicts"] += conflicts
                c["issue.stall_cycles"] += ready_lanes & ~did
                c["issue.max_width_cycles"] += did & (issued_cyc >= width)
                issued_total += issued_cyc
                if did.any():
                    elig_dirty = True
                iq_count = dispatch_ptr - issued_total
                # batch-flush the prefetches this cycle's misses staged
                caches.flush_fills()

            # ---------------------------------------------------- dispatch
            fq_len = fetch_ptr - dispatch_ptr
            can_disp = act & (fq_len > 0)
            if can_disp.any():
                d0 = dispatch_ptr
                rob_len = d0 - commit_head
                # Conservative all-clear test: when every lane has `width`
                # free slots in every structure, no per-slot constraint can
                # fire and the window gathers are skipped entirely.
                lsq_head = p_mem[ar, commit_head]
                dest_head = p_dest[ar, commit_head]
                lsq_occ0 = p_mem[ar, d0] - lsq_head
                free0 = free_init - (p_dest[ar, d0] - dest_head)
                clear = (
                    (rob_len + width <= rob_size)
                    & (iq_count + width <= iq_size)
                    & (lsq_occ0 + width <= lsq_size)
                    & (free0 > width)
                )
                j = np.arange(width)[None, :]
                # lanes passing the all-clear test dispatch min(queue, width);
                # only the congested subset pays for the per-slot windows
                k = np.where(can_disp, np.minimum(fq_len, width), 0)
                hard = can_disp & ~clear
                if hard.any():
                    r = np.nonzero(hard)[0]
                    wini = np.minimum(d0[r][:, None] + np.arange(width + 1), Lp)
                    w_md = pfx_md[:, r[:, None], wini]  # (2, M, width+1)
                    w_mem = w_md[0]
                    w_dest = w_md[1]
                    op_is_mem = (w_mem[:, 1:] - w_mem[:, :-1]) > 0
                    op_has_dest = (w_dest[:, 1:] - w_dest[:, :-1]) > 0
                    mem_before = w_mem[:, :-1] - w_mem[:, :1]
                    dest_before = w_dest[:, :-1] - w_dest[:, :1]
                    rob_r = rob_len[r]
                    iq_r = iq_count[r]
                    ok = (
                        (j < fq_len[r][:, None])
                        & (rob_r[:, None] + j < rob_size)
                        & (iq_r[:, None] + j < iq_size)
                        & (~op_is_mem | (lsq_occ0[r][:, None] + mem_before < lsq_size))
                        & (~op_has_dest | (free0[r][:, None] - dest_before > 0))
                    )
                    kr = np.cumprod(ok, axis=1).sum(axis=1)
                    k[r] = kr
                    # stall-reason accounting: fires when the break happened
                    # on a constraint (k < width, queue still had entries).
                    stopped = (kr < width) & (kr < fq_len[r])
                    if stopped.any():
                        mr = np.arange(r.shape[0])
                        at = np.minimum(kr, width - 1)
                        s_rob = stopped & (rob_r + kr >= rob_size)
                        s_iq = stopped & ~s_rob & (iq_r + kr >= iq_size)
                        head_mem = op_is_mem[mr, at]
                        head_dest = op_has_dest[mr, at]
                        s_lsq = (
                            stopped
                            & ~s_rob
                            & ~s_iq
                            & head_mem
                            & (lsq_occ0[r] + mem_before[mr, at] >= lsq_size)
                        )
                        s_reg = stopped & ~s_rob & ~s_iq & ~s_lsq
                        c["dispatch.stall_rob_full"][r] += s_rob
                        c["dispatch.stall_iq_full"][r] += s_iq
                        c["dispatch.stall_lsq_full"][r] += s_lsq
                        c["rename.stall_cycles_regs"][r] += s_reg & head_dest
                    c["dispatch.stall_cycles"][r] += kr == 0

                disp = k > 0
                if disp.any():
                    # pending counts: producers not yet completed at dispatch
                    pend = np.zeros((B, width), np.int16)
                    opj = np.minimum(d0[:, None] + j, Lp - 1)
                    in_group = j < k[:, None]
                    for slot in range(n_slots):
                        producer = prod[slot][ar[:, None], opj]
                        linked = (
                            in_group
                            & (producer >= 0)
                            & ~completed[ar[:, None], np.where(producer < 0, 0, producer)]
                        )
                        pend += linked.astype(np.int16)
                    rows, cols = np.nonzero(in_group)
                    ops_d = opj[rows, cols]
                    pending[rows, ops_d] = pend[rows, cols]
                    zero = pend[rows, cols] == 0
                    zl = rows[zero]
                    zo = ops_d[zero]
                    woken[zl, zo] = True
                    next_wake_lanes = zl.astype(np.int64)
                    next_wake_ops = zo.astype(np.int64)
                    nw_mask[zl] = True
                    dispatch_ptr = dispatch_ptr + k

            # ------------------------------------------------------- fetch
            blocked = fetch_block_op >= 0
            stall_f = act & (blocked | (cycle < fetch_resume))
            c["fetch.stall_cycles"] += stall_f
            fq_len = fetch_ptr - dispatch_ptr
            can_fetch = (
                act
                & ~stall_f
                & (fetch_ptr < lane_len)
                & (fq_len < capacity)
            )
            if can_fetch.any():
                n_f = np.minimum(width, np.minimum(capacity - fq_len, lane_len - fetch_ptr))
                nm = next_mispred[ar, np.minimum(fetch_ptr, Lp)]
                stop_at = nm - fetch_ptr + 1
                hit_mp = can_fetch & (stop_at <= n_f)
                n_f = np.where(hit_mp, stop_at, n_f)
                n_f = np.where(can_fetch, n_f, 0)
                fetch_ptr = fetch_ptr + n_f
                c["fetch.cycles_active"] += can_fetch
                ml = np.nonzero(hit_mp)[0]
                if ml.size:
                    fetch_block_op[ml] = fetch_ptr[ml] - 1

            # ------------------------------------------- occupancy + sample
            # Finished lanes have empty structures (head == tail == length),
            # so the unmasked adds contribute exactly zero for them.
            rob_len = dispatch_ptr - commit_head
            iq_count = dispatch_ptr - issued_total
            lsq_occ = p_mem[ar, dispatch_ptr] - p_mem[ar, commit_head]
            rob_occ_sum += rob_len
            iq_occ_sum += iq_count
            lsq_occ_sum += lsq_occ

            sample_now = act & (cycle - last_sample >= step_cycles)
            if sample_now.any():
                for lane in np.nonzero(sample_now)[0]:
                    lanes[int(lane_map[lane])].sampler.sample(
                        lane_cumulative(int(lane))
                    )
                last_sample = np.where(sample_now, cycle, last_sample)

            # ------------------------------------------------ fast-forward
            # All remaining work happens on the (usually small) subset of
            # lanes that might skip, so the per-step cost of this block does
            # not scale with the batch.
            head_done = completed[ar, np.minimum(commit_head, Lp - 1)]
            inflight = issued_total - wb_total
            ffable = (
                act
                & (elig_count == 0)
                & ~((commit_head < dispatch_ptr) & head_done)
                & (inflight > 0)
            )
            if next_wake_lanes.size:
                ffable &= ~nw_mask
            if ffable.any():
                r = np.nonzero(ffable)[0]
                r_cycle = cycle[r]
                r_fb = fetch_block_op[r]
                r_fp = fetch_ptr[r]
                r_dp = dispatch_ptr[r]
                r_ch = commit_head[r]
                r_resume = fetch_resume[r]
                r_len = lane_len[r]
                blocked = r_fb >= 0
                fq_len_r = r_fp - r_dp
                fetch_idle = (
                    blocked
                    | (r_cycle + 1 < r_resume)
                    | (r_fp >= r_len)
                    | (fq_len_r >= capacity)
                )
                # dispatch must be empty-handed or provably blocked
                head = np.minimum(r_dp, Lp - 1)
                head_mem = is_mem[r, head]
                head_dest = has_dest[r, head]
                free_regs = free_init - (p_dest[r, r_dp] - p_dest[r, r_ch])
                rob_len_r = r_dp - r_ch
                iq_count_r = iq_count[r]
                lsq_occ_r = lsq_occ[r]
                rob_full = rob_len_r >= rob_size
                iq_full = iq_count_r >= iq_size
                lsq_full = head_mem & (lsq_occ_r >= lsq_size)
                reg_block = head_dest & (free_regs <= 0)
                disp_blocked = rob_full | iq_full | lsq_full | reg_block
                go = fetch_idle & ((fq_len_r == 0) | disp_blocked)
                if go.any():
                    ft = finish_time[:, :slot_peak][r].astype(np.int64)
                    min_finish = np.where(ft > 0, ft, _SENT).min(axis=1)
                    event = np.minimum(last_sample[r] + step_cycles, min_finish)
                    fetch_can = (
                        ~blocked
                        & (r_fp < r_len)
                        & (fq_len_r < capacity)
                        & (r_resume < event)
                    )
                    event = np.where(fetch_can, np.minimum(event, r_resume), event)
                    event = np.minimum(event, max_cycles[r] + 1)
                    skipped = np.where(go, event - r_cycle - 1, 0)
                    skip = skipped > 0
                    if skip.any():
                        skipped = np.where(skip, skipped, 0)
                        c["commit.idle_cycles"][r] += skipped
                        c["issue.empty_cycles"][r] += np.where(
                            iq_count_r == 0, skipped, 0
                        )
                        c["issue.stall_cycles"][r] += np.where(
                            iq_count_r > 0, skipped, 0
                        )
                        disp_stall = skip & (fq_len_r > 0)
                        c["dispatch.stall_cycles"][r] += np.where(disp_stall, skipped, 0)
                        c["dispatch.stall_rob_full"][r] += np.where(
                            disp_stall & rob_full, skipped, 0
                        )
                        c["dispatch.stall_iq_full"][r] += np.where(
                            disp_stall & ~rob_full & iq_full, skipped, 0
                        )
                        c["dispatch.stall_lsq_full"][r] += np.where(
                            disp_stall & ~rob_full & ~iq_full & lsq_full, skipped, 0
                        )
                        c["rename.stall_cycles_regs"][r] += np.where(
                            disp_stall & ~rob_full & ~iq_full & ~lsq_full, skipped, 0
                        )
                        c["fetch.stall_cycles"][r] += np.where(
                            skip & blocked, skipped, 0
                        )
                        window = skip & ~blocked & (r_resume > r_cycle + 1)
                        stop = np.minimum(event - 1, r_resume - 1)
                        c["fetch.stall_cycles"][r] += np.where(
                            window, stop - r_cycle, 0
                        )
                        rob_occ_sum[r] += rob_len_r * skipped
                        iq_occ_sum[r] += iq_count_r * skipped
                        lsq_occ_sum[r] += lsq_occ_r * skipped
                        cycle[r] += np.where(skip, event - r_cycle - 1, 0)

            # ------------------------------------------------- lane finish
            done = act & (commit_head >= lane_len)
            if done.any():
                for lane in np.nonzero(done)[0]:
                    li = int(lane)
                    orig = int(lane_map[li])
                    sampler = lanes[orig].sampler
                    sampler.finalize(
                        lane_cumulative(li), int(cycle[li] - last_sample[li])
                    )
                    lanes[orig].series = sampler.build()
                    out_cycles[orig] = cycle[li]
                    out_committed[orig] = commit_head[li]
                active = active & ~done
                # Straggler fallback: once only a sliver of the batch is
                # still running, the fixed per-step cost of the lockstep
                # loop exceeds the cost of simply re-simulating the
                # survivors on the scalar kernel (which is bit-identical by
                # contract), so hand them over and stop.
                n_active = int(active.sum())
                if n_active and self.B >= 32 and n_active * 16 <= self.B:
                    self.fallback = [
                        int(i) for i in lane_map[np.nonzero(active)[0]]
                    ]
                    break
                # Compact the batch once enough lanes have retired: every
                # state array shrinks to the surviving rows, so straggler
                # lanes finish at a proportionally smaller per-step cost
                # instead of dragging the full batch width along.
                if n_active and B - n_active >= 32 and n_active * 5 <= B * 3:
                    keep = np.nonzero(active)[0]
                    if next_wake_lanes.size:
                        remap = np.full(B, -1, np.int64)
                        remap[keep] = np.arange(keep.size)
                        next_wake_lanes = remap[next_wake_lanes]
                    lane_map = lane_map[keep]
                    op_class = np.ascontiguousarray(op_class[keep])
                    op_class_flat = op_class.ravel()
                    is_mem = is_mem[keep]
                    has_dest = has_dest[keep]
                    address = np.ascontiguousarray(address[keep])
                    address_flat = address.ravel()
                    last_store_ord = np.ascontiguousarray(last_store_ord[keep])
                    last_store_flat = last_store_ord.ravel()
                    prod = np.ascontiguousarray(prod[:, keep])
                    cons_off = cons_off[keep]
                    cons_data = cons_data[keep]
                    p_mem = p_mem[keep]
                    p_dest = p_dest[keep]
                    p_brclass = p_brclass[keep]
                    p_load = p_load[keep]
                    p_store = p_store[keep]
                    p_fp = p_fp[keep]
                    pfx_md = np.stack([p_mem, p_dest])
                    p_mispred = p_mispred[keep]
                    next_mispred = next_mispred[keep]
                    lane_len = lane_len[keep]
                    max_cycles = max_cycles[keep]
                    cycle = cycle[keep]
                    commit_head = commit_head[keep]
                    dispatch_ptr = dispatch_ptr[keep]
                    fetch_ptr = fetch_ptr[keep]
                    issued_total = issued_total[keep]
                    wb_total = wb_total[keep]
                    fetch_block_op = fetch_block_op[keep]
                    fetch_resume = fetch_resume[keep]
                    last_sample = last_sample[keep]
                    completed = completed[keep]
                    pending = pending[keep]
                    woken = woken[keep]
                    finish_time = finish_time[keep]
                    finish_op = finish_op[keep]
                    freestack = freestack[keep]
                    free_sp = free_sp[keep]
                    elig = elig[keep]
                    elig_used = elig_used[keep]
                    elig_count = elig_count[keep]
                    port_busy_until = port_busy_until[keep]
                    nw_mask = nw_mask[keep]
                    for name in c:
                        c[name] = c[name][keep]
                    issue_class = issue_class[keep]
                    rob_occ_sum = rob_occ_sum[keep]
                    iq_occ_sum = iq_occ_sum[keep]
                    lsq_occ_sum = lsq_occ_sum[keep]
                    caches.compact(keep)
                    active = active[keep]
                    B = keep.size
                    ar = np.arange(B)
                    lane_base = (ar * Lp).astype(np.int64)

        self.final_cycles = out_cycles
        self.final_committed = out_committed
        return [lane.series for lane in lanes]


def simulate_batch(
    config: MicroarchConfig,
    traces,
    bug: "CoreBugModel | None" = None,
    step_cycles: int = 2048,
    warmup: bool = True,
    max_lanes: "int | None" = None,
):
    """Simulate every trace in *traces* on *config* with the lockstep kernel.

    Returns a list of :class:`~repro.coresim.simulator.SimulationResult`
    (imported lazily to avoid a module cycle), one per trace, bit-identical
    to running :func:`~repro.coresim.simulator.simulate_trace` with the
    scalar kernel on each trace individually.  Batches wider than the lane
    cap are split into sub-batches.
    """
    from .simulator import SimulationResult

    decoded = [decode_trace(t) for t in traces]
    if not decoded:
        return []
    bug_name = (bug if bug is not None else BUG_FREE).name
    results: list[SimulationResult] = []
    longest = max(len(t) for t in decoded)
    lanes_cap = _max_lanes_for(longest, max_lanes)
    for start in range(0, len(decoded), lanes_cap):
        chunk = decoded[start : start + lanes_cap]
        batch = VectorBatch(config, chunk, bug, step_cycles, warmup)
        series_list = batch.run()
        fallback = set(batch.fallback)
        for lane, series in enumerate(series_list):
            if lane in fallback:
                # straggler lanes re-run on the (bit-identical) scalar kernel
                from .simulator import simulate_trace

                results.append(
                    simulate_trace(
                        config,
                        chunk[lane],
                        bug=bug,
                        step_cycles=step_cycles,
                        warmup=warmup,
                        kernel="scalar",
                    )
                )
                continue
            results.append(
                SimulationResult(
                    config_name=config.name,
                    bug_name=bug_name,
                    instructions=int(batch.final_committed[lane]),
                    cycles=int(batch.final_cycles[lane]),
                    series=series,
                )
            )
    return results
