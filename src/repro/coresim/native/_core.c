/* Native simulation kernel: a C port of the optimized scalar O3 cycle loop
 * (repro/coresim/pipeline.py) for bug models that override no dynamic hooks
 * (the same eligibility set as the numpy vector kernel).
 *
 * Bit-identity contract: every counter value, the final cycle count, and the
 * sampling boundaries must match the scalar pipeline exactly.  The Python
 * wrapper feeds DecodedTrace columns in as flat arrays and replays the
 * emitted cumulative counter rows through the real TimeSeriesSampler, so any
 * divergence here is caught by the differential oracle.
 *
 * Hook-free simplifications (proved against pipeline.py for eligible bugs):
 *   - serialize() is always None: no serializing stalls, dispatch_reason 1
 *     is unreachable.
 *   - issue_only_if_oldest() is always False: no oldest-tracking, the issue
 *     stage never restricts to the ROB head.
 *   - extra_issue_delay() is always 0: min_issue == dispatch_cycle + 1, so a
 *     uop whose operands complete at writeback is always heap-pushable
 *     immediately (writeback cycle >= dispatch + 1) and the ready_at
 *     calendar is never populated from writeback.  Only the wake_next list
 *     (same-cycle dispatch of ready uops) remains.
 *   - branch_extra_penalty() is always 0: redirect penalty is the base 4.
 *   - cache_extra_latency() is always 0.
 *
 * Structural consequences used throughout: seq == trace index, the ROB is
 * the contiguous index range [n_committed, n_dispatched), the fetch queue is
 * [n_dispatched, n_fetched), and the store queue is the store-ordinal range
 * [stores_committed, stores_dispatched).  Store-to-load forwarding reduces
 * to "the last earlier store to this address has not committed yet", which a
 * setup pass precomputes per load. */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef int32_t i32;
typedef int8_t i8;
typedef uint8_t u8;

enum {
    CLS_INT_ALU = 0,
    CLS_INT_MULT,
    CLS_INT_DIV,
    CLS_FP_ALU,
    CLS_FP_MULT,
    CLS_FP_DIV,
    CLS_VECTOR,
    CLS_LOAD,
    CLS_STORE,
    CLS_BRANCH,
    NUM_CLASSES
};

#define BASE_REDIRECT_PENALTY 4
#define HISTORY_MASK 0xFFF
#define MAX_LEVELS 3

/* Counter slot layout.  Must match _SLOT_NAMES in kernel.py: slots 0..38 are
 * the lazily-created pipeline counters (emitted to Python only when their
 * cumulative value is nonzero, mirroring the scalar dict), 39..54 are the
 * always-present occupancy / branch-predictor / cache stats. */
enum {
    S_COMMIT_INSTR = 0,
    S_COMMIT_REGW,
    S_COMMIT_BR,
    S_COMMIT_LD,
    S_COMMIT_ST,
    S_COMMIT_FP,
    S_COMMIT_IDLE,
    S_COMMIT_MAXW,
    S_WRITEBACK,
    S_ISSUE_INSTR,
    S_ISSUE_EMPTY,
    S_ISSUE_STALL,
    S_ISSUE_MAXW,
    S_ISSUE_CONFLICTS,
    S_DISP_INSTR,
    S_DISP_STALL,
    S_DISP_SERIALIZING,   /* always 0 for eligible bugs */
    S_DISP_SERIALIZED,    /* always 0 for eligible bugs */
    S_DISP_ROBFULL,
    S_DISP_IQFULL,
    S_DISP_LSQFULL,
    S_RENAME_STALL,
    S_BUG_DELAY,          /* always 0 for eligible bugs */
    S_FETCH_INSTR,
    S_FETCH_BR,
    S_FETCH_MISPRED,
    S_FETCH_STALL,
    S_FETCH_ACTIVE,
    S_LSQ_FWD,
    S_ISSUE_CLASS0,       /* 29..38: issue.class.<OpClass> by class value */
    S_ROB_OCC = S_ISSUE_CLASS0 + NUM_CLASSES,  /* 39 */
    S_IQ_OCC,
    S_LSQ_OCC,
    S_BP_LOOKUPS,
    S_BP_MISPRED,
    S_BP_DIR_MISPRED,
    S_BP_IND_LOOKUPS,
    S_BP_IND_MISPRED,
    S_BP_BTB_LOOKUPS,
    S_BP_BTB_HITS,
    S_L1_ACC,
    S_L1_MISS,
    S_L2_ACC,
    S_L2_MISS,
    S_L3_ACC,
    S_L3_MISS,
    NUM_SLOTS             /* 55 */
};

#define N_PIPE_SLOTS (S_ISSUE_CLASS0 + NUM_CLASSES)  /* 39 */

/* Mirror of the ctypes SimParams structure in kernel.py (field order and
 * types must match exactly; everything is int64 to avoid padding games). */
typedef struct {
    i64 total;             /* trace length */
    i64 width;
    i64 rob_size;
    i64 iq_size;
    i64 lsq_size;
    i64 fetch_capacity;
    i64 free_regs;         /* initial free rename registers */
    i64 num_regs;          /* register namespace size for producer table */
    i64 step_cycles;
    i64 max_cycles;
    i64 warmup;
    i64 num_ports;
    i64 num_levels;        /* 2 or 3 cache levels */
    i64 memory_latency;
    i64 l1_line_size;
    i64 bp_table_entries;  /* post-bug, post-clamp */
    i64 btb_entries;
    i64 indirect_sets;
    i64 latency_by_class[NUM_CLASSES];
    i64 cp_offset[NUM_CLASSES + 1];  /* class -> range in class_ports_flat */
    i64 cache_sets[MAX_LEVELS];
    i64 cache_assoc[MAX_LEVELS];
    i64 cache_line_shift[MAX_LEVELS];
    i64 cache_latency[MAX_LEVELS];
} SimParams;

/* Python-compatible modulo / floor division (operands may be negative). */
static inline i64 pymod(i64 a, i64 b) {
    i64 r = a % b;
    return r < 0 ? r + b : r;
}

static inline i64 pyfloordiv(i64 a, i64 b) {
    i64 q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) {
        q -= 1;
    }
    return q;
}

/* ---------------------------------------------------------------------- */
/* Cache hierarchy (exact port of repro/coresim/caches.py)                */
/* ---------------------------------------------------------------------- */

typedef struct {
    i64 num_sets;
    i64 assoc;
    i64 line_shift;
    i64 latency;
    i64 tick;       /* LRU clock; per-way tick 0 means invalid */
    i64 accesses;
    i64 misses;
    i64 *tags;      /* num_sets * assoc */
    i64 *ticks;     /* num_sets * assoc */
} CacheLevel;

static int cache_lookup(CacheLevel *c, i64 address) {
    i64 line = address >> c->line_shift;
    i64 set = pymod(line, c->num_sets);
    i64 tag = pyfloordiv(line, c->num_sets);
    i64 *tags = c->tags + set * c->assoc;
    i64 *ticks = c->ticks + set * c->assoc;
    i64 ways = c->assoc;
    i64 w;
    c->tick += 1;
    c->accesses += 1;
    for (w = 0; w < ways; w++) {
        if (ticks[w] != 0 && tags[w] == tag) {
            ticks[w] = c->tick;
            return 1;
        }
    }
    c->misses += 1;
    /* Install: first invalid way, else evict the least-recently-used way
     * (unique ticks make the python min() tie-break irrelevant). */
    {
        i64 victim = -1;
        for (w = 0; w < ways; w++) {
            if (ticks[w] == 0) {
                victim = w;
                break;
            }
        }
        if (victim < 0) {
            victim = 0;
            for (w = 1; w < ways; w++) {
                if (ticks[w] < ticks[victim]) {
                    victim = w;
                }
            }
        }
        tags[victim] = tag;
        ticks[victim] = c->tick;
    }
    return 0;
}

static void cache_fill(CacheLevel *c, i64 address) {
    i64 line = address >> c->line_shift;
    i64 set = pymod(line, c->num_sets);
    i64 tag = pyfloordiv(line, c->num_sets);
    i64 *tags = c->tags + set * c->assoc;
    i64 *ticks = c->ticks + set * c->assoc;
    i64 ways = c->assoc;
    i64 w;
    c->tick += 1;
    for (w = 0; w < ways; w++) {
        if (ticks[w] != 0 && tags[w] == tag) {
            ticks[w] = c->tick;
            return;
        }
    }
    {
        i64 victim = -1;
        for (w = 0; w < ways; w++) {
            if (ticks[w] == 0) {
                victim = w;
                break;
            }
        }
        if (victim < 0) {
            victim = 0;
            for (w = 1; w < ways; w++) {
                if (ticks[w] < ticks[victim]) {
                    victim = w;
                }
            }
        }
        tags[victim] = tag;
        ticks[victim] = c->tick;
    }
}

typedef struct {
    CacheLevel levels[MAX_LEVELS];
    i64 num_levels;
    i64 memory_latency;
    i64 l1_line_size;
} Hierarchy;

/* Static-latency access path: L1 hit short-circuits; every L1 miss
 * triggers the next-line prefetch into all levels (hit_level is never 1
 * after an L1 miss, matching the python `hit_level != 1` condition). */
static i64 cache_access(Hierarchy *h, i64 address) {
    i64 latency = h->levels[0].latency;
    i64 hit_level = 0;
    i64 k;
    if (cache_lookup(&h->levels[0], address)) {
        return latency;
    }
    for (k = 1; k < h->num_levels; k++) {
        latency += h->levels[k].latency;
        if (cache_lookup(&h->levels[k], address)) {
            hit_level = k + 1;
            break;
        }
    }
    if (hit_level == 0) {
        latency += h->memory_latency;
    }
    {
        i64 next_line = address + h->l1_line_size;
        for (k = 0; k < h->num_levels; k++) {
            cache_fill(&h->levels[k], next_line);
        }
    }
    return latency;
}

/* ---------------------------------------------------------------------- */
/* Branch predictor (exact port of repro/coresim/branch.py)               */
/* ---------------------------------------------------------------------- */

typedef struct {
    i64 capacity;   /* btb_entries */
    i64 size;
    i64 tail;       /* monotonic insert counter; slot = tail % capacity */
    i64 nbuckets;   /* power of two */
    i64 shift;      /* 64 - log2(nbuckets) */
    i64 *pc;        /* capacity */
    i64 *target;    /* capacity */
    i32 *next;      /* chain next node, -1 terminates */
    i32 *bucket;    /* nbuckets bucket heads, -1 empty */
} Btb;

static inline i64 btb_bucket(const Btb *b, i64 pc) {
    return (i64)(((u64)pc * 0x9E3779B97F4A7C15ULL) >> b->shift);
}

static i32 btb_find(const Btb *b, i64 pc) {
    i32 node = b->bucket[btb_bucket(b, pc)];
    while (node >= 0) {
        if (b->pc[node] == pc) {
            return node;
        }
        node = b->next[node];
    }
    return -1;
}

static void btb_unlink(Btb *b, i32 node) {
    i64 bk = btb_bucket(b, b->pc[node]);
    i32 cur = b->bucket[bk];
    if (cur == node) {
        b->bucket[bk] = b->next[node];
        return;
    }
    while (cur >= 0) {
        if (b->next[cur] == node) {
            b->next[cur] = b->next[node];
            return;
        }
        cur = b->next[cur];
    }
}

/* dict-ordered update: an existing pc keeps its insertion position; a new
 * pc evicts the oldest entry when full (python pops the first dict key,
 * which under insert-order-preserving eviction is exactly FIFO). */
static void btb_update(Btb *b, i64 pc, i64 target) {
    i32 node = btb_find(b, pc);
    i64 slot;
    if (node >= 0) {
        b->target[node] = target;
        return;
    }
    slot = b->tail % b->capacity;
    if (b->size >= b->capacity) {
        btb_unlink(b, (i32)slot);
    } else {
        b->size += 1;
    }
    b->pc[slot] = pc;
    b->target[slot] = target;
    b->next[slot] = b->bucket[btb_bucket(b, pc)];
    b->bucket[btb_bucket(b, pc)] = (i32)slot;
    b->tail += 1;
}

typedef struct {
    i64 table_entries;
    i64 indirect_sets;
    i64 history;
    u8 *counters;     /* table_entries, init 2 (weakly taken) */
    i64 *ind_target;  /* indirect_sets */
    u8 *ind_valid;    /* indirect_sets */
    Btb btb;
    i64 lookups;
    i64 mispredicts;
    i64 dir_mispredicts;
    i64 ind_lookups;
    i64 ind_mispredicts;
    i64 btb_lookups;
    i64 btb_hits;
} Bp;

/* predict_and_update for a branch-class uop with a known direction.
 * Returns 1 on mispredict.  Quirk preserved from branch.py: the indirect
 * *update* key is computed with the post-update history (the history shifts
 * before _update_target runs), while the lookup key used the old history. */
static int bp_predict_update(Bp *bp, i64 pc, int taken, i64 target,
                             int has_target, int indirect) {
    i64 index = pymod((pc >> 2) ^ bp->history, bp->table_entries);
    int counter;
    int predicted_taken;
    i64 pt_value = 0;
    int pt_valid = 0;
    int mispredicted;
    bp->lookups += 1;
    counter = bp->counters[index];
    predicted_taken = counter >= 2;
    if (predicted_taken) {
        if (indirect) {
            i64 key = pymod((pc >> 2) ^ bp->history, bp->indirect_sets);
            bp->ind_lookups += 1;
            if (bp->ind_valid[key]) {
                pt_valid = 1;
                pt_value = bp->ind_target[key];
            }
        } else {
            i32 node;
            bp->btb_lookups += 1;
            node = btb_find(&bp->btb, pc);
            if (node >= 0) {
                bp->btb_hits += 1;
                pt_valid = 1;
                pt_value = bp->btb.target[node];
            }
        }
    }
    mispredicted = (predicted_taken != taken);
    if (mispredicted) {
        bp->dir_mispredicts += 1;
    } else if (taken &&
               !(pt_valid == has_target && (!pt_valid || pt_value == target))) {
        mispredicted = 1;
        if (indirect) {
            bp->ind_mispredicts += 1;
        }
    }
    if (taken) {
        if (counter < 3) {
            bp->counters[index] = (u8)(counter + 1);
        }
    } else if (counter > 0) {
        bp->counters[index] = (u8)(counter - 1);
    }
    bp->history = ((bp->history << 1) | (i64)taken) & HISTORY_MASK;
    if (taken && has_target) {
        if (indirect) {
            i64 key = pymod((pc >> 2) ^ bp->history, bp->indirect_sets);
            bp->ind_target[key] = target;
            bp->ind_valid[key] = 1;
        } else {
            btb_update(&bp->btb, pc, target);
        }
    }
    if (mispredicted) {
        bp->mispredicts += 1;
    }
    return mispredicted;
}

/* ---------------------------------------------------------------------- */
/* Ready heap (min-heap of uop indices == program order == seq order)     */
/* ---------------------------------------------------------------------- */

static void heap_push(i32 *heap, i64 *size, i32 value) {
    i64 i = (*size)++;
    while (i > 0) {
        i64 parent = (i - 1) >> 1;
        if (heap[parent] <= value) {
            break;
        }
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = value;
}

static i32 heap_pop(i32 *heap, i64 *size) {
    i32 top = heap[0];
    i32 last = heap[--(*size)];
    i64 n = *size;
    i64 i = 0;
    for (;;) {
        i64 child = 2 * i + 1;
        if (child >= n) {
            break;
        }
        if (child + 1 < n && heap[child + 1] < heap[child]) {
            child += 1;
        }
        if (heap[child] >= last) {
            break;
        }
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = last;
    return top;
}

/* ---------------------------------------------------------------------- */
/* Store-map hash: address -> ordinal of the last store seen so far       */
/* ---------------------------------------------------------------------- */

typedef struct {
    i64 mask;      /* table size - 1 (power of two) */
    i64 *addr;
    i32 *ord;
    u8 *used;
} StoreMap;

static inline i64 sm_slot(const StoreMap *m, i64 addr) {
    return (i64)(((u64)addr * 0x9E3779B97F4A7C15ULL) >> 1) & m->mask;
}

static i32 sm_get(const StoreMap *m, i64 addr) {
    i64 slot = sm_slot(m, addr);
    while (m->used[slot]) {
        if (m->addr[slot] == addr) {
            return m->ord[slot];
        }
        slot = (slot + 1) & m->mask;
    }
    return -1;
}

static void sm_put(StoreMap *m, i64 addr, i32 ordinal) {
    i64 slot = sm_slot(m, addr);
    while (m->used[slot]) {
        if (m->addr[slot] == addr) {
            m->ord[slot] = ordinal;
            return;
        }
        slot = (slot + 1) & m->mask;
    }
    m->used[slot] = 1;
    m->addr[slot] = addr;
    m->ord[slot] = ordinal;
}

/* ---------------------------------------------------------------------- */
/* Row emission                                                            */
/* ---------------------------------------------------------------------- */

static void emit_row(i64 *row, const i64 *C, i64 rob_occ, i64 iq_occ,
                     i64 lsq_occ, const Bp *bp, const Hierarchy *h) {
    memcpy(row, C, sizeof(i64) * N_PIPE_SLOTS);
    row[S_ROB_OCC] = rob_occ;
    row[S_IQ_OCC] = iq_occ;
    row[S_LSQ_OCC] = lsq_occ;
    row[S_BP_LOOKUPS] = bp->lookups;
    row[S_BP_MISPRED] = bp->mispredicts;
    row[S_BP_DIR_MISPRED] = bp->dir_mispredicts;
    row[S_BP_IND_LOOKUPS] = bp->ind_lookups;
    row[S_BP_IND_MISPRED] = bp->ind_mispredicts;
    row[S_BP_BTB_LOOKUPS] = bp->btb_lookups;
    row[S_BP_BTB_HITS] = bp->btb_hits;
    row[S_L1_ACC] = h->levels[0].accesses;
    row[S_L1_MISS] = h->levels[0].misses;
    row[S_L2_ACC] = h->levels[1].accesses;
    row[S_L2_MISS] = h->levels[1].misses;
    if (h->num_levels > 2) {
        row[S_L3_ACC] = h->levels[2].accesses;
        row[S_L3_MISS] = h->levels[2].misses;
    } else {
        row[S_L3_ACC] = 0;
        row[S_L3_MISS] = 0;
    }
}

/* ---------------------------------------------------------------------- */
/* Entry point                                                             */
/* ---------------------------------------------------------------------- */

/* Return codes: 0 ok, 1 max-cycles exceeded (caller raises PipelineError),
 * 2 allocation failure, 3 row-buffer overflow (cannot happen when the
 * caller sizes max_rows from max_cycles // step_cycles + 1). */
int repro_simulate(const SimParams *P,
                   const u8 *op_class,
                   const u8 *has_dest,
                   const i32 *dest,
                   const u8 *has_address,
                   const i64 *address,
                   const i8 *taken,
                   const i64 *pc,
                   const i64 *target,
                   const u8 *has_target,
                   const u8 *indirect,
                   const i32 *srcs_flat,
                   const i32 *srcs_offset,
                   const i32 *class_ports_flat,
                   i64 *out_rows,
                   i64 max_rows,
                   i64 *out_scalars) {
    const i64 n = P->total;
    const i64 width = P->width;
    const i64 rob_size = P->rob_size;
    const i64 iq_size = P->iq_size;
    const i64 lsq_size = P->lsq_size;
    const i64 fetch_capacity = P->fetch_capacity;
    const i64 step_cycles = P->step_cycles;
    const i64 max_cycles = P->max_cycles;
    int rc = 0;

    /* --- workspace --- */
    i32 *pending = NULL;
    u8 *completed = NULL;
    i32 *cons_head = NULL;
    i32 *edge_to = NULL;
    i32 *edge_next = NULL;
    i32 *ring_head = NULL;
    i32 *ring_next = NULL;
    i32 *heap = NULL;
    i32 *deferred = NULL;
    i32 *wake_buf = NULL;
    i32 *reg_producer = NULL;
    i64 *port_busy = NULL;
    i32 *last_store_ord = NULL;
    Hierarchy hier;
    Bp bp;
    StoreMap smap;
    i64 ring_size;
    i64 ring_mask;
    i64 n_edges_max = srcs_offset[n];
    i64 edge_count = 0;
    i64 k;

    memset(&hier, 0, sizeof(hier));
    memset(&bp, 0, sizeof(bp));
    memset(&smap, 0, sizeof(smap));

    /* Ring sized past the largest possible issue latency: the max class
     * latency and the full-miss memory path, plus slack so a finish never
     * aliases the current cycle's slot. */
    {
        i64 max_lat = 1;
        i64 mem_path = P->memory_latency;
        for (k = 0; k < NUM_CLASSES; k++) {
            if (P->latency_by_class[k] > max_lat) {
                max_lat = P->latency_by_class[k];
            }
        }
        for (k = 0; k < P->num_levels; k++) {
            mem_path += P->cache_latency[k];
        }
        if (mem_path > max_lat) {
            max_lat = mem_path;
        }
        ring_size = 1;
        while (ring_size < max_lat + 2) {
            ring_size <<= 1;
        }
        ring_mask = ring_size - 1;
    }

    pending = (i32 *)calloc((size_t)n, sizeof(i32));
    completed = (u8 *)calloc((size_t)n, sizeof(u8));
    cons_head = (i32 *)malloc((size_t)n * sizeof(i32));
    edge_to = (i32 *)malloc((size_t)(n_edges_max > 0 ? n_edges_max : 1) * sizeof(i32));
    edge_next = (i32 *)malloc((size_t)(n_edges_max > 0 ? n_edges_max : 1) * sizeof(i32));
    ring_head = (i32 *)malloc((size_t)ring_size * sizeof(i32));
    ring_next = (i32 *)malloc((size_t)n * sizeof(i32));
    heap = (i32 *)malloc((size_t)n * sizeof(i32));
    deferred = (i32 *)malloc((size_t)(width > 0 ? n : 1) * sizeof(i32));
    wake_buf = (i32 *)malloc((size_t)width * sizeof(i32));
    reg_producer = (i32 *)malloc((size_t)P->num_regs * sizeof(i32));
    port_busy = (i64 *)calloc((size_t)P->num_ports, sizeof(i64));
    last_store_ord = (i32 *)malloc((size_t)n * sizeof(i32));
    if (!pending || !completed || !cons_head || !edge_to || !edge_next ||
        !ring_head || !ring_next || !heap || !deferred || !wake_buf ||
        !reg_producer || !port_busy || !last_store_ord) {
        rc = 2;
        goto cleanup;
    }
    memset(cons_head, 0xFF, (size_t)n * sizeof(i32));        /* -1 */
    memset(ring_head, 0xFF, (size_t)ring_size * sizeof(i32)); /* -1 */
    memset(reg_producer, 0xFF, (size_t)P->num_regs * sizeof(i32));

    /* --- cache levels --- */
    hier.num_levels = P->num_levels;
    hier.memory_latency = P->memory_latency;
    hier.l1_line_size = P->l1_line_size;
    for (k = 0; k < P->num_levels; k++) {
        CacheLevel *c = &hier.levels[k];
        c->num_sets = P->cache_sets[k];
        c->assoc = P->cache_assoc[k];
        c->line_shift = P->cache_line_shift[k];
        c->latency = P->cache_latency[k];
        c->tags = (i64 *)calloc((size_t)(c->num_sets * c->assoc), sizeof(i64));
        c->ticks = (i64 *)calloc((size_t)(c->num_sets * c->assoc), sizeof(i64));
        if (!c->tags || !c->ticks) {
            rc = 2;
            goto cleanup;
        }
    }

    /* --- branch predictor --- */
    bp.table_entries = P->bp_table_entries;
    bp.indirect_sets = P->indirect_sets;
    bp.counters = (u8 *)malloc((size_t)P->bp_table_entries);
    bp.ind_target = (i64 *)calloc((size_t)P->indirect_sets, sizeof(i64));
    bp.ind_valid = (u8 *)calloc((size_t)P->indirect_sets, sizeof(u8));
    bp.btb.capacity = P->btb_entries;
    bp.btb.nbuckets = 1;
    while (bp.btb.nbuckets < 2 * P->btb_entries) {
        bp.btb.nbuckets <<= 1;
    }
    {
        i64 bits = 0;
        i64 v = bp.btb.nbuckets;
        while (v > 1) {
            bits += 1;
            v >>= 1;
        }
        bp.btb.shift = 64 - bits;
    }
    bp.btb.pc = (i64 *)malloc((size_t)P->btb_entries * sizeof(i64));
    bp.btb.target = (i64 *)malloc((size_t)P->btb_entries * sizeof(i64));
    bp.btb.next = (i32 *)malloc((size_t)P->btb_entries * sizeof(i32));
    bp.btb.bucket = (i32 *)malloc((size_t)bp.btb.nbuckets * sizeof(i32));
    if (!bp.counters || !bp.ind_target || !bp.ind_valid || !bp.btb.pc ||
        !bp.btb.target || !bp.btb.next || !bp.btb.bucket) {
        rc = 2;
        goto cleanup;
    }
    memset(bp.counters, 2, (size_t)P->bp_table_entries);  /* weakly taken */
    memset(bp.btb.bucket, 0xFF, (size_t)bp.btb.nbuckets * sizeof(i32));

    /* --- setup pass: per-load ordinal of the last earlier same-address
     * store (store-to-load forwarding reduces to ordinal >= committed). --- */
    {
        i64 nstores = 0;
        i64 hsize;
        i32 ordinal = 0;
        i64 i;
        for (i = 0; i < n; i++) {
            if (op_class[i] == CLS_STORE) {
                nstores += 1;
            }
        }
        hsize = 4;
        while (hsize < 2 * (nstores > 0 ? nstores : 1)) {
            hsize <<= 1;
        }
        smap.mask = hsize - 1;
        smap.addr = (i64 *)malloc((size_t)hsize * sizeof(i64));
        smap.ord = (i32 *)malloc((size_t)hsize * sizeof(i32));
        smap.used = (u8 *)calloc((size_t)hsize, sizeof(u8));
        if (!smap.addr || !smap.ord || !smap.used) {
            rc = 2;
            goto cleanup;
        }
        for (i = 0; i < n; i++) {
            if (op_class[i] == CLS_LOAD) {
                last_store_ord[i] = sm_get(&smap, address[i]);
            } else {
                last_store_ord[i] = -1;
                if (op_class[i] == CLS_STORE) {
                    sm_put(&smap, address[i], ordinal);
                    ordinal += 1;
                }
            }
        }
    }

    /* --- warmup: prime caches and predictor, then zero their stats --- */
    if (P->warmup) {
        i64 i;
        for (i = 0; i < n; i++) {
            if (has_address[i]) {
                cache_access(&hier, address[i]);
            } else if (taken[i] >= 0 && op_class[i] == CLS_BRANCH) {
                bp_predict_update(&bp, pc[i], taken[i], target[i],
                                  has_target[i], indirect[i]);
            }
        }
        for (k = 0; k < P->num_levels; k++) {
            hier.levels[k].accesses = 0;
            hier.levels[k].misses = 0;
        }
        bp.lookups = 0;
        bp.mispredicts = 0;
        bp.dir_mispredicts = 0;
        bp.ind_lookups = 0;
        bp.ind_mispredicts = 0;
        bp.btb_lookups = 0;
        bp.btb_hits = 0;
    }

    /* --- main cycle loop --- */
    {
        i64 C[N_PIPE_SLOTS];
        i64 cycle = 0;
        i64 committed = 0;
        i64 free_regs = P->free_regs;
        i64 iq_count = 0;
        i64 lsq_occ = 0;
        i64 n_committed = 0;
        i64 n_dispatched = 0;
        i64 next_index = 0;
        i64 stores_committed = 0;
        i32 fetch_blocked_by = -1;
        i64 fetch_resume = 0;
        i64 rob_occ_sum = 0;
        i64 iq_occ_sum = 0;
        i64 lsq_occ_sum = 0;
        i64 last_sample = 0;
        i64 heap_size = 0;
        i64 wake_count = 0;
        i64 inflight = 0;
        i64 nrows = 0;

        memset(C, 0, sizeof(C));

        while (committed < n) {
            cycle += 1;
            if (cycle > max_cycles) {
                rc = 1;
                out_scalars[0] = cycle;
                out_scalars[1] = committed;
                out_scalars[2] = last_sample;
                out_scalars[3] = nrows;
                goto cleanup;
            }

            /* commit */
            if (n_dispatched > n_committed && completed[n_committed]) {
                i64 committed_now = 0;
                while (n_committed < n_dispatched && committed_now < width) {
                    i64 i = n_committed;
                    int cls;
                    if (!completed[i]) {
                        break;
                    }
                    n_committed += 1;
                    committed_now += 1;
                    cls = op_class[i];
                    if (has_dest[i]) {
                        C[S_COMMIT_REGW] += 1;
                        free_regs += 1;
                        if (reg_producer[dest[i]] == (i32)i) {
                            reg_producer[dest[i]] = -1;
                        }
                    }
                    if (cls == CLS_BRANCH) {
                        C[S_COMMIT_BR] += 1;
                    } else if (cls == CLS_LOAD) {
                        C[S_COMMIT_LD] += 1;
                        lsq_occ -= 1;
                    } else if (cls == CLS_STORE) {
                        C[S_COMMIT_ST] += 1;
                        lsq_occ -= 1;
                        stores_committed += 1;
                    }
                    if (cls >= CLS_FP_ALU && cls <= CLS_VECTOR) {
                        C[S_COMMIT_FP] += 1;
                    }
                }
                committed += committed_now;
                C[S_COMMIT_INSTR] += committed_now;
                if (committed_now >= width) {
                    C[S_COMMIT_MAXW] += 1;
                }
            } else {
                C[S_COMMIT_IDLE] += 1;
            }

            /* writeback */
            {
                i64 slot = cycle & ring_mask;
                i32 node = ring_head[slot];
                if (node >= 0) {
                    i64 count = 0;
                    ring_head[slot] = -1;
                    while (node >= 0) {
                        i32 nxt = ring_next[node];
                        i32 e;
                        completed[node] = 1;
                        e = cons_head[node];
                        while (e >= 0) {
                            i32 consumer = edge_to[e];
                            pending[consumer] -= 1;
                            if (pending[consumer] == 0) {
                                heap_push(heap, &heap_size, consumer);
                            }
                            e = edge_next[e];
                        }
                        if (node == fetch_blocked_by) {
                            fetch_resume = cycle + BASE_REDIRECT_PENALTY;
                            fetch_blocked_by = -1;
                        }
                        count += 1;
                        node = nxt;
                    }
                    inflight -= count;
                    C[S_WRITEBACK] += count;
                }
            }

            /* wake uops that dispatched ready last cycle */
            for (k = 0; k < wake_count; k++) {
                heap_push(heap, &heap_size, wake_buf[k]);
            }
            wake_count = 0;

            /* issue */
            if (heap_size > 0) {
                if (iq_count == 0) {
                    C[S_ISSUE_EMPTY] += 1;
                } else {
                    i64 issued = 0;
                    u64 ports_used = 0;
                    i64 ndef = 0;
                    while (heap_size > 0 && issued < width) {
                        i32 op = heap_pop(heap, &heap_size);
                        int cls = op_class[op];
                        int port = -1;
                        i64 latency;
                        i64 finish;
                        i64 fslot;
                        for (k = P->cp_offset[cls]; k < P->cp_offset[cls + 1]; k++) {
                            i32 cand = class_ports_flat[k];
                            if ((ports_used >> cand) & 1) {
                                continue;
                            }
                            if (port_busy[cand] > cycle) {
                                continue;
                            }
                            port = cand;
                            break;
                        }
                        if (port < 0) {
                            C[S_ISSUE_CONFLICTS] += 1;
                            deferred[ndef++] = op;
                            continue;
                        }
                        ports_used |= (u64)1 << port;
                        if (cls == CLS_LOAD) {
                            if (last_store_ord[op] >= stores_committed) {
                                C[S_LSQ_FWD] += 1;
                                latency = 1;
                            } else {
                                latency = cache_access(&hier, address[op]);
                            }
                        } else if (cls == CLS_STORE) {
                            cache_access(&hier, address[op]);
                            latency = 1;
                        } else {
                            latency = P->latency_by_class[cls];
                            if (cls == CLS_INT_DIV || cls == CLS_FP_DIV) {
                                port_busy[port] = cycle + latency;
                            }
                        }
                        finish = cycle + (latency > 1 ? latency : 1);
                        fslot = finish & ring_mask;
                        ring_next[op] = ring_head[fslot];
                        ring_head[fslot] = op;
                        inflight += 1;
                        issued += 1;
                        C[S_ISSUE_CLASS0 + cls] += 1;
                    }
                    for (k = 0; k < ndef; k++) {
                        heap_push(heap, &heap_size, deferred[k]);
                    }
                    if (issued == 0) {
                        C[S_ISSUE_STALL] += 1;
                    } else {
                        iq_count -= issued;
                        C[S_ISSUE_INSTR] += issued;
                        if (issued >= width) {
                            C[S_ISSUE_MAXW] += 1;
                        }
                    }
                }
            } else if (iq_count > 0) {
                C[S_ISSUE_STALL] += 1;
            } else {
                C[S_ISSUE_EMPTY] += 1;
            }

            /* dispatch */
            if (next_index > n_dispatched) {
                i64 dispatched = 0;
                while (dispatched < width) {
                    i64 op = n_dispatched;
                    int cls = op_class[op];
                    int is_mem = (cls == CLS_LOAD || cls == CLS_STORE);
                    i32 pend = 0;
                    if (n_dispatched - n_committed >= rob_size) {
                        C[S_DISP_ROBFULL] += 1;
                        break;
                    }
                    if (iq_count >= iq_size) {
                        C[S_DISP_IQFULL] += 1;
                        break;
                    }
                    if (is_mem && lsq_occ >= lsq_size) {
                        C[S_DISP_LSQFULL] += 1;
                        break;
                    }
                    if (has_dest[op] && free_regs <= 0) {
                        C[S_RENAME_STALL] += 1;
                        break;
                    }
                    n_dispatched += 1;
                    dispatched += 1;
                    for (k = srcs_offset[op]; k < srcs_offset[op + 1]; k++) {
                        i32 producer = reg_producer[srcs_flat[k]];
                        if (producer >= 0 && !completed[producer]) {
                            pend += 1;
                            edge_to[edge_count] = (i32)op;
                            edge_next[edge_count] = cons_head[producer];
                            cons_head[producer] = (i32)edge_count;
                            edge_count += 1;
                        }
                    }
                    pending[op] = pend;
                    if (has_dest[op]) {
                        free_regs -= 1;
                        reg_producer[dest[op]] = (i32)op;
                    }
                    iq_count += 1;
                    if (pend == 0) {
                        wake_buf[wake_count++] = (i32)op;
                    }
                    if (is_mem) {
                        lsq_occ += 1;
                    }
                    if (next_index == n_dispatched) {
                        break;
                    }
                }
                if (dispatched > 0) {
                    C[S_DISP_INSTR] += dispatched;
                } else if (next_index > n_dispatched) {
                    C[S_DISP_STALL] += 1;
                }
            }

            /* fetch */
            if (fetch_blocked_by >= 0 || cycle < fetch_resume) {
                C[S_FETCH_STALL] += 1;
            } else if (next_index < n && next_index - n_dispatched < fetch_capacity) {
                i64 fetched = 0;
                while (fetched < width && next_index < n &&
                       next_index - n_dispatched < fetch_capacity) {
                    i64 i = next_index;
                    next_index += 1;
                    fetched += 1;
                    if (op_class[i] == CLS_BRANCH) {
                        int mispredicted = 0;
                        C[S_FETCH_BR] += 1;
                        if (taken[i] >= 0) {
                            mispredicted = bp_predict_update(
                                &bp, pc[i], taken[i], target[i],
                                has_target[i], indirect[i]);
                        }
                        if (mispredicted) {
                            fetch_blocked_by = (i32)i;
                            C[S_FETCH_MISPRED] += 1;
                            break;
                        }
                    }
                }
                C[S_FETCH_INSTR] += fetched;
                C[S_FETCH_ACTIVE] += 1;
            }

            /* occupancy + sampling */
            {
                i64 rob_len = n_dispatched - n_committed;
                i64 fq_len = next_index - n_dispatched;
                rob_occ_sum += rob_len;
                iq_occ_sum += iq_count;
                lsq_occ_sum += lsq_occ;

                if (cycle - last_sample >= step_cycles) {
                    if (nrows >= max_rows) {
                        rc = 3;
                        out_scalars[0] = cycle;
                        out_scalars[1] = committed;
                        out_scalars[2] = last_sample;
                        out_scalars[3] = nrows;
                        goto cleanup;
                    }
                    emit_row(out_rows + nrows * NUM_SLOTS, C, rob_occ_sum,
                             iq_occ_sum, lsq_occ_sum, &bp, &hier);
                    nrows += 1;
                    last_sample = cycle;
                }

                /* idle / structural-stall fast-forward */
                if (heap_size == 0 && wake_count == 0 &&
                    (rob_len == 0 || !completed[n_committed])) {
                    int blocked = (fetch_blocked_by >= 0);
                    if (blocked || cycle + 1 < fetch_resume || next_index >= n ||
                        fq_len >= fetch_capacity) {
                        i64 dispatch_reason = 0;
                        if (fq_len > 0) {
                            i64 head = n_dispatched;
                            int hcls = op_class[head];
                            int h_is_mem = (hcls == CLS_LOAD || hcls == CLS_STORE);
                            if (rob_len >= rob_size) {
                                dispatch_reason = 2;
                            } else if (iq_count >= iq_size) {
                                dispatch_reason = 3;
                            } else if (h_is_mem && lsq_occ >= lsq_size) {
                                dispatch_reason = 4;
                            } else if (has_dest[head] && free_regs <= 0) {
                                dispatch_reason = 5;
                            } else {
                                dispatch_reason = -1;
                            }
                        }
                        if (dispatch_reason >= 0 && inflight > 0) {
                            i64 event = last_sample + step_cycles;
                            i64 c;
                            for (c = cycle + 1; c <= cycle + ring_size; c++) {
                                if (ring_head[c & ring_mask] >= 0) {
                                    if (c < event) {
                                        event = c;
                                    }
                                    break;
                                }
                            }
                            if (!blocked && next_index < n &&
                                fq_len < fetch_capacity && fetch_resume < event) {
                                event = fetch_resume;
                            }
                            if (event > max_cycles + 1) {
                                event = max_cycles + 1;
                            }
                            {
                                i64 skipped = event - cycle - 1;
                                if (skipped > 0) {
                                    C[S_COMMIT_IDLE] += skipped;
                                    if (iq_count == 0) {
                                        C[S_ISSUE_EMPTY] += skipped;
                                    } else {
                                        C[S_ISSUE_STALL] += skipped;
                                    }
                                    if (dispatch_reason != 0) {
                                        C[S_DISP_STALL] += skipped;
                                        if (dispatch_reason == 2) {
                                            C[S_DISP_ROBFULL] += skipped;
                                        } else if (dispatch_reason == 3) {
                                            C[S_DISP_IQFULL] += skipped;
                                        } else if (dispatch_reason == 4) {
                                            C[S_DISP_LSQFULL] += skipped;
                                        } else {
                                            C[S_RENAME_STALL] += skipped;
                                        }
                                    }
                                    if (blocked) {
                                        C[S_FETCH_STALL] += skipped;
                                    } else if (fetch_resume > cycle + 1) {
                                        i64 stop = event - 1;
                                        if (fetch_resume - 1 < stop) {
                                            stop = fetch_resume - 1;
                                        }
                                        C[S_FETCH_STALL] += stop - cycle;
                                    }
                                    rob_occ_sum += rob_len * skipped;
                                    iq_occ_sum += iq_count * skipped;
                                    lsq_occ_sum += lsq_occ * skipped;
                                    cycle = event - 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        /* final (cumulative) row for sampler.finalize */
        emit_row(out_rows + nrows * NUM_SLOTS, C, rob_occ_sum, iq_occ_sum,
                 lsq_occ_sum, &bp, &hier);
        out_scalars[0] = cycle;
        out_scalars[1] = committed;
        out_scalars[2] = last_sample;
        out_scalars[3] = nrows;
    }

cleanup:
    free(pending);
    free(completed);
    free(cons_head);
    free(edge_to);
    free(edge_next);
    free(ring_head);
    free(ring_next);
    free(heap);
    free(deferred);
    free(wake_buf);
    free(reg_producer);
    free(port_busy);
    free(last_store_ord);
    for (k = 0; k < MAX_LEVELS; k++) {
        free(hier.levels[k].tags);
        free(hier.levels[k].ticks);
    }
    free(bp.counters);
    free(bp.ind_target);
    free(bp.ind_valid);
    free(bp.btb.pc);
    free(bp.btb.target);
    free(bp.btb.next);
    free(bp.btb.bucket);
    free(smap.addr);
    free(smap.ord);
    free(smap.used);
    return rc;
}
