"""Native compiled simulation kernel (C via ctypes, lazily built).

See :mod:`repro.coresim.native.kernel` for the marshalling layer and
:mod:`repro.coresim.native.build` for compiler discovery, the blake2b-keyed
build cache, and the graceful no-compiler fallback.
"""

from .build import (
    CACHE_ENV_VAR,
    COMPILER_ENV_VAR,
    cache_dir,
    compiler_info,
    find_compiler,
    load_library,
)
from .kernel import (
    NativeKernelUnavailable,
    native_available,
    simulate_batch_native,
    supports_native,
)

__all__ = [
    "CACHE_ENV_VAR",
    "COMPILER_ENV_VAR",
    "NativeKernelUnavailable",
    "cache_dir",
    "compiler_info",
    "find_compiler",
    "load_library",
    "native_available",
    "simulate_batch_native",
    "supports_native",
]
