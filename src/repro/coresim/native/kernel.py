"""ctypes marshalling for the native (C) simulation kernel.

:func:`simulate_batch_native` runs probe traces through the compiled cycle
loop in ``_core.c``: the :class:`~repro.workloads.decoded.DecodedTrace`
columns go in as flat zero-copy-widened arrays, one cumulative counter row
per sampling boundary comes back out, and the rows are replayed through the
real :class:`~repro.coresim.counters.TimeSeriesSampler` so the resulting
:class:`~repro.coresim.simulator.SimulationResult` is **bit-identical** to
the scalar pipeline (same cycles, same counter name sets, same values —
pinned by the differential oracle).

Eligibility is exactly the vector kernel's (:func:`supports_native` delegates
to :func:`~repro.coresim.vector.supports_vector`): bug models overriding any
dynamic hook fall back to the scalar pipeline, structural hooks
(``register_reduction``, ``bp_table_entries``, ``on_simulation_start``) are
evaluated here in Python before the C call, in the same order the scalar
``O3Pipeline.__init__`` evaluates them.
"""

from __future__ import annotations

import ctypes
from typing import Sequence

import numpy as np

from ...uarch.config import MicroarchConfig
from ...workloads.decoded import DecodedTrace, decode_trace
from ...workloads.isa import NUM_ARCH_REGS, MicroOp, OpClass
from ..counters import TimeSeriesSampler
from ..hooks import BUG_FREE, CoreBugModel
from ..pipeline import MAX_CYCLES_PER_INSTRUCTION, PipelineError
from ..vector import _opclass_table, supports_vector
from .build import load_library

_NUM_CLASSES = len(OpClass)
_MAX_LEVELS = 3

#: Counter-row layout shared with ``_core.c`` (slot order must match the
#: ``S_*`` enum there).  Slots 0..38 mirror the scalar pipeline's lazily
#: populated counter dict: they enter the cumulative sample only when
#: nonzero (cumulative values are monotonic, so nonzero-now == ever-nonzero,
#: which reproduces the scalar name sets exactly).
_LAZY_SLOT_NAMES = (
    "commit.instructions",
    "commit.register_writes",
    "commit.branches",
    "commit.loads",
    "commit.stores",
    "commit.fp_instructions",
    "commit.idle_cycles",
    "commit.max_width_cycles",
    "writeback.instructions",
    "issue.instructions",
    "issue.empty_cycles",
    "issue.stall_cycles",
    "issue.max_width_cycles",
    "issue.port_conflicts",
    "dispatch.instructions",
    "dispatch.stall_cycles",
    "dispatch.serializing_stalls",
    "dispatch.serialized_instructions",
    "dispatch.stall_rob_full",
    "dispatch.stall_iq_full",
    "dispatch.stall_lsq_full",
    "rename.stall_cycles_regs",
    "bug.extra_delay_cycles",
    "fetch.instructions",
    "fetch.branches",
    "fetch.mispredicted_branches",
    "fetch.stall_cycles",
    "fetch.cycles_active",
    "lsq.forwarded_loads",
) + tuple(f"issue.class.{op_class.name}" for op_class in OpClass)

#: Slots 39..48: always present in every cumulative sample.
_ALWAYS_SLOT_NAMES = (
    "rob.occupancy_sum",
    "iq.occupancy_sum",
    "lsq.occupancy_sum",
    "bp.lookups",
    "bp.mispredicts",
    "bp.direction_mispredicts",
    "bp.indirect_lookups",
    "bp.indirect_mispredicts",
    "bp.btb_lookups",
    "bp.btb_hits",
)

_N_LAZY = len(_LAZY_SLOT_NAMES)          # 39
_N_ALWAYS = len(_ALWAYS_SLOT_NAMES)      # 10
_S_L1_ACC = _N_LAZY + _N_ALWAYS          # 49
NUM_SLOTS = _S_L1_ACC + 2 * _MAX_LEVELS  # 55


class NativeKernelUnavailable(RuntimeError):
    """The native kernel cannot run this request (caller falls back)."""


class _SimParams(ctypes.Structure):
    """Mirror of ``SimParams`` in ``_core.c`` (field order must match)."""

    _fields_ = [
        ("total", ctypes.c_int64),
        ("width", ctypes.c_int64),
        ("rob_size", ctypes.c_int64),
        ("iq_size", ctypes.c_int64),
        ("lsq_size", ctypes.c_int64),
        ("fetch_capacity", ctypes.c_int64),
        ("free_regs", ctypes.c_int64),
        ("num_regs", ctypes.c_int64),
        ("step_cycles", ctypes.c_int64),
        ("max_cycles", ctypes.c_int64),
        ("warmup", ctypes.c_int64),
        ("num_ports", ctypes.c_int64),
        ("num_levels", ctypes.c_int64),
        ("memory_latency", ctypes.c_int64),
        ("l1_line_size", ctypes.c_int64),
        ("bp_table_entries", ctypes.c_int64),
        ("btb_entries", ctypes.c_int64),
        ("indirect_sets", ctypes.c_int64),
        ("latency_by_class", ctypes.c_int64 * _NUM_CLASSES),
        ("cp_offset", ctypes.c_int64 * (_NUM_CLASSES + 1)),
        ("cache_sets", ctypes.c_int64 * _MAX_LEVELS),
        ("cache_assoc", ctypes.c_int64 * _MAX_LEVELS),
        ("cache_line_shift", ctypes.c_int64 * _MAX_LEVELS),
        ("cache_latency", ctypes.c_int64 * _MAX_LEVELS),
    ]


def supports_native(bug: "CoreBugModel | None") -> bool:
    """True if *bug* (or ``None``) may run on the native kernel.

    Identical to vector eligibility: only structural hooks are honoured, so
    any dynamic-hook override falls back to the scalar pipeline.
    """
    return supports_vector(bug)


def native_available() -> bool:
    """True when the compiled kernel library is loadable (builds lazily)."""
    return load_library() is not None


_u8 = ctypes.POINTER(ctypes.c_uint8)
_i8 = ctypes.POINTER(ctypes.c_int8)
_i32 = ctypes.POINTER(ctypes.c_int32)
_i64 = ctypes.POINTER(ctypes.c_int64)

_configured_libs: "set[int]" = set()


def _configure(lib: ctypes.CDLL) -> None:
    if id(lib) in _configured_libs:
        return
    lib.repro_simulate.restype = ctypes.c_int
    lib.repro_simulate.argtypes = [
        ctypes.POINTER(_SimParams),
        _u8, _u8, _i32, _u8, _i64, _i8, _i64, _i64, _u8, _u8,  # trace columns
        _i32, _i32,   # srcs_flat, srcs_offset
        _i32,         # class_ports_flat
        _i64,         # out_rows
        ctypes.c_int64,
        _i64,         # out_scalars
    ]
    _configured_libs.add(id(lib))


class _NativeTrace:
    """Per-trace columns widened to the exact C dtypes, content-cached."""

    __slots__ = (
        "n",
        "op_class",
        "has_dest",
        "dest",
        "has_address",
        "address",
        "taken",
        "pc",
        "target",
        "has_target",
        "indirect",
        "srcs_flat",
        "srcs_offset",
        "num_regs",
    )


def _build_native_trace(decoded: DecodedTrace) -> _NativeTrace:
    columns = decoded.columns
    n = int(columns["opcode"].shape[0])
    t = _NativeTrace()
    t.n = n
    opcode = columns["opcode"].astype(np.int64)
    t.op_class = np.ascontiguousarray(_opclass_table()[opcode].astype(np.uint8))
    t.has_dest = np.ascontiguousarray(columns["has_dest"].astype(np.uint8))
    t.dest = np.ascontiguousarray(
        np.where(t.has_dest.astype(bool), columns["dest"].astype(np.int32), 0)
    )
    t.has_address = np.ascontiguousarray(columns["has_address"].astype(np.uint8))
    t.address = np.ascontiguousarray(
        np.where(t.has_address.astype(bool), columns["address"].astype(np.int64), 0)
    )
    t.taken = np.ascontiguousarray(columns["taken"].astype(np.int8))
    t.pc = np.ascontiguousarray(columns["pc"].astype(np.int64))
    t.has_target = np.ascontiguousarray(columns["has_target"].astype(np.uint8))
    t.target = np.ascontiguousarray(
        np.where(t.has_target.astype(bool), columns["target"].astype(np.int64), 0)
    )
    t.indirect = np.ascontiguousarray(columns["indirect"].astype(np.uint8))
    t.srcs_flat = np.ascontiguousarray(columns["srcs_flat"].astype(np.int32))
    t.srcs_offset = np.ascontiguousarray(columns["srcs_offset"].astype(np.int32))
    max_reg = NUM_ARCH_REGS - 1
    if t.srcs_flat.size:
        max_reg = max(max_reg, int(t.srcs_flat.max()))
    if n and t.has_dest.any():
        max_reg = max(max_reg, int(t.dest.max()))
    t.num_regs = max_reg + 1
    return t


#: Bounded digest-keyed memo of marshalled traces (mirrors ``_STATIC_MEMO``
#: in :mod:`repro.coresim.vector`).
_TRACE_MEMO: "dict[str, _NativeTrace]" = {}
_TRACE_MEMO_MAX = 256


def _native_trace_for(decoded: DecodedTrace) -> _NativeTrace:
    key = decoded.digest
    hit = _TRACE_MEMO.get(key)
    if hit is not None:
        return hit
    native = _build_native_trace(decoded)
    if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[key] = native
    return native


def _ptr(array: np.ndarray, ctype) -> ctypes.POINTER:
    return array.ctypes.data_as(ctypes.POINTER(ctype))


def _row_to_cumulative(row: "list[int]", has_l3: bool) -> "dict[str, float]":
    cumulative: dict[str, float] = {}
    for index in range(_N_LAZY):
        value = row[index]
        if value:
            cumulative[_LAZY_SLOT_NAMES[index]] = float(value)
    for offset in range(_N_ALWAYS):
        cumulative[_ALWAYS_SLOT_NAMES[offset]] = float(row[_N_LAZY + offset])
    cumulative["cache.l1d.accesses"] = float(row[_S_L1_ACC])
    cumulative["cache.l1d.misses"] = float(row[_S_L1_ACC + 1])
    cumulative["cache.l2.accesses"] = float(row[_S_L1_ACC + 2])
    cumulative["cache.l2.misses"] = float(row[_S_L1_ACC + 3])
    if has_l3:
        cumulative["cache.l3.accesses"] = float(row[_S_L1_ACC + 4])
        cumulative["cache.l3.misses"] = float(row[_S_L1_ACC + 5])
    return cumulative


def _fill_params(
    config: MicroarchConfig,
    bug: CoreBugModel,
    native: _NativeTrace,
    step_cycles: int,
    warmup: bool,
) -> "tuple[_SimParams, np.ndarray, int]":
    """SimParams + flat class->ports array for one run.

    Structural bug hooks are evaluated here in the scalar pipeline's
    construction order (``on_simulation_start`` was already called by the
    caller, matching ``O3Pipeline.__init__`` running it first).
    """
    num_ports = config.ports.num_ports
    if num_ports > 63:
        raise NativeKernelUnavailable(
            f"{num_ports} issue ports exceed the native kernel's 63-port mask"
        )
    if config.btb_entries < 1:
        raise NativeKernelUnavailable("btb_entries must be >= 1")

    params = _SimParams()
    params.total = native.n
    params.width = config.width
    params.rob_size = config.rob_size
    params.iq_size = config.iq_size
    params.lsq_size = config.lsq_size
    params.fetch_capacity = config.fetch_buffer
    reduction = max(0, bug.register_reduction())
    params.free_regs = max(1, config.num_phys_regs - NUM_ARCH_REGS - reduction)
    params.num_regs = native.num_regs
    params.step_cycles = step_cycles
    params.max_cycles = native.n * MAX_CYCLES_PER_INSTRUCTION + 10_000
    params.warmup = 1 if warmup else 0
    params.num_ports = num_ports
    params.memory_latency = max(30, int(round(60.0 * config.clock_ghz)))
    params.l1_line_size = config.l1.line_size
    params.bp_table_entries = max(4, bug.bp_table_entries(config.bp_table_entries))
    params.btb_entries = config.btb_entries
    params.indirect_sets = max(4, config.indirect_predictor_sets)

    latency_of = {
        OpClass.INT_ALU: 1,
        OpClass.INT_MULT: config.mult_latency,
        OpClass.INT_DIV: config.div_latency,
        OpClass.FP_ALU: config.fp_latency,
        OpClass.FP_MULT: config.fp_latency,
        OpClass.FP_DIV: config.div_latency,
        OpClass.VECTOR: config.fp_latency,
        OpClass.LOAD: 0,
        OpClass.STORE: 1,
        OpClass.BRANCH: 1,
    }
    for op_class in OpClass:
        params.latency_by_class[int(op_class)] = latency_of[op_class]

    flat_ports: list[int] = []
    for op_class in OpClass:
        params.cp_offset[int(op_class)] = len(flat_ports)
        flat_ports.extend(p.index for p in config.ports.ports_for(op_class))
    params.cp_offset[_NUM_CLASSES] = len(flat_ports)
    class_ports_flat = np.ascontiguousarray(np.asarray(flat_ports, dtype=np.int32))

    levels = [config.l1, config.l2]
    if config.l3 is not None:
        levels.append(config.l3)
    params.num_levels = len(levels)
    for index, level in enumerate(levels):
        params.cache_sets[index] = level.num_sets
        params.cache_assoc[index] = level.associativity
        params.cache_line_shift[index] = level.line_size.bit_length() - 1
        params.cache_latency[index] = level.latency
    return params, class_ports_flat, len(levels)


def _simulate_one(
    lib: ctypes.CDLL,
    config: MicroarchConfig,
    decoded: DecodedTrace,
    bug: CoreBugModel,
    step_cycles: int,
    warmup: bool,
):
    from ..simulator import SimulationResult  # imported lazily: module cycle

    native = _native_trace_for(decoded)
    if native.n == 0:
        raise ValueError("cannot simulate an empty trace")
    params, class_ports_flat, num_levels = _fill_params(
        config, bug, native, step_cycles, warmup
    )
    max_rows = params.max_cycles // step_cycles + 2
    out_rows = np.zeros((max_rows + 1, NUM_SLOTS), dtype=np.int64)
    out_scalars = np.zeros(4, dtype=np.int64)

    rc = lib.repro_simulate(
        ctypes.byref(params),
        _ptr(native.op_class, ctypes.c_uint8),
        _ptr(native.has_dest, ctypes.c_uint8),
        _ptr(native.dest, ctypes.c_int32),
        _ptr(native.has_address, ctypes.c_uint8),
        _ptr(native.address, ctypes.c_int64),
        _ptr(native.taken, ctypes.c_int8),
        _ptr(native.pc, ctypes.c_int64),
        _ptr(native.target, ctypes.c_int64),
        _ptr(native.has_target, ctypes.c_uint8),
        _ptr(native.indirect, ctypes.c_uint8),
        _ptr(native.srcs_flat, ctypes.c_int32),
        _ptr(native.srcs_offset, ctypes.c_int32),
        _ptr(class_ports_flat, ctypes.c_int32),
        _ptr(out_rows, ctypes.c_int64),
        ctypes.c_int64(max_rows),
        _ptr(out_scalars, ctypes.c_int64),
    )
    if rc == 1:
        raise PipelineError(
            f"pipeline exceeded {params.max_cycles} cycles for {native.n} "
            f"instructions on {config.name} with bug {bug.name!r}"
        )
    if rc != 0:
        raise RuntimeError(f"native simulation kernel failed (rc={rc})")

    cycle, committed, last_sample, nrows = (int(v) for v in out_scalars)
    has_l3 = config.l3 is not None
    sampler = TimeSeriesSampler(step_cycles)
    rows = out_rows[: nrows + 1].tolist()
    for index in range(nrows):
        sampler.sample(_row_to_cumulative(rows[index], has_l3))
    sampler.finalize(_row_to_cumulative(rows[nrows], has_l3), cycle - last_sample)
    return SimulationResult(
        config_name=config.name,
        bug_name=bug.name,
        instructions=committed,
        cycles=cycle,
        series=sampler.build(),
    )


def simulate_batch_native(
    config: MicroarchConfig,
    traces: "Sequence[list[MicroOp] | DecodedTrace]",
    bug: "CoreBugModel | None" = None,
    step_cycles: int = 2048,
    warmup: bool = True,
):
    """Simulate *traces* on *config* through the compiled kernel.

    Results are in input order and bit-identical to the scalar pipeline.
    Raises :class:`NativeKernelUnavailable` when the library is missing or
    the configuration exceeds a kernel limit — callers (the ``simulate_trace``
    seam) treat that as "use the scalar kernel".
    """
    lib = load_library()
    if lib is None:
        raise NativeKernelUnavailable("native kernel library unavailable")
    _configure(lib)
    bug = bug if bug is not None else BUG_FREE
    if not supports_native(bug):
        raise NativeKernelUnavailable(
            f"bug model {bug.name!r} overrides dynamic hooks"
        )
    results = []
    for trace in traces:
        bug.on_simulation_start(config)
        results.append(
            _simulate_one(lib, config, decode_trace(trace), bug, step_cycles, warmup)
        )
    return results
