"""Lazy build layer for the native simulation kernel.

The C source (``_core.c``, shipped inside the package) is compiled on first
use with whatever system compiler is discoverable — there is deliberately no
numba/Cython/setuptools-build-time dependency.  The resulting shared library
is cached under a per-user build directory keyed by
``blake2b(source + flags + compiler + compiler version)``, so source edits,
flag changes, and toolchain upgrades each get a fresh artifact while repeat
runs pay nothing.

Failure is never an exception here: no compiler, an unwritable cache
directory, or a failed compile all degrade to ``None`` with a single
``RuntimeWarning`` per process, and kernel resolution falls back to the
scalar pipeline (see ``repro.coresim.simulator``).

Environment knobs:

``REPRO_NATIVE_CC``
    Explicit compiler command or path.  An unusable value (missing binary)
    disables the native kernel rather than falling back to discovery, which
    makes forced-failure testing deterministic.
``REPRO_NATIVE_CACHE``
    Build-cache directory override (default:
    ``$XDG_CACHE_HOME/repro/native`` or ``~/.cache/repro/native``).
``REPRO_NATIVE_SANITIZE``
    Sanitizer mode for the native build.  ``1``/``on`` selects
    ``address,undefined``; any other non-empty value is passed through as the
    ``-fsanitize=`` argument.  Sanitized builds get their own cache artifact
    (the flags are part of the cache key) and force **serial** execution —
    ASan's shadow memory and interceptors are not worth multiplying across a
    process pool, and failures are easiest to read from a single process.
    Running Python against an ASan'd shared library additionally requires
    preloading the sanitizer runtime (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path

#: Compiler override environment variable (see module docstring).
COMPILER_ENV_VAR = "REPRO_NATIVE_CC"

#: Build-cache directory override environment variable.
CACHE_ENV_VAR = "REPRO_NATIVE_CACHE"

#: Sanitizer mode environment variable (see module docstring).
SANITIZE_ENV_VAR = "REPRO_NATIVE_SANITIZE"

#: Compilers probed on PATH, in preference order, when no override is set.
COMPILER_CANDIDATES = ("gcc", "cc", "clang")

#: Flags for the shared-library build.  Part of the cache key.
CFLAGS = ("-O2", "-std=c99", "-fPIC", "-shared")

#: Warning gate flags: the C source must stay warning-clean under these.
#: Checked by ``werror_check`` (wired into repro-lint and CI), not by the
#: regular build — a user's exotic toolchain must not lose the kernel over
#: a new warning.
WERROR_FLAGS = ("-Wall", "-Wextra", "-Werror")

SOURCE_PATH = Path(__file__).with_name("_core.c")

_lib: "ctypes.CDLL | None" = None
_lib_resolved = False
_warned = False
_compiler_info: "dict[str, str] | None | bool" = False  # False == not probed


def _warn_once(reason: str) -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        f"repro native kernel unavailable ({reason}); "
        "falling back to the scalar kernel",
        RuntimeWarning,
        stacklevel=3,
    )


def sanitize_mode() -> "str | None":
    """The active ``-fsanitize=`` argument, or None when sanitizers are off."""
    raw = os.environ.get(SANITIZE_ENV_VAR, "").strip().lower()
    if raw in ("", "0", "off", "no", "false"):
        return None
    if raw in ("1", "on", "yes", "true"):
        return "address,undefined"
    return raw


def active_cflags() -> "tuple[str, ...]":
    """Build flags for the current mode.  Part of the cache key, so the
    sanitized artifact never collides with the regular one."""
    mode = sanitize_mode()
    if mode is None:
        return CFLAGS
    return CFLAGS + (f"-fsanitize={mode}", "-fno-omit-frame-pointer", "-g")


def find_compiler() -> "str | None":
    """Absolute path of the C compiler to use, or None."""
    override = os.environ.get(COMPILER_ENV_VAR)
    if override is not None:
        override = override.strip()
        if not override:
            return None
        resolved = shutil.which(override)
        if resolved is not None:
            return resolved
        if os.path.isfile(override) and os.access(override, os.X_OK):
            return override
        return None
    for name in COMPILER_CANDIDATES:
        resolved = shutil.which(name)
        if resolved is not None:
            return resolved
    return None


def _compiler_version(compiler: str) -> str:
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    for line in (proc.stdout or proc.stderr or "").splitlines():
        line = line.strip()
        if line:
            return line
    return "unknown"


def compiler_info() -> "dict[str, str] | None":
    """``{"path": ..., "version": ...}`` for the active compiler, or None.

    Memoised; recorded into the schema-v5 ``native`` bench section so perf
    numbers are attributable to a toolchain.
    """
    global _compiler_info
    if _compiler_info is False:
        compiler = find_compiler()
        if compiler is None:
            _compiler_info = None
        else:
            _compiler_info = {
                "path": compiler,
                "version": _compiler_version(compiler),
            }
    return _compiler_info  # type: ignore[return-value]


def cache_dir() -> Path:
    """The build-cache directory (not necessarily existing yet)."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return Path(base) / "repro" / "native"


def library_path() -> "Path | None":
    """Path of the compiled shared library, building it if needed.

    Returns None (with a one-time warning) when no compiler is available or
    the build fails for any reason.
    """
    info = compiler_info()
    if info is None:
        _warn_once("no usable C compiler (set $REPRO_NATIVE_CC or install gcc/cc)")
        return None
    compiler = info["path"]
    try:
        source = SOURCE_PATH.read_text(encoding="utf-8")
    except OSError as exc:
        _warn_once(f"cannot read {SOURCE_PATH.name}: {exc}")
        return None
    cflags = active_cflags()
    key = hashlib.blake2b(
        "\x00".join([source, " ".join(cflags), compiler, info["version"]]).encode(
            "utf-8"
        ),
        digest_size=16,
    ).hexdigest()
    directory = cache_dir()
    artifact = directory / f"repro_core_{key}.so"
    if artifact.exists():
        return artifact
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".repro_core_", suffix=".so", dir=str(directory)
        )
        os.close(fd)
    except OSError as exc:
        _warn_once(f"cannot create build cache under {directory}: {exc}")
        return None
    try:
        proc = subprocess.run(
            [compiler, *cflags, str(SOURCE_PATH), "-o", tmp_path],
            capture_output=True,
            text=True,
            timeout=300,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp_path)
        _warn_once(f"compiler invocation failed: {exc}")
        return None
    if proc.returncode != 0 or not os.path.getsize(tmp_path):
        os.unlink(tmp_path)
        detail = (proc.stderr or proc.stdout or "").strip().splitlines()
        tail = detail[-1] if detail else f"exit status {proc.returncode}"
        _warn_once(f"compilation failed: {tail}")
        return None
    os.replace(tmp_path, artifact)  # atomic vs concurrent builders
    return artifact


def werror_check(source_text: "str | None" = None) -> "tuple[bool | None, str]":
    """Syntax-check the kernel source under ``-Wall -Wextra -Werror``.

    Returns ``(ok, diagnostics)``.  ``ok`` is ``None`` when no compiler is
    available (callers — repro-lint's native gate and CI — skip cleanly).
    This is a pure front-end pass (``-fsyntax-only``): no artifact is
    produced and the build cache is untouched.
    """
    info = compiler_info()
    if info is None:
        return None, "no usable C compiler"
    if source_text is None:
        try:
            source_text = SOURCE_PATH.read_text(encoding="utf-8")
        except OSError as exc:
            return False, f"cannot read {SOURCE_PATH.name}: {exc}"
    fd, tmp_path = tempfile.mkstemp(prefix=".repro_werror_", suffix=".c")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(source_text)
        proc = subprocess.run(
            [
                info["path"],
                "-std=c99",
                *WERROR_FLAGS,
                "-fsyntax-only",
                tmp_path,
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return False, f"compiler invocation failed: {exc}"
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
    diagnostics = (proc.stderr or proc.stdout or "").strip()
    return proc.returncode == 0, diagnostics


def sanitizer_preload() -> "list[str]":
    """Sanitizer runtime libraries that must be LD_PRELOADed into Python.

    A sanitized ``_core.so`` references ASan/UBSan runtime symbols that the
    python binary was not linked against; preloading the runtimes satisfies
    them.  Returns an empty list when sanitizers are off or the paths cannot
    be resolved (the caller decides whether that is fatal).
    """
    mode = sanitize_mode()
    info = compiler_info()
    if mode is None or info is None:
        return []
    libraries = []
    wanted = []
    if "address" in mode:
        wanted.append("libasan.so")
    if "undefined" in mode:
        wanted.append("libubsan.so")
    for name in wanted:
        try:
            proc = subprocess.run(
                [info["path"], f"-print-file-name={name}"],
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            continue
        path = (proc.stdout or "").strip()
        if path and path != name and os.path.exists(path):
            libraries.append(path)
    return libraries


def load_library() -> "ctypes.CDLL | None":
    """The compiled kernel library, or None when unavailable.  Memoised."""
    global _lib, _lib_resolved
    if _lib_resolved:
        return _lib
    _lib_resolved = True
    path = library_path()
    if path is None:
        return None
    try:
        _lib = ctypes.CDLL(str(path))
    except OSError as exc:
        _warn_once(f"cannot load {path.name}: {exc}")
        _lib = None
    return _lib


def _reset_for_tests() -> None:
    """Drop all memoised build state (tests re-point env vars around this)."""
    global _lib, _lib_resolved, _warned, _compiler_info
    _lib = None
    _lib_resolved = False
    _warned = False
    _compiler_info = False
