"""Bug-injection hook interface for the out-of-order core model.

The paper injects 14 classes of performance bugs into gem5's O3 pipeline.  In
this reproduction every injection point in :mod:`repro.coresim.pipeline` calls
into a :class:`CoreBugModel`; the bug-free simulator uses the no-op base class
and :mod:`repro.bugs.core_bugs` provides one subclass per bug type.

A hook object may keep internal state (e.g. per-cache-line store counts) —
the pipeline guarantees that dispatch-time hooks are invoked exactly once per
dynamic instruction, in program order.

Fast-path contract (see docs/PERFORMANCE.md): the pipeline detects, once at
construction, which hooks a bug model overrides (class-level comparison
against :class:`CoreBugModel`) and never calls the unoverridden ones — they
are pure no-ops by definition.  Consequently hooks must be overridden at
class level (not assigned as instance attributes), and a model must not rely
on base-class hooks being *called*.  Overridden hooks keep their documented
call guarantees exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.isa import MicroOp, Opcode


@dataclass
class DispatchContext:
    """Pipeline state visible to dispatch-time hooks."""

    iq_free: int
    rob_free: int
    producer_opcodes: tuple[Opcode, ...]


class CoreBugModel:
    """No-op bug model: the bug-free pipeline behaviour.

    Subclasses override the hooks relevant to the bug they model.  All hooks
    must be deterministic functions of their arguments plus internal state.
    """

    #: Human-readable identifier, overridden by concrete bugs.
    name: str = "bug-free"

    def on_simulation_start(self, config) -> None:
        """Called once before simulation; may reset internal state."""

    # -- structural hooks --------------------------------------------------

    def register_reduction(self) -> int:
        """Number of physical registers removed from the free pool (bug 11)."""
        return 0

    def bp_table_entries(self, configured: int) -> int:
        """Effective branch-predictor table size (bug 14)."""
        return configured

    def cache_extra_latency(self, level: int) -> int:
        """Extra hit latency, in cycles, for cache *level* (1-based; bug 10)."""
        return 0

    # -- scheduling hooks ---------------------------------------------------

    def serialize(self, uop: MicroOp) -> bool:
        """True if *uop* must be treated as a serialising instruction (bug 1)."""
        return False

    def issue_only_if_oldest(self, uop: MicroOp) -> bool:
        """True if *uop* may only issue once it is the oldest in the IQ (bug 2)."""
        return False

    def oldest_blocks_others(self, uop: MicroOp) -> bool:
        """True if, while *uop* is oldest in the IQ, only it may issue (bug 3)."""
        return False

    def extra_issue_delay(self, uop: MicroOp, context: DispatchContext) -> int:
        """Extra cycles *uop* must wait before becoming issue-eligible.

        Called exactly once per dynamic instruction at dispatch, in program
        order.  Covers bugs 4, 5, 6, 8, 9 and 13.
        """
        return 0

    def branch_extra_penalty(self, uop: MicroOp, mispredicted: bool) -> int:
        """Extra front-end redirect penalty for *uop* (bugs 7 and 12)."""
        return 0


#: Singleton bug-free model shared by default simulations.
BUG_FREE = CoreBugModel()
