"""Branch prediction for the out-of-order core model.

A gshare-style direction predictor (2-bit saturating counters indexed by
PC xor global history), a direct-mapped BTB and a small indirect-target
predictor.  The effective direction-table size goes through the bug hook so
that bug type 14 ("table index function issue, reducing effective table size")
can be injected without touching the predictor itself.
"""

from __future__ import annotations

from ..uarch.config import MicroarchConfig
from ..workloads.isa import MicroOp
from .hooks import CoreBugModel


class BranchPredictor:
    """gshare + BTB + indirect predictor with hit/miss accounting."""

    HISTORY_BITS = 12

    def __init__(self, config: MicroarchConfig, bug: CoreBugModel) -> None:
        self.config = config
        entries = bug.bp_table_entries(config.bp_table_entries)
        self.table_entries = max(4, entries)
        self.counters = [2] * self.table_entries  # weakly taken
        self.history = 0
        self.history_mask = (1 << self.HISTORY_BITS) - 1
        self.btb: dict[int, int] = {}
        self.btb_entries = config.btb_entries
        self.indirect_sets = max(4, config.indirect_predictor_sets)
        self.indirect_table: dict[int, int] = {}

        self.lookups = 0
        self.mispredicts = 0
        self.direction_mispredicts = 0
        self.indirect_lookups = 0
        self.indirect_mispredicts = 0
        self.btb_hits = 0
        self.btb_lookups = 0

    # -- direction prediction ------------------------------------------------

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) % self.table_entries

    def _predict_direction(self, pc: int) -> bool:
        return self.counters[self._index(pc)] >= 2

    def _update_direction(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    # -- target prediction ----------------------------------------------------

    def _predict_target(self, uop: MicroOp) -> int | None:
        if uop.indirect:
            self.indirect_lookups += 1
            key = ((uop.pc >> 2) ^ self.history) % self.indirect_sets
            return self.indirect_table.get(key)
        self.btb_lookups += 1
        target = self.btb.get(uop.pc)
        if target is not None:
            self.btb_hits += 1
        return target

    def _update_target(self, uop: MicroOp) -> None:
        if uop.target is None:
            return
        if uop.indirect:
            key = ((uop.pc >> 2) ^ self.history) % self.indirect_sets
            self.indirect_table[key] = uop.target
        else:
            if uop.pc not in self.btb and len(self.btb) >= self.btb_entries:
                # Evict an arbitrary (oldest-inserted) entry.
                self.btb.pop(next(iter(self.btb)))
            self.btb[uop.pc] = uop.target

    # -- public API -------------------------------------------------------------

    def predict_and_update(self, uop: MicroOp) -> bool:
        """Predict *uop* and update predictor state; returns True on mispredict.

        The trace carries the architecturally-correct outcome, so prediction
        and training happen in one call (prediction uses the state *before*
        the update, as in hardware).  The direction/target helpers above are
        inlined here — this runs once per fetched branch on the simulation hot
        path; behavioural equivalence with the helper methods is pinned by the
        counter-equivalence suite against the frozen seed predictor.
        """
        taken = uop.taken
        if taken is None or not uop.is_branch:
            return False
        self.lookups += 1
        pc = uop.pc
        counters = self.counters
        history = self.history
        index = ((pc >> 2) ^ history) % self.table_entries
        predicted_taken = counters[index] >= 2
        predicted_target = self._predict_target(uop) if predicted_taken else None

        mispredicted = predicted_taken != taken
        if mispredicted:
            self.direction_mispredicts += 1
        elif taken and predicted_target != uop.target:
            mispredicted = True
            if uop.indirect:
                self.indirect_mispredicts += 1

        counter = counters[index]
        if taken:
            if counter < 3:
                counters[index] = counter + 1
        elif counter > 0:
            counters[index] = counter - 1
        self.history = ((history << 1) | taken) & self.history_mask
        if taken:
            self._update_target(uop)
        if mispredicted:
            self.mispredicts += 1
        return mispredicted

    def reset_stats(self) -> None:
        """Clear the counters while keeping the learned predictor state."""
        self.lookups = 0
        self.mispredicts = 0
        self.direction_mispredicts = 0
        self.indirect_lookups = 0
        self.indirect_mispredicts = 0
        self.btb_hits = 0
        self.btb_lookups = 0

    def stats(self) -> dict[str, int]:
        """Cumulative predictor counters."""
        return {
            "bp.lookups": self.lookups,
            "bp.mispredicts": self.mispredicts,
            "bp.direction_mispredicts": self.direction_mispredicts,
            "bp.indirect_lookups": self.indirect_lookups,
            "bp.indirect_mispredicts": self.indirect_mispredicts,
            "bp.btb_lookups": self.btb_lookups,
            "bp.btb_hits": self.btb_hits,
        }
