"""Set-associative cache hierarchy used by the core simulator.

The core model only needs access latencies and hit/miss statistics, so each
level is a tag store with true-LRU replacement; data is never modelled.  The
hierarchy is inclusive-of-nothing (each level is looked up independently and
filled on miss), which is sufficient for the latency/locality behaviour the
methodology's counters observe.
"""

from __future__ import annotations

from ..uarch.config import CacheConfig, MicroarchConfig
from .hooks import CoreBugModel


class Cache:
    """One cache level: tag store with true-LRU replacement."""

    __slots__ = (
        "name",
        "config",
        "num_sets",
        "associativity",
        "line_shift",
        "_sets",
        "_tick",
        "accesses",
        "misses",
    )

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_shift = config.line_size.bit_length() - 1
        # One dict per set: tag -> last-use timestamp.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.accesses = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        """Access *address*; returns True on hit.  Misses allocate the line."""
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        self.accesses += 1
        if tag in cache_set:
            cache_set[tag] = self._tick
            return True
        self.misses += 1
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick
        return False

    def fill(self, address: int) -> None:
        """Install the line containing *address* without touching statistics.

        Used for prefetch fills and warm-up.
        """
        self._tick += 1
        line = address >> self.line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set[tag] = self._tick
            return
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """The L1D/L2/(L3)/memory data hierarchy of one core configuration."""

    #: Main-memory access time in nanoseconds (converted to cycles per design).
    MEMORY_LATENCY_NS = 60.0

    def __init__(self, config: MicroarchConfig, bug: CoreBugModel) -> None:
        self.config = config
        self.bug = bug
        self.levels: list[Cache] = [Cache("l1d", config.l1), Cache("l2", config.l2)]
        if config.l3 is not None:
            self.levels.append(Cache("l3", config.l3))
        self.memory_latency = max(
            30, int(round(self.MEMORY_LATENCY_NS * config.clock_ghz))
        )
        # Hot-path hoist: when the bug model leaves ``cache_extra_latency``
        # unoverridden it is a pure zero, so per-level hit latencies are
        # constants and the hook is never called (see docs/PERFORMANCE.md).
        if type(bug).cache_extra_latency is CoreBugModel.cache_extra_latency:
            self._static_latency: list[int] | None = [
                cache.config.latency for cache in self.levels
            ]
        else:
            self._static_latency = None
        self._outer_levels = self.levels[1:]

    def access(self, address: int) -> int:
        """Access *address* and return the total latency in core cycles."""
        latency = 0
        hit_level = 0
        static = self._static_latency
        if static is not None:
            # Hot path: `Cache.lookup` inlined for the L1 probe (the
            # overwhelmingly common hit case), outer levels via the method.
            l1 = self.levels[0]
            l1._tick += 1
            line = address >> l1.line_shift
            set_index = line % l1.num_sets
            tag = line // l1.num_sets
            cache_set = l1._sets[set_index]
            l1.accesses += 1
            latency = static[0]
            if tag in cache_set:
                cache_set[tag] = l1._tick
                return latency
            l1.misses += 1
            if len(cache_set) >= l1.associativity:
                victim = min(cache_set, key=cache_set.get)
                del cache_set[victim]
            cache_set[tag] = l1._tick
            index = 1
            for cache in self._outer_levels:
                latency += static[index]
                index += 1
                if cache.lookup(address):
                    hit_level = index
                    break
        else:
            for index, cache in enumerate(self.levels, start=1):
                latency += cache.config.latency + self.bug.cache_extra_latency(index)
                if cache.lookup(address):
                    hit_level = index
                    break
        if hit_level == 0:
            latency += self.memory_latency
        if hit_level != 1:
            # Next-line prefetch on an L1 miss: all modern cores covered by
            # Table II ship hardware prefetchers; modelling one keeps the
            # scaled-down probes from being artificially memory bound.
            next_line = address + self.levels[0].config.line_size
            for cache in self.levels:
                cache.fill(next_line)
        return latency

    def stats(self) -> dict[str, int]:
        """Cumulative access/miss counters for every level."""
        result: dict[str, int] = {}
        for cache in self.levels:
            result[f"cache.{cache.name}.accesses"] = cache.accesses
            result[f"cache.{cache.name}.misses"] = cache.misses
        return result
