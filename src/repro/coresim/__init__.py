"""Cycle-level out-of-order core simulator (gem5 O3CPU stand-in)."""

from .branch import BranchPredictor
from .caches import Cache, CacheHierarchy
from .counters import CounterTimeSeries, TimeSeriesSampler, derived_counters
from .hooks import BUG_FREE, CoreBugModel, DispatchContext
from .pipeline import O3Pipeline, PipelineError
from .native import native_available, simulate_batch_native, supports_native
from .simulator import (
    DEFAULT_STEP_CYCLES,
    KERNEL_ENV_VAR,
    KERNELS,
    SimulationResult,
    choose_kernel,
    resolve_kernel,
    simulate_trace,
    simulate_trace_batch,
)
from .vector import simulate_batch, supports_vector

__all__ = [
    "BranchPredictor",
    "Cache",
    "CacheHierarchy",
    "CounterTimeSeries",
    "TimeSeriesSampler",
    "derived_counters",
    "CoreBugModel",
    "DispatchContext",
    "BUG_FREE",
    "O3Pipeline",
    "PipelineError",
    "SimulationResult",
    "simulate_trace",
    "simulate_trace_batch",
    "simulate_batch",
    "supports_vector",
    "native_available",
    "simulate_batch_native",
    "supports_native",
    "choose_kernel",
    "resolve_kernel",
    "DEFAULT_STEP_CYCLES",
    "KERNEL_ENV_VAR",
    "KERNELS",
]
