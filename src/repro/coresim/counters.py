"""Performance-counter collection and time-series sampling.

The methodology consumes counter values sampled every *time step* (the paper
uses 500 k clock cycles).  :class:`TimeSeriesSampler` turns the simulator's
cumulative counters into per-step deltas plus a set of derived ratio counters
(branch percentages, miss rates, ...), and records the per-step IPC that the
stage-1 models learn to infer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def derived_counters(deltas: dict[str, float]) -> dict[str, float]:
    """Ratio/derived counters computed from one step's raw counter deltas.

    These mirror the kinds of counters the paper reports as commonly selected:
    percentage of branch instructions, percentage of correctly predicted
    indirect branches, cache miss rates, and utilisation ratios.
    """

    def ratio(num: str, den: str) -> float:
        d = deltas.get(den, 0.0)
        return deltas.get(num, 0.0) / d if d > 0 else 0.0

    committed = deltas.get("commit.instructions", 0.0)
    derived = {
        "derived.pct_branches": ratio("commit.branches", "commit.instructions"),
        "derived.pct_loads": ratio("commit.loads", "commit.instructions"),
        "derived.pct_stores": ratio("commit.stores", "commit.instructions"),
        "derived.pct_fp": ratio("commit.fp_instructions", "commit.instructions"),
        "derived.bp_mispredict_rate": ratio("bp.mispredicts", "bp.lookups"),
        "derived.pct_correct_indirect": 1.0
        - ratio("bp.indirect_mispredicts", "bp.indirect_lookups"),
        "derived.l1d_miss_rate": ratio("cache.l1d.misses", "cache.l1d.accesses"),
        "derived.l2_miss_rate": ratio("cache.l2.misses", "cache.l2.accesses"),
        "derived.l3_miss_rate": ratio("cache.l3.misses", "cache.l3.accesses"),
        "derived.mpki_l1d": 1000.0 * ratio("cache.l1d.misses", "commit.instructions"),
        "derived.mpki_l2": 1000.0 * ratio("cache.l2.misses", "commit.instructions"),
        "derived.branch_mpki": 1000.0 * ratio("bp.mispredicts", "commit.instructions"),
        "derived.fetch_utilization": ratio("fetch.instructions", "fetch.cycles_active"),
        "derived.issue_utilization": ratio("issue.instructions", "cycles"),
        "derived.commit_utilization": committed / deltas.get("cycles", 1.0)
        if deltas.get("cycles", 0.0) > 0
        else 0.0,
    }
    return derived


@dataclass
class CounterTimeSeries:
    """Per-time-step counter deltas plus the IPC series.

    Attributes
    ----------
    step_cycles:
        Size of the sampling step in clock cycles.
    counters:
        Mapping of counter name to an array with one value per time step.
    ipc:
        Committed-instructions-per-cycle of every time step.
    """

    step_cycles: int
    counters: dict[str, np.ndarray]
    ipc: np.ndarray

    @property
    def num_steps(self) -> int:
        return len(self.ipc)

    @property
    def counter_names(self) -> list[str]:
        return sorted(self.counters)

    def matrix(self, names: list[str]) -> np.ndarray:
        """Feature matrix (steps x len(names)) for the requested counters.

        Counters that never fired during a run are simply absent from the
        sampled deltas; they are semantically zero, so missing names are
        filled with zero columns rather than treated as errors.
        """
        zeros = np.zeros(self.num_steps, dtype=float)
        return np.column_stack([self.counters.get(n, zeros) for n in names])

    def with_static_features(self, features: dict[str, float]) -> "CounterTimeSeries":
        """Return a copy with constant (per-design) features appended."""
        counters = dict(self.counters)
        for name, value in features.items():
            counters[name] = np.full(self.num_steps, value, dtype=float)
        return CounterTimeSeries(
            step_cycles=self.step_cycles, counters=counters, ipc=self.ipc.copy()
        )


@dataclass
class TimeSeriesSampler:
    """Accumulates per-step deltas of the simulator's cumulative counters."""

    step_cycles: int
    _previous: dict[str, float] = field(default_factory=dict)
    _rows: list[dict[str, float]] = field(default_factory=list)
    _ipc: list[float] = field(default_factory=list)

    def sample(self, cumulative: dict[str, float]) -> None:
        """Record one completed time step given cumulative counters."""
        deltas = {
            name: cumulative.get(name, 0.0) - self._previous.get(name, 0.0)
            for name in cumulative
        }
        deltas["cycles"] = float(self.step_cycles)
        deltas.update(derived_counters(deltas))
        committed = deltas.get("commit.instructions", 0.0)
        self._rows.append(deltas)
        self._ipc.append(committed / float(self.step_cycles))
        self._previous = dict(cumulative)

    def finalize(self, cumulative: dict[str, float], leftover_cycles: int) -> None:
        """Account for a trailing partial step.

        The partial step is kept when it is at least half a step long, or when
        it is the only step of the run (very short traces must still produce a
        one-step series).
        """
        if leftover_cycles > 0 and (
            leftover_cycles >= self.step_cycles // 2 or not self._rows
        ):
            deltas = {
                name: cumulative.get(name, 0.0) - self._previous.get(name, 0.0)
                for name in cumulative
            }
            deltas["cycles"] = float(leftover_cycles)
            deltas.update(derived_counters(deltas))
            committed = deltas.get("commit.instructions", 0.0)
            self._rows.append(deltas)
            self._ipc.append(committed / float(leftover_cycles))
            self._previous = dict(cumulative)

    def build(self) -> CounterTimeSeries:
        """Assemble the collected steps into a :class:`CounterTimeSeries`."""
        if not self._rows:
            raise ValueError("no time steps were sampled; trace may be too short")
        names = sorted({name for row in self._rows for name in row})
        counters = {
            name: np.array([row.get(name, 0.0) for row in self._rows], dtype=float)
            for name in names
        }
        return CounterTimeSeries(
            step_cycles=self.step_cycles,
            counters=counters,
            ipc=np.array(self._ipc, dtype=float),
        )
