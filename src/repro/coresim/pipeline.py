"""Cycle-level out-of-order pipeline model (gem5 O3CPU stand-in).

The model implements the classic O3 stages — fetch (with branch prediction),
rename/dispatch (ROB/IQ/LSQ allocation, physical-register renaming), issue
(oldest-first over the issue ports of Table III), execute (per-class
functional-unit latencies, D-cache accesses for loads/stores), writeback
(dependence wake-up) and in-order commit — with the structure sizes and
latencies of a :class:`~repro.uarch.config.MicroarchConfig`.

Simplifications versus gem5 (documented in DESIGN.md): no wrong-path
execution (fetch stalls from a mispredicted branch until it resolves plus a
redirect penalty), stores complete in one cycle after their D-cache lookup,
and the instruction cache is assumed perfect.  None of these affect the
counter↔IPC correlation structure the methodology relies on.

Every bug-injection point calls into a
:class:`~repro.coresim.hooks.CoreBugModel`.

Performance structure (see docs/PERFORMANCE.md).  This is the hot path of
every experiment, so the implementation deviates from the textbook seed
version (frozen in :mod:`repro.coresim._reference`) in five ways that are
pinned counter-bit-identical by ``tests/test_perf_equivalence.py``:

* traces are consumed through the pre-decoded per-op scalars of a
  :class:`~repro.workloads.decoded.DecodedTrace` (no ``MicroOp`` property
  calls per simulated instruction);
* the issue queue keeps an explicit *ready* min-heap ordered by sequence
  number plus a wake-up calendar, so each cycle touches only issue-eligible
  instructions instead of scanning the whole IQ, and issued entries leave via
  tombstones instead of rebuilding the queue list every cycle;
* bug hooks that a model does not override are detected once at construction
  (class-level comparison against :class:`CoreBugModel`) and skipped entirely
  — the ``BUG_FREE`` fast path pays for no hook dispatch at all;
* all five stages are inlined into one cycle loop in :meth:`run` whose
  mutable state and counters live in local variables, synced back to the
  instance only at sampling boundaries;
* provably-idle stretches of cycles (drained or structurally blocked machine
  waiting on one completion) are fast-forwarded in one step with
  batch-applied stall counters.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from ..uarch.config import MicroarchConfig
from ..workloads.decoded import DecodedTrace, decode_trace
from ..workloads.isa import NUM_ARCH_REGS, MicroOp, OpClass
from .branch import BranchPredictor
from .caches import CacheHierarchy
from .counters import CounterTimeSeries, TimeSeriesSampler
from .hooks import BUG_FREE, CoreBugModel, DispatchContext

#: Base front-end redirect penalty (cycles) after a mispredicted branch resolves.
BASE_REDIRECT_PENALTY = 4

#: Hard safety limit: cycles per trace instruction before the model aborts.
MAX_CYCLES_PER_INSTRUCTION = 500

# Integer OpClass values compared against in the cycle loop.
_INT_DIV = int(OpClass.INT_DIV)
_FP_ALU = int(OpClass.FP_ALU)
_FP_DIV = int(OpClass.FP_DIV)
_VECTOR = int(OpClass.VECTOR)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)

#: Counter names for per-class issue counts, indexed by int(OpClass).
_ISSUE_CLASS_NAMES = [f"issue.class.{op_class.name}" for op_class in OpClass]

#: Hooks whose calls are skipped when a bug model leaves them unoverridden.
#: (name, attribute set on the pipeline).  See docs/PERFORMANCE.md for the
#: contract this imposes on bug models.
_HOOK_FLAGS = (
    ("serialize", "_hook_serialize"),
    ("issue_only_if_oldest", "_hook_issue_only_if_oldest"),
    ("oldest_blocks_others", "_hook_oldest_blocks"),
    ("extra_issue_delay", "_hook_extra_delay"),
    ("branch_extra_penalty", "_hook_branch_penalty"),
)


class _InflightOp:
    """One dynamic instruction in flight between dispatch and commit."""

    __slots__ = (
        "uop",
        "seq",
        "op_class",
        "srcs",
        "dest",
        "address",
        "pending",
        "consumers",
        "min_issue_cycle",
        "issued",
        "completed",
        "mispredicted",
        "blocks_fetch",
        "is_mem",
        "has_dest",
    )

    def __init__(
        self,
        uop: MicroOp,
        seq: int,
        op_class: int,
        srcs: tuple,
        dest,
        address,
    ) -> None:
        self.uop = uop
        self.seq = seq
        self.op_class = op_class
        self.srcs = srcs
        self.dest = dest
        self.address = address
        self.pending = 0
        self.consumers: list[_InflightOp] = []
        self.min_issue_cycle = 0
        self.issued = False
        self.completed = False
        self.mispredicted = False
        self.blocks_fetch = False
        self.is_mem = op_class == _LOAD or op_class == _STORE
        self.has_dest = dest is not None


class PipelineError(RuntimeError):
    """Raised when the pipeline deadlocks or exceeds its cycle budget."""


class O3Pipeline:
    """Executes one dynamic trace on one microarchitecture configuration."""

    def __init__(
        self,
        config: MicroarchConfig,
        bug: CoreBugModel | None = None,
        step_cycles: int = 2048,
    ) -> None:
        self.config = config
        self.bug = bug if bug is not None else BUG_FREE
        self.step_cycles = step_cycles
        self.bug.on_simulation_start(config)

        # Hoist bug-hook dispatch: a hook left at the CoreBugModel default is
        # a pure no-op and is never called (the BUG_FREE fast path).
        bug_type = type(self.bug)
        for hook_name, flag in _HOOK_FLAGS:
            overridden = getattr(bug_type, hook_name) is not getattr(
                CoreBugModel, hook_name
            )
            setattr(self, flag, overridden)

        self.caches = CacheHierarchy(config, self.bug)
        self.branch_predictor = BranchPredictor(config, self.bug)

        # Physical register pool: architectural state plus rename registers,
        # possibly reduced by bug 11.
        reduction = max(0, self.bug.register_reduction())
        self.free_regs = max(1, config.num_phys_regs - NUM_ARCH_REGS - reduction)

        # Per-operation-class execution latencies, indexed by int(OpClass).
        latency_of = {
            OpClass.INT_ALU: 1,
            OpClass.INT_MULT: config.mult_latency,
            OpClass.INT_DIV: config.div_latency,
            OpClass.FP_ALU: config.fp_latency,
            OpClass.FP_MULT: config.fp_latency,
            OpClass.FP_DIV: config.div_latency,
            OpClass.VECTOR: config.fp_latency,
            OpClass.LOAD: 0,  # computed per access
            OpClass.STORE: 1,
            OpClass.BRANCH: 1,
        }
        self._latency = [latency_of[op_class] for op_class in OpClass]
        self._class_ports = [
            [p.index for p in config.ports.ports_for(op_class)]
            for op_class in OpClass
        ]
        self._port_busy_until = [0] * config.ports.num_ports

        # Pipeline structures.  The issue queue is a count plus a ready heap
        # (seq-ordered) and a wake-up calendar; `_iq_order` (a seq-ordered
        # deque with lazy tombstone removal) is maintained only when an
        # oldest-sensitive bug hook needs the oldest un-issued entry.
        self._fetch_queue: deque[_InflightOp] = deque()
        self._rob: deque[_InflightOp] = deque()
        self._iq_count = 0
        self._ready: list[tuple[int, _InflightOp]] = []
        self._ready_at: dict[int, list[_InflightOp]] = {}
        self._track_oldest = self._hook_oldest_blocks or self._hook_issue_only_if_oldest
        self._iq_order: deque[_InflightOp] = deque()
        self._lsq_occupancy = 0
        self._reg_producer: dict[int, _InflightOp] = {}
        self._store_queue: deque[_InflightOp] = deque()
        self._completing: dict[int, list[_InflightOp]] = {}
        self._serialize_op: _InflightOp | None = None
        self._fetch_blocked_by: _InflightOp | None = None
        self._fetch_resume_cycle = 0

        self.counters: dict[str, float] = {}
        self.cycle = 0
        self.committed = 0
        self._rob_occupancy_sum = 0
        self._iq_occupancy_sum = 0
        self._lsq_occupancy_sum = 0

        # Batched counter slots, flushed into `self.counters` at sampling
        # boundaries (only non-zero slots materialise, matching the lazily
        # populated dict of the seed implementation).
        self._c_commit_instructions = 0
        self._c_commit_register_writes = 0
        self._c_commit_branches = 0
        self._c_commit_loads = 0
        self._c_commit_stores = 0
        self._c_commit_fp = 0
        self._c_commit_idle = 0
        self._c_commit_max_width = 0
        self._c_writeback = 0
        self._c_issue_instructions = 0
        self._c_issue_empty = 0
        self._c_issue_stall = 0
        self._c_issue_max_width = 0
        self._c_issue_port_conflicts = 0
        self._c_issue_class = [0] * len(_ISSUE_CLASS_NAMES)
        self._c_dispatch_instructions = 0
        self._c_dispatch_stall = 0
        self._c_dispatch_serializing = 0
        self._c_dispatch_serialized = 0
        self._c_dispatch_rob_full = 0
        self._c_dispatch_iq_full = 0
        self._c_dispatch_lsq_full = 0
        self._c_rename_stall_regs = 0
        self._c_bug_extra_delay = 0
        self._c_fetch_instructions = 0
        self._c_fetch_branches = 0
        self._c_fetch_mispredicted = 0
        self._c_fetch_stall = 0
        self._c_fetch_active = 0
        self._c_lsq_forwarded = 0

    # ------------------------------------------------------------------ utils

    def _flush_counters(self) -> None:
        """Materialise the batched integer slots into the counters dict.

        Zero-valued slots stay absent, mirroring the seed implementation's
        lazily populated dict (and therefore its sampled counter name sets).
        """
        counters = self.counters
        for name, value in (
            ("commit.instructions", self._c_commit_instructions),
            ("commit.register_writes", self._c_commit_register_writes),
            ("commit.branches", self._c_commit_branches),
            ("commit.loads", self._c_commit_loads),
            ("commit.stores", self._c_commit_stores),
            ("commit.fp_instructions", self._c_commit_fp),
            ("commit.idle_cycles", self._c_commit_idle),
            ("commit.max_width_cycles", self._c_commit_max_width),
            ("writeback.instructions", self._c_writeback),
            ("issue.instructions", self._c_issue_instructions),
            ("issue.empty_cycles", self._c_issue_empty),
            ("issue.stall_cycles", self._c_issue_stall),
            ("issue.max_width_cycles", self._c_issue_max_width),
            ("issue.port_conflicts", self._c_issue_port_conflicts),
            ("dispatch.instructions", self._c_dispatch_instructions),
            ("dispatch.stall_cycles", self._c_dispatch_stall),
            ("dispatch.serializing_stalls", self._c_dispatch_serializing),
            ("dispatch.serialized_instructions", self._c_dispatch_serialized),
            ("dispatch.stall_rob_full", self._c_dispatch_rob_full),
            ("dispatch.stall_iq_full", self._c_dispatch_iq_full),
            ("dispatch.stall_lsq_full", self._c_dispatch_lsq_full),
            ("rename.stall_cycles_regs", self._c_rename_stall_regs),
            ("bug.extra_delay_cycles", self._c_bug_extra_delay),
            ("fetch.instructions", self._c_fetch_instructions),
            ("fetch.branches", self._c_fetch_branches),
            ("fetch.mispredicted_branches", self._c_fetch_mispredicted),
            ("fetch.stall_cycles", self._c_fetch_stall),
            ("fetch.cycles_active", self._c_fetch_active),
            ("lsq.forwarded_loads", self._c_lsq_forwarded),
        ):
            if value:
                counters[name] = float(value)
        for index, value in enumerate(self._c_issue_class):
            if value:
                counters[_ISSUE_CLASS_NAMES[index]] = float(value)

    def _cumulative_counters(self) -> dict[str, float]:
        self._flush_counters()
        merged = dict(self.counters)
        merged["rob.occupancy_sum"] = float(self._rob_occupancy_sum)
        merged["iq.occupancy_sum"] = float(self._iq_occupancy_sum)
        merged["lsq.occupancy_sum"] = float(self._lsq_occupancy_sum)
        merged.update({k: float(v) for k, v in self.branch_predictor.stats().items()})
        merged.update({k: float(v) for k, v in self.caches.stats().items()})
        return merged

    # ------------------------------------------------------------------ driver

    def warmup(self, trace: "list[MicroOp] | DecodedTrace") -> None:
        """Functionally warm the caches and branch predictor with *trace*.

        The paper's probes are ~10 M instructions, long enough that cold-start
        effects are negligible; the scaled-down probes used here are not, so a
        functional warm-up pass (a standard SimPoint practice) is applied
        before timed simulation.  Statistics accumulated during warm-up are
        discarded.
        """
        caches_access = self.caches.access
        predict = self.branch_predictor.predict_and_update
        for uop, _op_class, _srcs, _dest, address, taken in decode_trace(
            trace
        ).pipeline_ops:
            if address is not None:
                caches_access(address)
            elif taken is not None:
                predict(uop)
        for cache in self.caches.levels:
            cache.reset_stats()
        self.branch_predictor.reset_stats()

    def run(self, trace: "list[MicroOp] | DecodedTrace") -> CounterTimeSeries:
        """Simulate *trace* to completion and return the sampled time series.

        The five pipeline stages are inlined into one cycle loop, processed in
        the seed order (commit, writeback, issue, dispatch, fetch).  All
        mutable machine state and every stall/throughput counter live in local
        variables; they are synced back onto the instance by the
        ``_materialise`` blocks at sampling boundaries, on abort, and at the
        end of the run.
        """
        ops = decode_trace(trace).pipeline_ops
        total = len(ops)
        if total == 0:
            raise ValueError("cannot simulate an empty trace")
        sampler = TimeSeriesSampler(self.step_cycles)

        # -- invariants hoisted out of the loop --------------------------------
        config = self.config
        width = config.width
        rob_size = config.rob_size
        iq_size = config.iq_size
        lsq_size = config.lsq_size
        capacity = config.fetch_buffer
        step_cycles = self.step_cycles
        bug = self.bug
        hook_serialize = self._hook_serialize
        hook_only_oldest = self._hook_issue_only_if_oldest
        hook_oldest_blocks = self._hook_oldest_blocks
        hook_extra_delay = self._hook_extra_delay
        hook_branch_penalty = self._hook_branch_penalty
        track_oldest = self._track_oldest
        fast_forward_ok = not hook_oldest_blocks
        latency_by_class = self._latency
        class_ports = self._class_ports
        port_busy = self._port_busy_until
        caches_access = self.caches.access
        predict = self.branch_predictor.predict_and_update
        rob = self._rob
        fetch_queue = self._fetch_queue
        iq_order = self._iq_order
        ready = self._ready
        ready_at = self._ready_at
        completing = self._completing
        store_queue = self._store_queue
        reg_producer = self._reg_producer
        c_issue_class = self._c_issue_class
        inflight_op = _InflightOp
        new_op = _InflightOp.__new__
        max_cycles = total * MAX_CYCLES_PER_INSTRUCTION + 10_000

        # -- mutable machine state in locals ----------------------------------
        cycle = self.cycle
        committed = self.committed
        free_regs = self.free_regs
        lsq_occupancy = self._lsq_occupancy
        iq_count = self._iq_count
        serialize_op = self._serialize_op
        fetch_blocked_by = self._fetch_blocked_by
        fetch_resume = self._fetch_resume_cycle
        rob_occ_sum = self._rob_occupancy_sum
        iq_occ_sum = self._iq_occupancy_sum
        lsq_occ_sum = self._lsq_occupancy_sum
        next_index = 0
        seq = 0
        last_sample_cycle = 0
        # Ops whose wake-up is simply "next cycle" (every bug-free dispatch)
        # bypass the ready_at calendar through this list.
        wake_next: list[_InflightOp] = []

        # -- counters in locals ------------------------------------------------
        c_commit_instr = self._c_commit_instructions
        c_commit_regw = self._c_commit_register_writes
        c_commit_br = self._c_commit_branches
        c_commit_ld = self._c_commit_loads
        c_commit_st = self._c_commit_stores
        c_commit_fp = self._c_commit_fp
        c_commit_idle = self._c_commit_idle
        c_commit_maxw = self._c_commit_max_width
        c_writeback = self._c_writeback
        c_issue_instr = self._c_issue_instructions
        c_issue_empty = self._c_issue_empty
        c_issue_stall = self._c_issue_stall
        c_issue_maxw = self._c_issue_max_width
        c_issue_conflicts = self._c_issue_port_conflicts
        c_disp_instr = self._c_dispatch_instructions
        c_disp_stall = self._c_dispatch_stall
        c_disp_serializing = self._c_dispatch_serializing
        c_disp_serialized = self._c_dispatch_serialized
        c_disp_robfull = self._c_dispatch_rob_full
        c_disp_iqfull = self._c_dispatch_iq_full
        c_disp_lsqfull = self._c_dispatch_lsq_full
        c_rename_stall = self._c_rename_stall_regs
        c_bug_delay = self._c_bug_extra_delay
        c_fetch_instr = self._c_fetch_instructions
        c_fetch_br = self._c_fetch_branches
        c_fetch_mispred = self._c_fetch_mispredicted
        c_fetch_stall = self._c_fetch_stall
        c_fetch_active = self._c_fetch_active
        c_lsq_fwd = self._c_lsq_forwarded

        # NOTE: the _materialise blocks below are intentionally pasted inline
        # (a closure would turn every hot local into a cell variable).  Keep
        # the three copies in sync.
        while committed < total:
            cycle += 1
            if cycle > max_cycles:
                # _materialise (abort path)
                self.cycle = cycle
                self.committed = committed
                self.free_regs = free_regs
                self._lsq_occupancy = lsq_occupancy
                self._iq_count = iq_count
                self._serialize_op = serialize_op
                self._fetch_blocked_by = fetch_blocked_by
                self._fetch_resume_cycle = fetch_resume
                self._rob_occupancy_sum = rob_occ_sum
                self._iq_occupancy_sum = iq_occ_sum
                self._lsq_occupancy_sum = lsq_occ_sum
                self._c_commit_instructions = c_commit_instr
                self._c_commit_register_writes = c_commit_regw
                self._c_commit_branches = c_commit_br
                self._c_commit_loads = c_commit_ld
                self._c_commit_stores = c_commit_st
                self._c_commit_fp = c_commit_fp
                self._c_commit_idle = c_commit_idle
                self._c_commit_max_width = c_commit_maxw
                self._c_writeback = c_writeback
                self._c_issue_instructions = c_issue_instr
                self._c_issue_empty = c_issue_empty
                self._c_issue_stall = c_issue_stall
                self._c_issue_max_width = c_issue_maxw
                self._c_issue_port_conflicts = c_issue_conflicts
                self._c_dispatch_instructions = c_disp_instr
                self._c_dispatch_stall = c_disp_stall
                self._c_dispatch_serializing = c_disp_serializing
                self._c_dispatch_serialized = c_disp_serialized
                self._c_dispatch_rob_full = c_disp_robfull
                self._c_dispatch_iq_full = c_disp_iqfull
                self._c_dispatch_lsq_full = c_disp_lsqfull
                self._c_rename_stall_regs = c_rename_stall
                self._c_bug_extra_delay = c_bug_delay
                self._c_fetch_instructions = c_fetch_instr
                self._c_fetch_branches = c_fetch_br
                self._c_fetch_mispredicted = c_fetch_mispred
                self._c_fetch_stall = c_fetch_stall
                self._c_fetch_active = c_fetch_active
                self._c_lsq_forwarded = c_lsq_fwd
                raise PipelineError(
                    f"pipeline exceeded {max_cycles} cycles for {total} instructions "
                    f"on {self.config.name} with bug {self.bug.name!r}"
                )

            # ---------------------------------------------------------- commit
            if rob and rob[0].completed:
                committed_now = 0
                while rob and committed_now < width:
                    op = rob[0]
                    if not op.completed:
                        break
                    rob.popleft()
                    committed_now += 1
                    op_class = op.op_class
                    if op.has_dest:
                        c_commit_regw += 1
                        free_regs += 1
                        dest = op.dest
                        if reg_producer.get(dest) is op:
                            del reg_producer[dest]
                    if op_class == _BRANCH:
                        c_commit_br += 1
                    elif op_class == _LOAD:
                        c_commit_ld += 1
                        lsq_occupancy -= 1
                    elif op_class == _STORE:
                        c_commit_st += 1
                        lsq_occupancy -= 1
                        # Stores commit in program order, so the committing
                        # store is the store queue's front entry; the fallback
                        # keeps hand-driven pipeline states safe.
                        if store_queue and store_queue[0] is op:
                            store_queue.popleft()
                        elif op in store_queue:
                            store_queue.remove(op)
                    if _FP_ALU <= op_class <= _VECTOR:
                        c_commit_fp += 1
                committed += committed_now
                c_commit_instr += committed_now
                if committed_now >= width:
                    c_commit_maxw += 1
            else:
                c_commit_idle += 1

            # ------------------------------------------------------- writeback
            finishing = completing.pop(cycle, None)
            if finishing is not None:
                for op in finishing:
                    op.completed = True
                    consumers = op.consumers
                    if consumers:
                        for consumer in consumers:
                            pending = consumer.pending - 1
                            consumer.pending = pending
                            if pending == 0:
                                min_issue = consumer.min_issue_cycle
                                if cycle >= min_issue:
                                    heappush(ready, (consumer.seq, consumer))
                                else:
                                    waiters = ready_at.get(min_issue)
                                    if waiters is None:
                                        ready_at[min_issue] = [consumer]
                                    else:
                                        waiters.append(consumer)
                        op.consumers = []
                    if op.blocks_fetch and fetch_blocked_by is op:
                        penalty = BASE_REDIRECT_PENALTY
                        if hook_branch_penalty:
                            penalty += bug.branch_extra_penalty(op.uop, True)
                        fetch_resume = cycle + penalty
                        fetch_blocked_by = None
                    if serialize_op is op:
                        serialize_op = None
                c_writeback += len(finishing)

            # ----------------------------------------------------- issue wake
            if wake_next:
                for op in wake_next:
                    heappush(ready, (op.seq, op))
                wake_next = []
            if ready_at:
                activated = ready_at.pop(cycle, None)
                if activated is not None:
                    for op in activated:
                        heappush(ready, (op.seq, op))

            # ------------------------------------------------------------ issue
            if ready or track_oldest:
                if iq_count == 0:
                    c_issue_empty += 1
                else:
                    restrict_to_oldest = False
                    oldest = None
                    if track_oldest:
                        while iq_order[0].issued:
                            iq_order.popleft()
                        oldest = iq_order[0]
                        if hook_oldest_blocks:
                            restrict_to_oldest = bug.oldest_blocks_others(oldest.uop)
                    if not ready or (
                        restrict_to_oldest and ready[0][1] is not oldest
                    ):
                        # Nothing issue-eligible this cycle (the seed scan
                        # would visit every IQ entry and issue nothing).
                        c_issue_stall += 1
                    else:
                        issued = 0
                        ports_used = 0  # bitmask over port indices
                        deferred = None
                        while ready and issued < width:
                            entry = ready[0]
                            op = entry[1]
                            if restrict_to_oldest and op is not oldest:
                                break
                            heappop(ready)
                            if (
                                hook_only_oldest
                                and op is not oldest
                                and bug.issue_only_if_oldest(op.uop)
                            ):
                                if deferred is None:
                                    deferred = []
                                deferred.append(entry)
                                continue
                            if serialize_op is not None and op is not serialize_op:
                                # A serialising instruction blocks younger
                                # instructions until it has itself issued.
                                if op.seq > serialize_op.seq:
                                    if deferred is None:
                                        deferred = []
                                    deferred.append(entry)
                                    continue
                            op_class = op.op_class
                            port = -1
                            for candidate in class_ports[op_class]:
                                if ports_used >> candidate & 1:
                                    continue
                                if port_busy[candidate] > cycle:
                                    continue
                                port = candidate
                                break
                            if port < 0:
                                c_issue_conflicts += 1
                                if deferred is None:
                                    deferred = []
                                deferred.append(entry)
                                continue
                            ports_used |= 1 << port
                            # -- execute: latency + D-cache access
                            if op_class == _LOAD:
                                address = op.address
                                op_seq = op.seq
                                forwarded = False
                                for store in store_queue:
                                    if store.address == address and store.seq < op_seq:
                                        forwarded = True
                                        break
                                if forwarded:
                                    c_lsq_fwd += 1
                                    latency = 1
                                else:
                                    latency = caches_access(address)
                            elif op_class == _STORE:
                                caches_access(op.address)
                                latency = 1
                            else:
                                latency = latency_by_class[op_class]
                                if op_class == _INT_DIV or op_class == _FP_DIV:
                                    # Non-pipelined units block their port.
                                    port_busy[port] = cycle + latency
                            op.issued = True
                            finish = cycle + (latency if latency > 1 else 1)
                            finish_list = completing.get(finish)
                            if finish_list is None:
                                completing[finish] = [op]
                            else:
                                finish_list.append(op)
                            issued += 1
                            c_issue_class[op_class] += 1
                        if deferred:
                            for entry in deferred:
                                heappush(ready, entry)
                        if issued == 0:
                            c_issue_stall += 1
                        else:
                            iq_count -= issued
                            c_issue_instr += issued
                            if issued >= width:
                                c_issue_maxw += 1
            elif iq_count:
                c_issue_stall += 1
            else:
                c_issue_empty += 1

            # --------------------------------------------------------- dispatch
            if fetch_queue:
                dispatched = 0
                while dispatched < width:
                    if serialize_op is not None:
                        c_disp_serializing += 1
                        break
                    op = fetch_queue[0]
                    if len(rob) >= rob_size:
                        c_disp_robfull += 1
                        break
                    if iq_count >= iq_size:
                        c_disp_iqfull += 1
                        break
                    if op.is_mem and lsq_occupancy >= lsq_size:
                        c_disp_lsqfull += 1
                        break
                    if op.has_dest and free_regs <= 0:
                        c_rename_stall += 1
                        break

                    fetch_queue.popleft()
                    dispatched += 1

                    # Rename: link sources to in-flight producers.  The
                    # producer opcode list is only assembled when an
                    # extra-delay hook will consume it.
                    pending = 0
                    if hook_extra_delay:
                        producer_opcodes = []
                        for src in op.srcs:
                            producer = reg_producer.get(src)
                            if producer is not None and not producer.completed:
                                pending += 1
                                producer.consumers.append(op)
                                producer_opcodes.append(producer.uop.opcode)
                    else:
                        for src in op.srcs:
                            producer = reg_producer.get(src)
                            if producer is not None and not producer.completed:
                                pending += 1
                                producer.consumers.append(op)
                    op.pending = pending
                    if op.has_dest:
                        free_regs -= 1
                        reg_producer[op.dest] = op

                    if hook_extra_delay:
                        extra = bug.extra_issue_delay(
                            op.uop,
                            DispatchContext(
                                iq_free=iq_size - iq_count,
                                rob_free=rob_size - len(rob),
                                producer_opcodes=tuple(producer_opcodes),
                            ),
                        )
                        if extra > 0:
                            min_issue = cycle + 1 + extra
                            c_bug_delay += extra
                        else:
                            min_issue = cycle + 1
                    else:
                        min_issue = cycle + 1
                    op.min_issue_cycle = min_issue

                    if hook_serialize and bug.serialize(op.uop):
                        serialize_op = op
                        c_disp_serialized += 1

                    rob.append(op)
                    iq_count += 1
                    if track_oldest:
                        iq_order.append(op)
                    if pending == 0:
                        if min_issue == cycle + 1:
                            wake_next.append(op)
                        else:
                            waiters = ready_at.get(min_issue)
                            if waiters is None:
                                ready_at[min_issue] = [op]
                            else:
                                waiters.append(op)
                    if op.is_mem:
                        lsq_occupancy += 1
                        if op.op_class == _STORE:
                            store_queue.append(op)
                    if not fetch_queue:
                        break
                if dispatched:
                    c_disp_instr += dispatched
                elif fetch_queue:
                    c_disp_stall += 1

            # ------------------------------------------------------------ fetch
            if fetch_blocked_by is not None or cycle < fetch_resume:
                c_fetch_stall += 1
            elif next_index < total and len(fetch_queue) < capacity:
                fetched = 0
                while (
                    fetched < width
                    and next_index < total
                    and len(fetch_queue) < capacity
                ):
                    uop, op_class, srcs, dest, address, _taken = ops[next_index]
                    # Record-style construction: __new__ plus direct slot
                    # stores beats a Python-level __init__ call in the
                    # per-instruction path.
                    op = new_op(inflight_op)
                    op.uop = uop
                    op.seq = seq
                    op.op_class = op_class
                    op.srcs = srcs
                    op.dest = dest
                    op.address = address
                    op.pending = 0
                    op.consumers = []
                    op.min_issue_cycle = 0
                    op.issued = False
                    op.completed = False
                    op.mispredicted = False
                    op.blocks_fetch = False
                    op.is_mem = op_class == _LOAD or op_class == _STORE
                    op.has_dest = dest is not None
                    next_index += 1
                    seq += 1
                    fetched += 1
                    if op_class == _BRANCH:
                        c_fetch_br += 1
                        if predict(uop):
                            op.mispredicted = True
                            op.blocks_fetch = True
                            fetch_blocked_by = op
                            c_fetch_mispred += 1
                            fetch_queue.append(op)
                            break
                    fetch_queue.append(op)
                c_fetch_instr += fetched
                c_fetch_active += 1

            # ------------------------------------------------- occupancy/sample
            rob_len = len(rob)
            rob_occ_sum += rob_len
            iq_occ_sum += iq_count
            lsq_occ_sum += lsq_occupancy

            if cycle - last_sample_cycle >= step_cycles:
                # _materialise (sampling path)
                self.cycle = cycle
                self.committed = committed
                self.free_regs = free_regs
                self._lsq_occupancy = lsq_occupancy
                self._iq_count = iq_count
                self._serialize_op = serialize_op
                self._fetch_blocked_by = fetch_blocked_by
                self._fetch_resume_cycle = fetch_resume
                self._rob_occupancy_sum = rob_occ_sum
                self._iq_occupancy_sum = iq_occ_sum
                self._lsq_occupancy_sum = lsq_occ_sum
                self._c_commit_instructions = c_commit_instr
                self._c_commit_register_writes = c_commit_regw
                self._c_commit_branches = c_commit_br
                self._c_commit_loads = c_commit_ld
                self._c_commit_stores = c_commit_st
                self._c_commit_fp = c_commit_fp
                self._c_commit_idle = c_commit_idle
                self._c_commit_max_width = c_commit_maxw
                self._c_writeback = c_writeback
                self._c_issue_instructions = c_issue_instr
                self._c_issue_empty = c_issue_empty
                self._c_issue_stall = c_issue_stall
                self._c_issue_max_width = c_issue_maxw
                self._c_issue_port_conflicts = c_issue_conflicts
                self._c_dispatch_instructions = c_disp_instr
                self._c_dispatch_stall = c_disp_stall
                self._c_dispatch_serializing = c_disp_serializing
                self._c_dispatch_serialized = c_disp_serialized
                self._c_dispatch_rob_full = c_disp_robfull
                self._c_dispatch_iq_full = c_disp_iqfull
                self._c_dispatch_lsq_full = c_disp_lsqfull
                self._c_rename_stall_regs = c_rename_stall
                self._c_bug_extra_delay = c_bug_delay
                self._c_fetch_instructions = c_fetch_instr
                self._c_fetch_branches = c_fetch_br
                self._c_fetch_mispredicted = c_fetch_mispred
                self._c_fetch_stall = c_fetch_stall
                self._c_fetch_active = c_fetch_active
                self._c_lsq_forwarded = c_lsq_fwd
                sampler.sample(self._cumulative_counters())
                last_sample_cycle = cycle

            # ---------------------------------------------------- fast-forward
            # When nothing is issue-eligible, the ROB head is incomplete, the
            # fetch stage is provably idle next cycle and dispatch is either
            # empty-handed or provably blocked, no stage can make progress
            # until the next completion / wake-up / fetch-resume event.  Jump
            # there in one step, batch-applying the per-cycle stall counters
            # every skipped cycle would have accumulated (the blocking state
            # is constant across the window, so the same counters fire every
            # cycle).  Disabled while an oldest-blocks-others bug is injected
            # and the IQ is non-empty (the seed consults that hook every such
            # cycle).
            if (
                not ready
                and not wake_next
                and (iq_count == 0 or fast_forward_ok)
                and (not rob or not rob[0].completed)
            ):
                blocked = fetch_blocked_by is not None
                if (
                    blocked
                    or cycle + 1 < fetch_resume
                    or next_index >= total
                    or len(fetch_queue) >= capacity
                ):
                    # Which dispatch-stall counter (if any) fires every cycle
                    # of the window; -1 means dispatch can progress → no skip.
                    dispatch_reason = 0
                    if fetch_queue:
                        head = fetch_queue[0]
                        if serialize_op is not None:
                            dispatch_reason = 1
                        elif len(rob) >= rob_size:
                            dispatch_reason = 2
                        elif iq_count >= iq_size:
                            dispatch_reason = 3
                        elif head.is_mem and lsq_occupancy >= lsq_size:
                            dispatch_reason = 4
                        elif head.has_dest and free_regs <= 0:
                            dispatch_reason = 5
                        else:
                            dispatch_reason = -1
                    if dispatch_reason >= 0 and (completing or ready_at):
                        event = last_sample_cycle + step_cycles
                        if completing:
                            first_finish = min(completing)
                            if first_finish < event:
                                event = first_finish
                        if ready_at:
                            wake = min(ready_at)
                            if wake < event:
                                event = wake
                        if (
                            not blocked
                            and next_index < total
                            and len(fetch_queue) < capacity
                            and fetch_resume < event
                        ):
                            event = fetch_resume
                        if event > max_cycles + 1:
                            event = max_cycles + 1
                        skipped = event - cycle - 1
                        if skipped > 0:
                            c_commit_idle += skipped
                            if iq_count == 0:
                                c_issue_empty += skipped
                            else:
                                c_issue_stall += skipped
                            if dispatch_reason:
                                c_disp_stall += skipped
                                if dispatch_reason == 1:
                                    c_disp_serializing += skipped
                                elif dispatch_reason == 2:
                                    c_disp_robfull += skipped
                                elif dispatch_reason == 3:
                                    c_disp_iqfull += skipped
                                elif dispatch_reason == 4:
                                    c_disp_lsqfull += skipped
                                else:
                                    c_rename_stall += skipped
                            if blocked:
                                c_fetch_stall += skipped
                            elif fetch_resume > cycle + 1:
                                # Stall cycles only while the redirect window
                                # is still open (the skip may extend past it
                                # when the trace is exhausted or the fetch
                                # buffer is full).
                                stop = event - 1
                                if fetch_resume - 1 < stop:
                                    stop = fetch_resume - 1
                                c_fetch_stall += stop - cycle
                            rob_occ_sum += rob_len * skipped
                            iq_occ_sum += iq_count * skipped
                            lsq_occ_sum += lsq_occupancy * skipped
                            cycle = event - 1

        # _materialise (end of run)
        self.cycle = cycle
        self.committed = committed
        self.free_regs = free_regs
        self._lsq_occupancy = lsq_occupancy
        self._iq_count = iq_count
        self._serialize_op = serialize_op
        self._fetch_blocked_by = fetch_blocked_by
        self._fetch_resume_cycle = fetch_resume
        self._rob_occupancy_sum = rob_occ_sum
        self._iq_occupancy_sum = iq_occ_sum
        self._lsq_occupancy_sum = lsq_occ_sum
        self._c_commit_instructions = c_commit_instr
        self._c_commit_register_writes = c_commit_regw
        self._c_commit_branches = c_commit_br
        self._c_commit_loads = c_commit_ld
        self._c_commit_stores = c_commit_st
        self._c_commit_fp = c_commit_fp
        self._c_commit_idle = c_commit_idle
        self._c_commit_max_width = c_commit_maxw
        self._c_writeback = c_writeback
        self._c_issue_instructions = c_issue_instr
        self._c_issue_empty = c_issue_empty
        self._c_issue_stall = c_issue_stall
        self._c_issue_max_width = c_issue_maxw
        self._c_issue_port_conflicts = c_issue_conflicts
        self._c_dispatch_instructions = c_disp_instr
        self._c_dispatch_stall = c_disp_stall
        self._c_dispatch_serializing = c_disp_serializing
        self._c_dispatch_serialized = c_disp_serialized
        self._c_dispatch_rob_full = c_disp_robfull
        self._c_dispatch_iq_full = c_disp_iqfull
        self._c_dispatch_lsq_full = c_disp_lsqfull
        self._c_rename_stall_regs = c_rename_stall
        self._c_bug_extra_delay = c_bug_delay
        self._c_fetch_instructions = c_fetch_instr
        self._c_fetch_branches = c_fetch_br
        self._c_fetch_mispredicted = c_fetch_mispred
        self._c_fetch_stall = c_fetch_stall
        self._c_fetch_active = c_fetch_active
        self._c_lsq_forwarded = c_lsq_fwd
        sampler.finalize(self._cumulative_counters(), cycle - last_sample_cycle)
        return sampler.build()
