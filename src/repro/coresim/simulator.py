"""High-level simulation API: run a probe trace on a microarchitecture.

:func:`simulate_trace` is the main entry point used by the probes, the
experiments and the examples.  It wraps :class:`~repro.coresim.pipeline.O3Pipeline`
and packages the sampled counter time series plus whole-run aggregates into a
:class:`SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uarch.config import MicroarchConfig
from ..workloads.decoded import DecodedTrace
from ..workloads.isa import MicroOp
from .counters import CounterTimeSeries
from .hooks import CoreBugModel
from .pipeline import O3Pipeline

#: Default time-step size in cycles.  The paper uses 500 k cycles on ~10 M
#: instruction SimPoints; probes here are scaled down proportionally.
DEFAULT_STEP_CYCLES = 2048


@dataclass
class SimulationResult:
    """Outcome of simulating one trace on one configuration."""

    config_name: str
    bug_name: str
    instructions: int
    cycles: int
    series: CounterTimeSeries

    @property
    def ipc(self) -> float:
        """Whole-run committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc_series(self) -> np.ndarray:
        """Per-time-step IPC."""
        return self.series.ipc

    def runtime_seconds(self, clock_ghz: float) -> float:
        """Wall-clock execution time implied by the cycle count."""
        return self.cycles / (clock_ghz * 1e9)


def simulate_trace(
    config: MicroarchConfig,
    trace: "list[MicroOp] | DecodedTrace",
    bug: CoreBugModel | None = None,
    step_cycles: int = DEFAULT_STEP_CYCLES,
    warmup: bool = True,
) -> SimulationResult:
    """Simulate *trace* on *config*, optionally with an injected *bug*.

    Parameters
    ----------
    config:
        The microarchitecture to model (see :mod:`repro.uarch.presets`).
    trace:
        Dynamic instruction stream (e.g. a SimPoint probe's trace), either a
        plain micro-op list or a pre-decoded
        :class:`~repro.workloads.decoded.DecodedTrace`.  Passing the decoded
        form (or re-passing the same list object) amortises per-op decoding
        across every (design x bug) simulation of the trace.
    bug:
        Bug model to inject, or ``None`` for the bug-free design.
    step_cycles:
        Counter-sampling time-step size in cycles.
    warmup:
        Functionally warm caches and branch predictors before the timed run,
        compensating for the scaled-down probe length (see DESIGN.md §2).
    """
    pipeline = O3Pipeline(config, bug=bug, step_cycles=step_cycles)
    if warmup:
        pipeline.warmup(trace)
    series = pipeline.run(trace)
    return SimulationResult(
        config_name=config.name,
        bug_name=pipeline.bug.name,
        instructions=pipeline.committed,
        cycles=pipeline.cycle,
        series=series,
    )
