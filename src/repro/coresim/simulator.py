"""High-level simulation API: run a probe trace on a microarchitecture.

:func:`simulate_trace` is the main entry point used by the probes, the
experiments and the examples.  It wraps :class:`~repro.coresim.pipeline.O3Pipeline`
and packages the sampled counter time series plus whole-run aggregates into a
:class:`SimulationResult`.

Three counter-bit-identical kernels back it (see docs/PERFORMANCE.md):

* ``"scalar"`` — the per-trace :class:`O3Pipeline` cycle loop (the default);
* ``"vector"`` — the numpy-batched lockstep kernel of
  :mod:`repro.coresim.vector`, which simulates many probes of the same
  design at once.  :func:`simulate_trace_batch` is its natural entry point;
  ``simulate_trace(..., kernel="vector")`` runs a batch of one.
* ``"native"`` — the compiled C cycle loop of :mod:`repro.coresim.native`,
  built lazily from the shipped source with whatever system compiler is
  found.  When no compiler exists (or the build fails) it degrades to the
  scalar kernel with a one-time warning, never an exception.

``"auto"`` is a selection policy, not a fourth implementation: per request
it picks the fastest eligible kernel (native when compiled and the bug model
qualifies, else scalar — the vector kernel measured below parity on this
class of host and is never auto-selected; see :func:`choose_kernel`).

Kernel selection: the explicit ``kernel=`` argument wins, then the
``REPRO_KERNEL`` environment variable, then ``"scalar"``.  Bug models that
override dynamic hooks always fall back to the scalar kernel regardless of
the selection (the batched kernels cannot honour per-cycle hooks).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..uarch.config import MicroarchConfig
from ..workloads.decoded import DecodedTrace
from ..workloads.isa import MicroOp
from .counters import CounterTimeSeries
from .hooks import CoreBugModel
from .pipeline import O3Pipeline

#: Default time-step size in cycles.  The paper uses 500 k cycles on ~10 M
#: instruction SimPoints; probes here are scaled down proportionally.
DEFAULT_STEP_CYCLES = 2048

#: Environment variable naming the default simulation kernel.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Kernel names understood by :func:`simulate_trace`.
KERNELS = ("scalar", "vector", "native", "auto")


def resolve_kernel(kernel: "str | None" = None) -> str:
    """The effective kernel name: argument, else ``REPRO_KERNEL``, else scalar."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR, "").strip() or "scalar"
    if kernel not in KERNELS:
        raise ValueError(f"unknown simulation kernel {kernel!r}; available: {KERNELS}")
    return kernel


def choose_kernel(bug: "CoreBugModel | None" = None, lanes: int = 1) -> str:
    """The ``"auto"`` policy: concrete kernel for *lanes* jobs of one *bug*.

    Preference order is native > scalar > vector:

    * **native** whenever the bug model is hook-free and the compiled
      library is available — it wins at every lane count (≥2x single-thread
      floor, benchmarked far above it on this host).
    * **scalar** otherwise.  The numpy vector kernel is *never* auto-chosen:
      its honest aggregate on the 1-vCPU reference host was 0.886x at 192
      lanes (``BENCH_simulation.json`` ``batch``), so no *lanes* value makes
      it the expected winner; it remains available by explicit request.

    *lanes* is part of the policy signature so future kernels with
    batch-size crossover points slot in without call-site changes.
    """
    del lanes  # no current kernel has a batch-size crossover
    from .native import native_available, supports_native

    if supports_native(bug) and native_available():
        return "native"
    return "scalar"


@dataclass
class SimulationResult:
    """Outcome of simulating one trace on one configuration."""

    config_name: str
    bug_name: str
    instructions: int
    cycles: int
    series: CounterTimeSeries

    @property
    def ipc(self) -> float:
        """Whole-run committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc_series(self) -> np.ndarray:
        """Per-time-step IPC."""
        return self.series.ipc

    def runtime_seconds(self, clock_ghz: float) -> float:
        """Wall-clock execution time implied by the cycle count."""
        return self.cycles / (clock_ghz * 1e9)


def simulate_trace(
    config: MicroarchConfig,
    trace: "list[MicroOp] | DecodedTrace",
    bug: CoreBugModel | None = None,
    step_cycles: int = DEFAULT_STEP_CYCLES,
    warmup: bool = True,
    kernel: "str | None" = None,
) -> SimulationResult:
    """Simulate *trace* on *config*, optionally with an injected *bug*.

    Parameters
    ----------
    config:
        The microarchitecture to model (see :mod:`repro.uarch.presets`).
    trace:
        Dynamic instruction stream (e.g. a SimPoint probe's trace), either a
        plain micro-op list or a pre-decoded
        :class:`~repro.workloads.decoded.DecodedTrace`.  Passing the decoded
        form (or re-passing the same list object) amortises per-op decoding
        across every (design x bug) simulation of the trace.
    bug:
        Bug model to inject, or ``None`` for the bug-free design.
    step_cycles:
        Counter-sampling time-step size in cycles.
    warmup:
        Functionally warm caches and branch predictors before the timed run,
        compensating for the scaled-down probe length (see DESIGN.md §2).
    kernel:
        ``"scalar"``, ``"vector"``, ``"native"``, ``"auto"`` or ``None``
        (use ``REPRO_KERNEL``, default scalar).  All kernels are
        counter-bit-identical; bug models that override dynamic hooks
        silently use the scalar kernel, and a missing/unbuildable native
        library degrades to scalar with a one-time warning.
    """
    resolved = resolve_kernel(kernel)
    if resolved == "auto":
        resolved = choose_kernel(bug, lanes=1)
    if resolved == "native":
        from .native import NativeKernelUnavailable, native_available, supports_native

        if supports_native(bug) and native_available():
            from .native import simulate_batch_native

            try:
                return simulate_batch_native(
                    config, [trace], bug=bug, step_cycles=step_cycles, warmup=warmup
                )[0]
            except NativeKernelUnavailable:
                pass  # config exceeds a kernel limit: scalar fallback
    elif resolved == "vector":
        from .vector import simulate_batch, supports_vector

        if supports_vector(bug):
            return simulate_batch(
                config, [trace], bug=bug, step_cycles=step_cycles, warmup=warmup
            )[0]
    pipeline = O3Pipeline(config, bug=bug, step_cycles=step_cycles)
    if warmup:
        pipeline.warmup(trace)
    series = pipeline.run(trace)
    return SimulationResult(
        config_name=config.name,
        bug_name=pipeline.bug.name,
        instructions=pipeline.committed,
        cycles=pipeline.cycle,
        series=series,
    )


def simulate_trace_batch(
    config: MicroarchConfig,
    traces: "Sequence[list[MicroOp] | DecodedTrace]",
    bug: CoreBugModel | None = None,
    step_cycles: int = DEFAULT_STEP_CYCLES,
    warmup: bool = True,
    kernel: "str | None" = None,
) -> "list[SimulationResult]":
    """Simulate many probes of one design, batching when the kernel allows.

    With the ``vector`` kernel (and a vector-eligible bug model) all traces
    advance in one numpy lockstep pass; with ``native`` (or ``auto``
    resolving to it) each trace runs through the compiled C cycle loop —
    the batched fast paths the runtime's same-config job grouping and
    ``repro-bench`` exercise.  Otherwise this is exactly a loop over
    :func:`simulate_trace`.  Results are identical every way, in input
    order.
    """
    resolved = resolve_kernel(kernel)
    if resolved == "auto":
        resolved = choose_kernel(bug, lanes=len(traces))
    if resolved == "native":
        from .native import NativeKernelUnavailable, native_available, supports_native

        if supports_native(bug) and native_available():
            from .native import simulate_batch_native

            try:
                return simulate_batch_native(
                    config,
                    list(traces),
                    bug=bug,
                    step_cycles=step_cycles,
                    warmup=warmup,
                )
            except NativeKernelUnavailable:
                pass  # config exceeds a kernel limit: scalar fallback
    elif resolved == "vector":
        from .vector import simulate_batch, supports_vector

        if supports_vector(bug):
            return simulate_batch(
                config, list(traces), bug=bug, step_cycles=step_cycles, warmup=warmup
            )
    return [
        simulate_trace(
            config,
            trace,
            bug=bug,
            step_cycles=step_cycles,
            warmup=warmup,
            kernel="scalar",
        )
        for trace in traces
    ]
