"""Counter-contract checker (rule family 1): the three-kernel name universe.

The reproduction's core guarantee is that the scalar pipeline, the frozen
seed reference, the numpy vector kernel and the compiled native kernel emit
**identical counter name sets** (and values — values are the differential
oracle's job; names are checkable statically).  This rule extracts the
counter-name universe of each lane without running any simulation:

* **reference** — ``coresim/_reference.py`` (``_bump("...")`` sites, stats
  dicts, cache/issue-class f-string templates).  The frozen seed copy is the
  anchor every other lane is compared against.
* **scalar** — ``coresim/pipeline.py`` + ``branch.py`` + ``caches.py``.
* **vector** — ``coresim/vector.py``.  Three counters are exempt by
  construction (:data:`VECTOR_EXEMPT`): they can only be produced by bug
  models that override dynamic hooks, which are never vector-eligible.
* **native** — the slot-name tables in ``coresim/native/kernel.py``, plus a
  light C tokenizer over ``_core.c`` checking the slot-enum segmentation and
  the ``SimParams`` struct layout against the ctypes marshalling.

The checker also consumes ``tests/data/counter_manifest.json`` (written by
``tests/data/make_golden.py``), so the statically extracted universe and the
golden suite's observed-at-runtime universe share one source of truth: every
name a kernel actually sampled must be statically accounted for, and every
kernel must have observed the same names.
"""

from __future__ import annotations

import ast
import json
import re

from .findings import Finding
from .csource import CSource, CTokenizeError, tokenize
from .tree import SourceTree

#: Counter-name shape: a known subsystem prefix, a dot, then dotted segments.
COUNTER_NAME_RE = re.compile(
    r"^(commit|writeback|issue|dispatch|rename|fetch|lsq|rob|iq|bp|bug|cache)"
    r"\.[a-z0-9_]+(\.[a-zA-Z0-9_]+)*$"
)

#: Derived-counter shape (computed by ``counters.derived_counters``).
DERIVED_NAME_RE = re.compile(r"^derived\.[a-z0-9_]+$")

#: Cache-level short names expanded through the ``cache.{name}.accesses``
#: f-string templates of the scalar/reference lanes.
_CACHE_LEVEL_RE = re.compile(r"^(l1d|l[0-9])$")

REFERENCE_PATH = "src/repro/coresim/_reference.py"
SCALAR_PATHS = (
    "src/repro/coresim/pipeline.py",
    "src/repro/coresim/branch.py",
    "src/repro/coresim/caches.py",
)
VECTOR_PATH = "src/repro/coresim/vector.py"
NATIVE_KERNEL_PATH = "src/repro/coresim/native/kernel.py"
NATIVE_C_PATH = "src/repro/coresim/native/_core.c"
COUNTERS_PATH = "src/repro/coresim/counters.py"
ISA_PATH = "src/repro/workloads/isa.py"
MANIFEST_PATH = "tests/data/counter_manifest.json"

#: Counters only hook-overriding (never vector-eligible) bug models produce.
#: The vector lane legitimately never emits them; every other lane must.
VECTOR_EXEMPT = frozenset(
    {
        "dispatch.serializing_stalls",
        "dispatch.serialized_instructions",
        "bug.extra_delay_cycles",
    }
)

RULE = "counter-contract"


def _fail(path: str, line: int, message: str) -> Finding:
    return Finding(RULE, path, line, message)


def opclass_members(tree: SourceTree) -> "list[str]":
    """OpClass member names, in definition order, from ``workloads/isa.py``."""
    module = tree.parse(ISA_PATH)
    for node in module.body:
        if isinstance(node, ast.ClassDef) and node.name == "OpClass":
            members = []
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            members.append(target.id)
            return members
    raise ValueError(f"OpClass enum not found in {ISA_PATH}")


def _docstring_lines(module: ast.Module) -> "set[int]":
    lines: set[int] = set()
    for node in ast.walk(module):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                lines.add(body[0].value.lineno)
    return lines


def _joined_str_parts(node: ast.JoinedStr) -> "list[str]":
    return [
        part.value
        for part in node.values
        if isinstance(part, ast.Constant) and isinstance(part.value, str)
    ]


def extract_lane_names(
    tree: SourceTree, paths: "tuple[str, ...]", op_classes: "list[str]"
) -> "set[str]":
    """The statically visible counter-name set of one lane's source files.

    Plain string constants matching :data:`COUNTER_NAME_RE` are taken
    verbatim (docstrings excluded).  Two f-string templates are expanded:
    ``issue.class.{...}`` over the OpClass members and
    ``cache.{...}.accesses``/``.misses`` over the cache-level short names
    found in the same lane.
    """
    names: set[str] = set()
    cache_levels: set[str] = set()
    saw_cache_template = False
    for path in paths:
        module = tree.parse(path)
        skip_lines = _docstring_lines(module)
        for node in ast.walk(module):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.lineno in skip_lines:
                    continue
                if COUNTER_NAME_RE.match(node.value):
                    names.add(node.value)
                elif _CACHE_LEVEL_RE.match(node.value):
                    cache_levels.add(node.value)
            elif isinstance(node, ast.JoinedStr):
                parts = _joined_str_parts(node)
                if any(part.startswith("issue.class.") for part in parts):
                    names.update(f"issue.class.{member}" for member in op_classes)
                elif "cache." in parts:
                    for suffix in (".accesses", ".misses"):
                        if suffix in parts:
                            saw_cache_template = True
    if saw_cache_template:
        for level in cache_levels:
            names.add(f"cache.{level}.accesses")
            names.add(f"cache.{level}.misses")
    return names


def extract_derived_names(tree: SourceTree) -> "set[str]":
    """Derived-counter names declared in ``coresim/counters.py``."""
    module = tree.parse(COUNTERS_PATH)
    names: set[str] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if DERIVED_NAME_RE.match(node.value):
                names.add(node.value)
    return names


# --------------------------------------------------------------------- native


def _module_int_env(module: ast.Module, op_class_count: int) -> "dict[str, int]":
    """Module-level integer constants of kernel.py (``_MAX_LEVELS = 3`` etc.).

    ``len(OpClass)`` is the one non-literal shape used; it resolves to the
    member count extracted from ``isa.py``.
    """
    env: dict[str, int] = {}
    for node in module.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            env[target.id] = value.value
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "len"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == "OpClass"
        ):
            env[target.id] = op_class_count
    return env


def _eval_int(node: ast.expr, env: "dict[str, int]") -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name) and node.id in env:
        return env[node.id]
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
        left = _eval_int(node.left, env)
        right = _eval_int(node.right, env)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        return left * right
    raise ValueError(f"cannot statically evaluate {ast.dump(node)}")


def extract_native_slots(
    tree: SourceTree, op_classes: "list[str]"
) -> "tuple[list[str], list[str]]":
    """``(_LAZY_SLOT_NAMES, _ALWAYS_SLOT_NAMES)`` from ``native/kernel.py``."""
    module = tree.parse(NATIVE_KERNEL_PATH)
    lazy: "list[str] | None" = None
    always: "list[str] | None" = None
    for node in module.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "_LAZY_SLOT_NAMES":
            value = node.value
            head: list[str] = []
            expanded: list[str] = []
            if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
                tuple_node, tail = value.left, value.right
            else:
                tuple_node, tail = value, None
            if isinstance(tuple_node, ast.Tuple):
                head = [
                    element.value
                    for element in tuple_node.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
            if tail is not None and any(
                isinstance(inner, ast.JoinedStr)
                and any(
                    part.startswith("issue.class.")
                    for part in _joined_str_parts(inner)
                )
                for inner in ast.walk(tail)
            ):
                expanded = [f"issue.class.{member}" for member in op_classes]
            lazy = head + expanded
        elif target.id == "_ALWAYS_SLOT_NAMES" and isinstance(node.value, ast.Tuple):
            always = [
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            ]
    if lazy is None or always is None:
        raise ValueError(
            f"{NATIVE_KERNEL_PATH}: _LAZY_SLOT_NAMES/_ALWAYS_SLOT_NAMES not found"
        )
    return lazy, always


def extract_ctypes_fields(
    tree: SourceTree, op_class_count: int
) -> "list[tuple[str, int | None]]":
    """Ordered ``(name, array_length)`` of ``_SimParams._fields_``."""
    module = tree.parse(NATIVE_KERNEL_PATH)
    env = _module_int_env(module, op_class_count)
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef) or node.name != "_SimParams":
            continue
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "_fields_"
                and isinstance(statement.value, ast.List)
            ):
                fields: list[tuple[str, "int | None"]] = []
                for element in statement.value.elts:
                    if not (
                        isinstance(element, ast.Tuple) and len(element.elts) == 2
                    ):
                        continue
                    name_node, type_node = element.elts
                    if not (
                        isinstance(name_node, ast.Constant)
                        and isinstance(name_node.value, str)
                    ):
                        continue
                    length: "int | None" = None
                    if isinstance(type_node, ast.BinOp) and isinstance(
                        type_node.op, ast.Mult
                    ):
                        length = _eval_int(type_node.right, env)
                    fields.append((name_node.value, length))
                return fields
    raise ValueError(f"{NATIVE_KERNEL_PATH}: _SimParams._fields_ not found")


def check_native_abi(
    tree: SourceTree,
    lazy: "list[str]",
    always: "list[str]",
    op_class_count: int,
) -> "list[Finding]":
    """Cross-check ``_core.c`` against the ctypes layer (C lane)."""
    findings: list[Finding] = []
    path = NATIVE_C_PATH
    if not tree.exists(path):
        return [_fail(path, 0, "native kernel C source is missing")]
    try:
        source: CSource = tokenize(tree.read(path))
    except CTokenizeError as exc:
        return [_fail(path, 0, f"C tokenizer failed: {exc}")]

    def check_value(name: str, expected: int, what: str) -> None:
        try:
            actual = source.value(name)
        except CTokenizeError:
            findings.append(_fail(path, 0, f"C constant {name} not found ({what})"))
            return
        if actual != expected:
            findings.append(
                _fail(
                    path,
                    0,
                    f"C {name} is {actual} but the ctypes layer implies "
                    f"{expected} ({what})",
                )
            )

    # Slot-enum segmentation: [0, N_PIPE) lazily emitted, then the always
    # block, then 2 slots per cache level.
    n_lazy = len(lazy)
    n_always = len(always)
    check_value(
        "S_ROB_OCC", n_lazy, "first always-slot == len(_LAZY_SLOT_NAMES)"
    )
    check_value(
        "S_L1_ACC",
        n_lazy + n_always,
        "first cache slot == lazy + always slot count",
    )
    check_value(
        "NUM_SLOTS",
        n_lazy + n_always + 6,
        "total slots == lazy + always + 2*3 cache counters",
    )
    try:
        n_classes = source.value("NUM_CLASSES")
        if n_classes != op_class_count:
            findings.append(
                _fail(
                    path,
                    0,
                    f"C NUM_CLASSES is {n_classes} but OpClass has "
                    f"{op_class_count} members",
                )
            )
    except CTokenizeError:
        findings.append(_fail(path, 0, "C constant NUM_CLASSES not found"))

    # SimParams struct: field names, order and array lengths must mirror the
    # ctypes _SimParams exactly — this is the FFI marshalling contract.
    c_struct = source.structs.get("SimParams")
    if c_struct is None:
        findings.append(_fail(path, 0, "SimParams struct not found in _core.c"))
    else:
        py_fields = extract_ctypes_fields(tree, op_class_count)
        c_fields = [(field.name, field.array_length) for field in c_struct]
        if c_fields != py_fields:
            c_names = [name for name, _length in c_fields]
            py_names = [name for name, _length in py_fields]
            for name in py_names:
                if name not in c_names:
                    findings.append(
                        _fail(
                            path,
                            0,
                            f"SimParams field {name!r} (ctypes) missing from "
                            "the C struct",
                        )
                    )
            for name in c_names:
                if name not in py_names:
                    findings.append(
                        _fail(
                            path,
                            0,
                            f"SimParams field {name!r} (C) missing from the "
                            "ctypes _SimParams",
                        )
                    )
            if not any(f.message.startswith("SimParams field") for f in findings):
                findings.append(
                    _fail(
                        path,
                        0,
                        "SimParams field order or array lengths diverge "
                        f"between C and ctypes: {c_fields} != {py_fields}",
                    )
                )

    # The exported entry point the ctypes layer binds must exist in C.
    if "repro_simulate" not in source.functions:
        findings.append(
            _fail(path, 0, "exported function repro_simulate not defined in _core.c")
        )
    return findings


# ------------------------------------------------------------------- manifest


def check_manifest(
    tree: SourceTree, reference: "set[str]", derived: "set[str]"
) -> "list[Finding]":
    """Compare the golden suite's observed universe against the static one."""
    path = MANIFEST_PATH
    if not tree.exists(path):
        return [
            _fail(
                path,
                0,
                "counter manifest missing — regenerate with "
                "`PYTHONPATH=src python tests/data/make_golden.py`",
            )
        ]
    try:
        manifest = json.loads(tree.read(path))
        kernels: dict[str, list[str]] = manifest["kernels"]
    except (ValueError, KeyError, TypeError) as exc:
        return [_fail(path, 0, f"counter manifest unreadable: {exc}")]

    findings: list[Finding] = []
    if "scalar" not in kernels:
        findings.append(_fail(path, 0, "manifest records no scalar kernel universe"))
        return findings

    anchor = set(kernels["scalar"])
    for kernel, names in sorted(kernels.items()):
        observed = set(names)
        if observed != anchor:
            for name in sorted(anchor - observed):
                findings.append(
                    _fail(
                        path,
                        0,
                        f"kernel {kernel!r} did not observe counter {name!r} "
                        "that the scalar kernel observed",
                    )
                )
            for name in sorted(observed - anchor):
                findings.append(
                    _fail(
                        path,
                        0,
                        f"kernel {kernel!r} observed counter {name!r} that the "
                        "scalar kernel did not",
                    )
                )
        raw = {
            name
            for name in observed
            if not name.startswith("derived.") and name != "cycles"
        }
        for name in sorted(raw - reference):
            findings.append(
                _fail(
                    path,
                    0,
                    f"kernel {kernel!r} observed counter {name!r} that no "
                    "static emission site accounts for",
                )
            )
        for name in sorted({n for n in observed if n.startswith("derived.")} - derived):
            findings.append(
                _fail(
                    path,
                    0,
                    f"kernel {kernel!r} observed derived counter {name!r} not "
                    "declared in coresim/counters.py",
                )
            )
    if len(anchor) < 30:
        findings.append(
            _fail(
                path,
                0,
                f"manifest scalar universe suspiciously small ({len(anchor)} "
                "names) — regenerate with make_golden.py",
            )
        )
    return findings


# ----------------------------------------------------------------- entry point


def _compare_lanes(
    lane: str, path: str, names: "set[str]", reference: "set[str]"
) -> "list[Finding]":
    findings = []
    for name in sorted(reference - names):
        findings.append(
            _fail(
                path,
                0,
                f"lane '{lane}' is missing counter {name!r} that the "
                "reference lane emits",
            )
        )
    for name in sorted(names - reference):
        findings.append(
            _fail(
                path,
                0,
                f"lane '{lane}' emits counter {name!r} that the reference "
                "lane does not",
            )
        )
    return findings


def check(tree: SourceTree) -> "list[Finding]":
    """Run the full counter-contract rule family."""
    try:
        op_classes = opclass_members(tree)
    except (ValueError, OSError, SyntaxError) as exc:
        return [_fail(ISA_PATH, 0, f"cannot extract OpClass members: {exc}")]

    findings: list[Finding] = []
    reference = extract_lane_names(tree, (REFERENCE_PATH,), op_classes)
    scalar = extract_lane_names(tree, SCALAR_PATHS, op_classes)
    vector = extract_lane_names(tree, (VECTOR_PATH,), op_classes)
    derived = extract_derived_names(tree)

    if len(reference) < 30:
        findings.append(
            _fail(
                REFERENCE_PATH,
                0,
                f"reference lane extraction found only {len(reference)} "
                "counters — extraction is broken, refusing to compare",
            )
        )
        return findings

    findings.extend(_compare_lanes("scalar", SCALAR_PATHS[0], scalar, reference))
    findings.extend(
        _compare_lanes("vector", VECTOR_PATH, vector | VECTOR_EXEMPT, reference)
    )
    for name in sorted(vector & VECTOR_EXEMPT):
        findings.append(
            _fail(
                VECTOR_PATH,
                0,
                f"lane 'vector' emits {name!r}, which only hook-overriding "
                "(never vector-eligible) bug models can produce",
            )
        )

    try:
        lazy, always = extract_native_slots(tree, op_classes)
        native = set(lazy) | set(always) | {
            name for name in extract_lane_names(tree, (NATIVE_KERNEL_PATH,), op_classes)
            if name.startswith("cache.")
        }
        findings.extend(
            _compare_lanes("native", NATIVE_KERNEL_PATH, native, reference)
        )
        if len(lazy) != len(set(lazy)) or len(always) != len(set(always)):
            findings.append(
                _fail(NATIVE_KERNEL_PATH, 0, "duplicate names in the slot tables")
            )
        findings.extend(check_native_abi(tree, lazy, always, len(op_classes)))
    except ValueError as exc:
        findings.append(_fail(NATIVE_KERNEL_PATH, 0, str(exc)))

    findings.extend(check_manifest(tree, reference, derived))
    return findings
