"""Source-tree access layer shared by every lint rule.

Rules never touch the filesystem directly: they read files through a
:class:`SourceTree`, which resolves repository-relative paths, caches parsed
ASTs, and supports an in-memory *overlay* so tests can lint a mutated copy
of a file (e.g. a counter name changed in exactly one kernel lane) without
copying the repository.
"""

from __future__ import annotations

import ast
from pathlib import Path

#: Repository-relative package root every rule scans.
PACKAGE_ROOT = "src/repro"

#: Sub-path of the analysis package itself (skipped by rules whose own
#: implementation would otherwise self-trigger, e.g. name-pattern scans).
ANALYSIS_ROOT = "src/repro/analysis"


class SourceTree:
    """Read-only view of the repository used by the lint rules."""

    def __init__(self, root: Path, overlay: "dict[str, str] | None" = None) -> None:
        self.root = Path(root)
        #: repo-relative path -> replacement text (tests mutate files here).
        self.overlay = dict(overlay or {})
        self._text: dict[str, str] = {}
        self._ast: dict[str, ast.Module] = {}

    def exists(self, rel_path: str) -> bool:
        return rel_path in self.overlay or (self.root / rel_path).is_file()

    def read(self, rel_path: str) -> str:
        """The text of *rel_path* (overlay first), cached."""
        cached = self._text.get(rel_path)
        if cached is not None:
            return cached
        if rel_path in self.overlay:
            text = self.overlay[rel_path]
        else:
            text = (self.root / rel_path).read_text(encoding="utf-8")
        self._text[rel_path] = text
        return text

    def parse(self, rel_path: str) -> ast.Module:
        """The parsed AST of *rel_path*, cached."""
        cached = self._ast.get(rel_path)
        if cached is None:
            cached = ast.parse(self.read(rel_path), filename=rel_path)
            self._ast[rel_path] = cached
        return cached

    def python_files(self, package_root: str = PACKAGE_ROOT) -> "list[str]":
        """Sorted repo-relative paths of every ``.py`` file under the root.

        Overlay-only paths (files that exist purely in memory) are included
        so fixture tests can lint synthetic modules.
        """
        paths = {
            str(path.relative_to(self.root))
            for path in (self.root / package_root).rglob("*.py")
            if path.is_file()
        }
        paths.update(
            rel for rel in self.overlay if rel.startswith(package_root) and rel.endswith(".py")
        )
        return sorted(paths)
